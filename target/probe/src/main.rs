fn main(){}
