/root/repo/target/release/deps/sheetmusiq-9c896352956872a9.d: crates/musiq/src/lib.rs crates/musiq/src/actions.rs crates/musiq/src/dialogs.rs crates/musiq/src/menu.rs crates/musiq/src/script.rs crates/musiq/src/session.rs

/root/repo/target/release/deps/libsheetmusiq-9c896352956872a9.rlib: crates/musiq/src/lib.rs crates/musiq/src/actions.rs crates/musiq/src/dialogs.rs crates/musiq/src/menu.rs crates/musiq/src/script.rs crates/musiq/src/session.rs

/root/repo/target/release/deps/libsheetmusiq-9c896352956872a9.rmeta: crates/musiq/src/lib.rs crates/musiq/src/actions.rs crates/musiq/src/dialogs.rs crates/musiq/src/menu.rs crates/musiq/src/script.rs crates/musiq/src/session.rs

crates/musiq/src/lib.rs:
crates/musiq/src/actions.rs:
crates/musiq/src/dialogs.rs:
crates/musiq/src/menu.rs:
crates/musiq/src/script.rs:
crates/musiq/src/session.rs:
