/root/repo/target/release/deps/repro-be665cb3a96c784b.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-be665cb3a96c784b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
