/root/repo/target/release/deps/ssa_tpch-3db60d200e23aa16.d: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries.rs crates/tpch/src/schema.rs crates/tpch/src/views.rs

/root/repo/target/release/deps/libssa_tpch-3db60d200e23aa16.rlib: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries.rs crates/tpch/src/schema.rs crates/tpch/src/views.rs

/root/repo/target/release/deps/libssa_tpch-3db60d200e23aa16.rmeta: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries.rs crates/tpch/src/schema.rs crates/tpch/src/views.rs

crates/tpch/src/lib.rs:
crates/tpch/src/gen.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/schema.rs:
crates/tpch/src/views.rs:
