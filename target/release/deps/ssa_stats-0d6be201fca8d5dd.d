/root/repo/target/release/deps/ssa_stats-0d6be201fca8d5dd.d: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs

/root/repo/target/release/deps/libssa_stats-0d6be201fca8d5dd.rlib: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs

/root/repo/target/release/deps/libssa_stats-0d6be201fca8d5dd.rmeta: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/fisher.rs:
crates/stats/src/mann_whitney.rs:
crates/stats/src/wilcoxon.rs:
