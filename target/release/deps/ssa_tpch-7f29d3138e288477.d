/root/repo/target/release/deps/ssa_tpch-7f29d3138e288477.d: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries.rs crates/tpch/src/schema.rs crates/tpch/src/views.rs

/root/repo/target/release/deps/libssa_tpch-7f29d3138e288477.rlib: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries.rs crates/tpch/src/schema.rs crates/tpch/src/views.rs

/root/repo/target/release/deps/libssa_tpch-7f29d3138e288477.rmeta: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries.rs crates/tpch/src/schema.rs crates/tpch/src/views.rs

crates/tpch/src/lib.rs:
crates/tpch/src/gen.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/schema.rs:
crates/tpch/src/views.rs:
