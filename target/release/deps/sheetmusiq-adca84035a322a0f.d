/root/repo/target/release/deps/sheetmusiq-adca84035a322a0f.d: crates/musiq/src/lib.rs crates/musiq/src/actions.rs crates/musiq/src/dialogs.rs crates/musiq/src/menu.rs crates/musiq/src/script.rs crates/musiq/src/session.rs

/root/repo/target/release/deps/libsheetmusiq-adca84035a322a0f.rlib: crates/musiq/src/lib.rs crates/musiq/src/actions.rs crates/musiq/src/dialogs.rs crates/musiq/src/menu.rs crates/musiq/src/script.rs crates/musiq/src/session.rs

/root/repo/target/release/deps/libsheetmusiq-adca84035a322a0f.rmeta: crates/musiq/src/lib.rs crates/musiq/src/actions.rs crates/musiq/src/dialogs.rs crates/musiq/src/menu.rs crates/musiq/src/script.rs crates/musiq/src/session.rs

crates/musiq/src/lib.rs:
crates/musiq/src/actions.rs:
crates/musiq/src/dialogs.rs:
crates/musiq/src/menu.rs:
crates/musiq/src/script.rs:
crates/musiq/src/session.rs:
