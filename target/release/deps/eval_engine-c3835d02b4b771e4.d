/root/repo/target/release/deps/eval_engine-c3835d02b4b771e4.d: crates/bench/benches/eval_engine.rs

/root/repo/target/release/deps/eval_engine-c3835d02b4b771e4: crates/bench/benches/eval_engine.rs

crates/bench/benches/eval_engine.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
