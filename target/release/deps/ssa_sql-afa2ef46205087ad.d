/root/repo/target/release/deps/ssa_sql-afa2ef46205087ad.d: crates/sqlcore/src/lib.rs crates/sqlcore/src/ast.rs crates/sqlcore/src/eval.rs crates/sqlcore/src/parser.rs crates/sqlcore/src/translate.rs

/root/repo/target/release/deps/libssa_sql-afa2ef46205087ad.rlib: crates/sqlcore/src/lib.rs crates/sqlcore/src/ast.rs crates/sqlcore/src/eval.rs crates/sqlcore/src/parser.rs crates/sqlcore/src/translate.rs

/root/repo/target/release/deps/libssa_sql-afa2ef46205087ad.rmeta: crates/sqlcore/src/lib.rs crates/sqlcore/src/ast.rs crates/sqlcore/src/eval.rs crates/sqlcore/src/parser.rs crates/sqlcore/src/translate.rs

crates/sqlcore/src/lib.rs:
crates/sqlcore/src/ast.rs:
crates/sqlcore/src/eval.rs:
crates/sqlcore/src/parser.rs:
crates/sqlcore/src/translate.rs:
