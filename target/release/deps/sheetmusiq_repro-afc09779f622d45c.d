/root/repo/target/release/deps/sheetmusiq_repro-afc09779f622d45c.d: src/lib.rs

/root/repo/target/release/deps/libsheetmusiq_repro-afc09779f622d45c.rlib: src/lib.rs

/root/repo/target/release/deps/libsheetmusiq_repro-afc09779f622d45c.rmeta: src/lib.rs

src/lib.rs:
