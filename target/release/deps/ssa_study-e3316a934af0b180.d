/root/repo/target/release/deps/ssa_study-e3316a934af0b180.d: crates/study/src/lib.rs crates/study/src/interface.rs crates/study/src/klm.rs crates/study/src/protocol.rs crates/study/src/report.rs crates/study/src/sensitivity.rs crates/study/src/subject.rs

/root/repo/target/release/deps/libssa_study-e3316a934af0b180.rlib: crates/study/src/lib.rs crates/study/src/interface.rs crates/study/src/klm.rs crates/study/src/protocol.rs crates/study/src/report.rs crates/study/src/sensitivity.rs crates/study/src/subject.rs

/root/repo/target/release/deps/libssa_study-e3316a934af0b180.rmeta: crates/study/src/lib.rs crates/study/src/interface.rs crates/study/src/klm.rs crates/study/src/protocol.rs crates/study/src/report.rs crates/study/src/sensitivity.rs crates/study/src/subject.rs

crates/study/src/lib.rs:
crates/study/src/interface.rs:
crates/study/src/klm.rs:
crates/study/src/protocol.rs:
crates/study/src/report.rs:
crates/study/src/sensitivity.rs:
crates/study/src/subject.rs:
