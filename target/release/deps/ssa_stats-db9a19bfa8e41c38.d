/root/repo/target/release/deps/ssa_stats-db9a19bfa8e41c38.d: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs

/root/repo/target/release/deps/libssa_stats-db9a19bfa8e41c38.rlib: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs

/root/repo/target/release/deps/libssa_stats-db9a19bfa8e41c38.rmeta: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/fisher.rs:
crates/stats/src/mann_whitney.rs:
crates/stats/src/wilcoxon.rs:
