/root/repo/target/release/deps/spreadsheet_algebra-0d697d708954a73c.d: crates/core/src/lib.rs crates/core/src/computed.rs crates/core/src/error.rs crates/core/src/eval.rs crates/core/src/fixtures.rs crates/core/src/history.rs crates/core/src/modify.rs crates/core/src/persist.rs crates/core/src/precedence.rs crates/core/src/render.rs crates/core/src/sheet.rs crates/core/src/spec.rs crates/core/src/state.rs crates/core/src/tree.rs

/root/repo/target/release/deps/libspreadsheet_algebra-0d697d708954a73c.rlib: crates/core/src/lib.rs crates/core/src/computed.rs crates/core/src/error.rs crates/core/src/eval.rs crates/core/src/fixtures.rs crates/core/src/history.rs crates/core/src/modify.rs crates/core/src/persist.rs crates/core/src/precedence.rs crates/core/src/render.rs crates/core/src/sheet.rs crates/core/src/spec.rs crates/core/src/state.rs crates/core/src/tree.rs

/root/repo/target/release/deps/libspreadsheet_algebra-0d697d708954a73c.rmeta: crates/core/src/lib.rs crates/core/src/computed.rs crates/core/src/error.rs crates/core/src/eval.rs crates/core/src/fixtures.rs crates/core/src/history.rs crates/core/src/modify.rs crates/core/src/persist.rs crates/core/src/precedence.rs crates/core/src/render.rs crates/core/src/sheet.rs crates/core/src/spec.rs crates/core/src/state.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/computed.rs:
crates/core/src/error.rs:
crates/core/src/eval.rs:
crates/core/src/fixtures.rs:
crates/core/src/history.rs:
crates/core/src/modify.rs:
crates/core/src/persist.rs:
crates/core/src/precedence.rs:
crates/core/src/render.rs:
crates/core/src/sheet.rs:
crates/core/src/spec.rs:
crates/core/src/state.rs:
crates/core/src/tree.rs:
