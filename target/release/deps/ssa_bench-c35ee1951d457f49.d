/root/repo/target/release/deps/ssa_bench-c35ee1951d457f49.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libssa_bench-c35ee1951d457f49.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libssa_bench-c35ee1951d457f49.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
