/root/repo/target/release/deps/tpch_repl-ec4d0167528370af.d: crates/bench/src/bin/tpch_repl.rs

/root/repo/target/release/deps/tpch_repl-ec4d0167528370af: crates/bench/src/bin/tpch_repl.rs

crates/bench/src/bin/tpch_repl.rs:
