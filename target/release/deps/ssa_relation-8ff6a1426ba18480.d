/root/repo/target/release/deps/ssa_relation-8ff6a1426ba18480.d: crates/relation/src/lib.rs crates/relation/src/agg.rs crates/relation/src/catalog.rs crates/relation/src/compiled.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/expr.rs crates/relation/src/expr_parse.rs crates/relation/src/ops.rs crates/relation/src/relation.rs crates/relation/src/rng.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/release/deps/libssa_relation-8ff6a1426ba18480.rlib: crates/relation/src/lib.rs crates/relation/src/agg.rs crates/relation/src/catalog.rs crates/relation/src/compiled.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/expr.rs crates/relation/src/expr_parse.rs crates/relation/src/ops.rs crates/relation/src/relation.rs crates/relation/src/rng.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/release/deps/libssa_relation-8ff6a1426ba18480.rmeta: crates/relation/src/lib.rs crates/relation/src/agg.rs crates/relation/src/catalog.rs crates/relation/src/compiled.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/expr.rs crates/relation/src/expr_parse.rs crates/relation/src/ops.rs crates/relation/src/relation.rs crates/relation/src/rng.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

crates/relation/src/lib.rs:
crates/relation/src/agg.rs:
crates/relation/src/catalog.rs:
crates/relation/src/compiled.rs:
crates/relation/src/csv.rs:
crates/relation/src/error.rs:
crates/relation/src/expr.rs:
crates/relation/src/expr_parse.rs:
crates/relation/src/ops.rs:
crates/relation/src/relation.rs:
crates/relation/src/rng.rs:
crates/relation/src/schema.rs:
crates/relation/src/tuple.rs:
crates/relation/src/value.rs:
