/root/repo/target/release/deps/ssa_sql-e2037df92916896e.d: crates/sqlcore/src/lib.rs crates/sqlcore/src/ast.rs crates/sqlcore/src/eval.rs crates/sqlcore/src/parser.rs crates/sqlcore/src/translate.rs

/root/repo/target/release/deps/libssa_sql-e2037df92916896e.rlib: crates/sqlcore/src/lib.rs crates/sqlcore/src/ast.rs crates/sqlcore/src/eval.rs crates/sqlcore/src/parser.rs crates/sqlcore/src/translate.rs

/root/repo/target/release/deps/libssa_sql-e2037df92916896e.rmeta: crates/sqlcore/src/lib.rs crates/sqlcore/src/ast.rs crates/sqlcore/src/eval.rs crates/sqlcore/src/parser.rs crates/sqlcore/src/translate.rs

crates/sqlcore/src/lib.rs:
crates/sqlcore/src/ast.rs:
crates/sqlcore/src/eval.rs:
crates/sqlcore/src/parser.rs:
crates/sqlcore/src/translate.rs:
