/root/repo/target/release/deps/phase_probe-4cf8cb49f623848a.d: crates/bench/benches/phase_probe.rs

/root/repo/target/release/deps/phase_probe-4cf8cb49f623848a: crates/bench/benches/phase_probe.rs

crates/bench/benches/phase_probe.rs:
