/root/repo/target/debug/examples/quickstart-6f0070e0a5ac0912.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6f0070e0a5ac0912: examples/quickstart.rs

examples/quickstart.rs:
