/root/repo/target/debug/examples/quickstart-daa080d7fa672b82.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-daa080d7fa672b82.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
