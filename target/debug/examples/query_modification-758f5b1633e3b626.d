/root/repo/target/debug/examples/query_modification-758f5b1633e3b626.d: examples/query_modification.rs Cargo.toml

/root/repo/target/debug/examples/libquery_modification-758f5b1633e3b626.rmeta: examples/query_modification.rs Cargo.toml

examples/query_modification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
