/root/repo/target/debug/examples/query_modification-d5dfc041602488d5.d: examples/query_modification.rs

/root/repo/target/debug/examples/query_modification-d5dfc041602488d5: examples/query_modification.rs

examples/query_modification.rs:
