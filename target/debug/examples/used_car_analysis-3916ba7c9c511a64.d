/root/repo/target/debug/examples/used_car_analysis-3916ba7c9c511a64.d: examples/used_car_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libused_car_analysis-3916ba7c9c511a64.rmeta: examples/used_car_analysis.rs Cargo.toml

examples/used_car_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
