/root/repo/target/debug/examples/tpch_analysis-b3ee4b44bb71432a.d: examples/tpch_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libtpch_analysis-b3ee4b44bb71432a.rmeta: examples/tpch_analysis.rs Cargo.toml

examples/tpch_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
