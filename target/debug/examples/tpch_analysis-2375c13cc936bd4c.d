/root/repo/target/debug/examples/tpch_analysis-2375c13cc936bd4c.d: examples/tpch_analysis.rs

/root/repo/target/debug/examples/tpch_analysis-2375c13cc936bd4c: examples/tpch_analysis.rs

examples/tpch_analysis.rs:
