/root/repo/target/debug/examples/used_car_analysis-53c3bf85d66daded.d: examples/used_car_analysis.rs

/root/repo/target/debug/examples/used_car_analysis-53c3bf85d66daded: examples/used_car_analysis.rs

examples/used_car_analysis.rs:
