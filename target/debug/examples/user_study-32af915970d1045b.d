/root/repo/target/debug/examples/user_study-32af915970d1045b.d: examples/user_study.rs

/root/repo/target/debug/examples/user_study-32af915970d1045b: examples/user_study.rs

examples/user_study.rs:
