/root/repo/target/debug/examples/user_study-15bcc38534e0658b.d: examples/user_study.rs Cargo.toml

/root/repo/target/debug/examples/libuser_study-15bcc38534e0658b.rmeta: examples/user_study.rs Cargo.toml

examples/user_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
