/root/repo/target/debug/deps/eval_engine-744cd7f019910222.d: tests/eval_engine.rs tests/common/mod.rs

/root/repo/target/debug/deps/eval_engine-744cd7f019910222: tests/eval_engine.rs tests/common/mod.rs

tests/eval_engine.rs:
tests/common/mod.rs:
