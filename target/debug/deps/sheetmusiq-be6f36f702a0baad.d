/root/repo/target/debug/deps/sheetmusiq-be6f36f702a0baad.d: crates/musiq/src/lib.rs crates/musiq/src/actions.rs crates/musiq/src/dialogs.rs crates/musiq/src/menu.rs crates/musiq/src/script.rs crates/musiq/src/session.rs

/root/repo/target/debug/deps/sheetmusiq-be6f36f702a0baad: crates/musiq/src/lib.rs crates/musiq/src/actions.rs crates/musiq/src/dialogs.rs crates/musiq/src/menu.rs crates/musiq/src/script.rs crates/musiq/src/session.rs

crates/musiq/src/lib.rs:
crates/musiq/src/actions.rs:
crates/musiq/src/dialogs.rs:
crates/musiq/src/menu.rs:
crates/musiq/src/script.rs:
crates/musiq/src/session.rs:
