/root/repo/target/debug/deps/engine_history-9cd25a3540eaf95a.d: tests/engine_history.rs Cargo.toml

/root/repo/target/debug/deps/libengine_history-9cd25a3540eaf95a.rmeta: tests/engine_history.rs Cargo.toml

tests/engine_history.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
