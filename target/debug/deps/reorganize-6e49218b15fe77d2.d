/root/repo/target/debug/deps/reorganize-6e49218b15fe77d2.d: crates/bench/benches/reorganize.rs Cargo.toml

/root/repo/target/debug/deps/libreorganize-6e49218b15fe77d2.rmeta: crates/bench/benches/reorganize.rs Cargo.toml

crates/bench/benches/reorganize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
