/root/repo/target/debug/deps/commutativity-8676e875cebe52f2.d: tests/commutativity.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libcommutativity-8676e875cebe52f2.rmeta: tests/commutativity.rs tests/common/mod.rs Cargo.toml

tests/commutativity.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
