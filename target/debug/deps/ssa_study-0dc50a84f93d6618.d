/root/repo/target/debug/deps/ssa_study-0dc50a84f93d6618.d: crates/study/src/lib.rs crates/study/src/interface.rs crates/study/src/klm.rs crates/study/src/protocol.rs crates/study/src/report.rs crates/study/src/sensitivity.rs crates/study/src/subject.rs

/root/repo/target/debug/deps/libssa_study-0dc50a84f93d6618.rlib: crates/study/src/lib.rs crates/study/src/interface.rs crates/study/src/klm.rs crates/study/src/protocol.rs crates/study/src/report.rs crates/study/src/sensitivity.rs crates/study/src/subject.rs

/root/repo/target/debug/deps/libssa_study-0dc50a84f93d6618.rmeta: crates/study/src/lib.rs crates/study/src/interface.rs crates/study/src/klm.rs crates/study/src/protocol.rs crates/study/src/report.rs crates/study/src/sensitivity.rs crates/study/src/subject.rs

crates/study/src/lib.rs:
crates/study/src/interface.rs:
crates/study/src/klm.rs:
crates/study/src/protocol.rs:
crates/study/src/report.rs:
crates/study/src/sensitivity.rs:
crates/study/src/subject.rs:
