/root/repo/target/debug/deps/expressive_power-612157512f81b956.d: tests/expressive_power.rs

/root/repo/target/debug/deps/expressive_power-612157512f81b956: tests/expressive_power.rs

tests/expressive_power.rs:
