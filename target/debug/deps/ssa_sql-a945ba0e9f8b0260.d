/root/repo/target/debug/deps/ssa_sql-a945ba0e9f8b0260.d: crates/sqlcore/src/lib.rs crates/sqlcore/src/ast.rs crates/sqlcore/src/eval.rs crates/sqlcore/src/parser.rs crates/sqlcore/src/translate.rs

/root/repo/target/debug/deps/libssa_sql-a945ba0e9f8b0260.rlib: crates/sqlcore/src/lib.rs crates/sqlcore/src/ast.rs crates/sqlcore/src/eval.rs crates/sqlcore/src/parser.rs crates/sqlcore/src/translate.rs

/root/repo/target/debug/deps/libssa_sql-a945ba0e9f8b0260.rmeta: crates/sqlcore/src/lib.rs crates/sqlcore/src/ast.rs crates/sqlcore/src/eval.rs crates/sqlcore/src/parser.rs crates/sqlcore/src/translate.rs

crates/sqlcore/src/lib.rs:
crates/sqlcore/src/ast.rs:
crates/sqlcore/src/eval.rs:
crates/sqlcore/src/parser.rs:
crates/sqlcore/src/translate.rs:
