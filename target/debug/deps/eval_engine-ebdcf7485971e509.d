/root/repo/target/debug/deps/eval_engine-ebdcf7485971e509.d: crates/bench/benches/eval_engine.rs Cargo.toml

/root/repo/target/debug/deps/libeval_engine-ebdcf7485971e509.rmeta: crates/bench/benches/eval_engine.rs Cargo.toml

crates/bench/benches/eval_engine.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
