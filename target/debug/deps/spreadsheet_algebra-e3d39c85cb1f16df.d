/root/repo/target/debug/deps/spreadsheet_algebra-e3d39c85cb1f16df.d: crates/core/src/lib.rs crates/core/src/computed.rs crates/core/src/error.rs crates/core/src/eval.rs crates/core/src/fixtures.rs crates/core/src/history.rs crates/core/src/modify.rs crates/core/src/persist.rs crates/core/src/precedence.rs crates/core/src/render.rs crates/core/src/sheet.rs crates/core/src/spec.rs crates/core/src/state.rs crates/core/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libspreadsheet_algebra-e3d39c85cb1f16df.rmeta: crates/core/src/lib.rs crates/core/src/computed.rs crates/core/src/error.rs crates/core/src/eval.rs crates/core/src/fixtures.rs crates/core/src/history.rs crates/core/src/modify.rs crates/core/src/persist.rs crates/core/src/precedence.rs crates/core/src/render.rs crates/core/src/sheet.rs crates/core/src/spec.rs crates/core/src/state.rs crates/core/src/tree.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/computed.rs:
crates/core/src/error.rs:
crates/core/src/eval.rs:
crates/core/src/fixtures.rs:
crates/core/src/history.rs:
crates/core/src/modify.rs:
crates/core/src/persist.rs:
crates/core/src/precedence.rs:
crates/core/src/render.rs:
crates/core/src/sheet.rs:
crates/core/src/spec.rs:
crates/core/src/state.rs:
crates/core/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
