/root/repo/target/debug/deps/commutativity-97598405b5eca903.d: tests/commutativity.rs tests/common/mod.rs

/root/repo/target/debug/deps/commutativity-97598405b5eca903: tests/commutativity.rs tests/common/mod.rs

tests/commutativity.rs:
tests/common/mod.rs:
