/root/repo/target/debug/deps/sheetmusiq-dc9219157a205dd7.d: crates/musiq/src/lib.rs crates/musiq/src/actions.rs crates/musiq/src/dialogs.rs crates/musiq/src/menu.rs crates/musiq/src/script.rs crates/musiq/src/session.rs

/root/repo/target/debug/deps/libsheetmusiq-dc9219157a205dd7.rlib: crates/musiq/src/lib.rs crates/musiq/src/actions.rs crates/musiq/src/dialogs.rs crates/musiq/src/menu.rs crates/musiq/src/script.rs crates/musiq/src/session.rs

/root/repo/target/debug/deps/libsheetmusiq-dc9219157a205dd7.rmeta: crates/musiq/src/lib.rs crates/musiq/src/actions.rs crates/musiq/src/dialogs.rs crates/musiq/src/menu.rs crates/musiq/src/script.rs crates/musiq/src/session.rs

crates/musiq/src/lib.rs:
crates/musiq/src/actions.rs:
crates/musiq/src/dialogs.rs:
crates/musiq/src/menu.rs:
crates/musiq/src/script.rs:
crates/musiq/src/session.rs:
