/root/repo/target/debug/deps/expressive_power-d8d0723ad265afe0.d: tests/expressive_power.rs Cargo.toml

/root/repo/target/debug/deps/libexpressive_power-d8d0723ad265afe0.rmeta: tests/expressive_power.rs Cargo.toml

tests/expressive_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
