/root/repo/target/debug/deps/ssa_sql-7304a71c5fdcb932.d: crates/sqlcore/src/lib.rs crates/sqlcore/src/ast.rs crates/sqlcore/src/eval.rs crates/sqlcore/src/parser.rs crates/sqlcore/src/translate.rs

/root/repo/target/debug/deps/ssa_sql-7304a71c5fdcb932: crates/sqlcore/src/lib.rs crates/sqlcore/src/ast.rs crates/sqlcore/src/eval.rs crates/sqlcore/src/parser.rs crates/sqlcore/src/translate.rs

crates/sqlcore/src/lib.rs:
crates/sqlcore/src/ast.rs:
crates/sqlcore/src/eval.rs:
crates/sqlcore/src/parser.rs:
crates/sqlcore/src/translate.rs:
