/root/repo/target/debug/deps/sheetmusiq_repl-2043e63d6d97eb69.d: crates/musiq/src/bin/repl.rs

/root/repo/target/debug/deps/sheetmusiq_repl-2043e63d6d97eb69: crates/musiq/src/bin/repl.rs

crates/musiq/src/bin/repl.rs:
