/root/repo/target/debug/deps/ssa_stats-2d161d84ee3f2132.d: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs Cargo.toml

/root/repo/target/debug/deps/libssa_stats-2d161d84ee3f2132.rmeta: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/fisher.rs:
crates/stats/src/mann_whitney.rs:
crates/stats/src/wilcoxon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
