/root/repo/target/debug/deps/eval_engine-e8f6b06406e8af86.d: tests/eval_engine.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libeval_engine-e8f6b06406e8af86.rmeta: tests/eval_engine.rs tests/common/mod.rs Cargo.toml

tests/eval_engine.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
