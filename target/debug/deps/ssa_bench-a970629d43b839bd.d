/root/repo/target/debug/deps/ssa_bench-a970629d43b839bd.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libssa_bench-a970629d43b839bd.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libssa_bench-a970629d43b839bd.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
