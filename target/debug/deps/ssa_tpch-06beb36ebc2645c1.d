/root/repo/target/debug/deps/ssa_tpch-06beb36ebc2645c1.d: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries.rs crates/tpch/src/schema.rs crates/tpch/src/views.rs Cargo.toml

/root/repo/target/debug/deps/libssa_tpch-06beb36ebc2645c1.rmeta: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries.rs crates/tpch/src/schema.rs crates/tpch/src/views.rs Cargo.toml

crates/tpch/src/lib.rs:
crates/tpch/src/gen.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/schema.rs:
crates/tpch/src/views.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
