/root/repo/target/debug/deps/ssa_bench-08a675f4fd051c6b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libssa_bench-08a675f4fd051c6b.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
