/root/repo/target/debug/deps/sheetmusiq_repl-bb31f87687fdcda8.d: crates/musiq/src/bin/repl.rs Cargo.toml

/root/repo/target/debug/deps/libsheetmusiq_repl-bb31f87687fdcda8.rmeta: crates/musiq/src/bin/repl.rs Cargo.toml

crates/musiq/src/bin/repl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
