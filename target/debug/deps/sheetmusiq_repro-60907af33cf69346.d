/root/repo/target/debug/deps/sheetmusiq_repro-60907af33cf69346.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsheetmusiq_repro-60907af33cf69346.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
