/root/repo/target/debug/deps/ssa_relation-69a156246de4c78b.d: crates/relation/src/lib.rs crates/relation/src/agg.rs crates/relation/src/catalog.rs crates/relation/src/compiled.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/expr.rs crates/relation/src/expr_parse.rs crates/relation/src/ops.rs crates/relation/src/relation.rs crates/relation/src/rng.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libssa_relation-69a156246de4c78b.rmeta: crates/relation/src/lib.rs crates/relation/src/agg.rs crates/relation/src/catalog.rs crates/relation/src/compiled.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/expr.rs crates/relation/src/expr_parse.rs crates/relation/src/ops.rs crates/relation/src/relation.rs crates/relation/src/rng.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs Cargo.toml

crates/relation/src/lib.rs:
crates/relation/src/agg.rs:
crates/relation/src/catalog.rs:
crates/relation/src/compiled.rs:
crates/relation/src/csv.rs:
crates/relation/src/error.rs:
crates/relation/src/expr.rs:
crates/relation/src/expr_parse.rs:
crates/relation/src/ops.rs:
crates/relation/src/relation.rs:
crates/relation/src/rng.rs:
crates/relation/src/schema.rs:
crates/relation/src/tuple.rs:
crates/relation/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
