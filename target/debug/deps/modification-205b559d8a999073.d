/root/repo/target/debug/deps/modification-205b559d8a999073.d: crates/bench/benches/modification.rs Cargo.toml

/root/repo/target/debug/deps/libmodification-205b559d8a999073.rmeta: crates/bench/benches/modification.rs Cargo.toml

crates/bench/benches/modification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
