/root/repo/target/debug/deps/commute-8d946bd353df48be.d: crates/bench/benches/commute.rs Cargo.toml

/root/repo/target/debug/deps/libcommute-8d946bd353df48be.rmeta: crates/bench/benches/commute.rs Cargo.toml

crates/bench/benches/commute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
