/root/repo/target/debug/deps/ssa_sql-72e0003f9e5da5c0.d: crates/sqlcore/src/lib.rs crates/sqlcore/src/ast.rs crates/sqlcore/src/eval.rs crates/sqlcore/src/parser.rs crates/sqlcore/src/translate.rs Cargo.toml

/root/repo/target/debug/deps/libssa_sql-72e0003f9e5da5c0.rmeta: crates/sqlcore/src/lib.rs crates/sqlcore/src/ast.rs crates/sqlcore/src/eval.rs crates/sqlcore/src/parser.rs crates/sqlcore/src/translate.rs Cargo.toml

crates/sqlcore/src/lib.rs:
crates/sqlcore/src/ast.rs:
crates/sqlcore/src/eval.rs:
crates/sqlcore/src/parser.rs:
crates/sqlcore/src/translate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
