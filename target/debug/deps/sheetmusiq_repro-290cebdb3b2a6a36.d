/root/repo/target/debug/deps/sheetmusiq_repro-290cebdb3b2a6a36.d: src/lib.rs

/root/repo/target/debug/deps/libsheetmusiq_repro-290cebdb3b2a6a36.rlib: src/lib.rs

/root/repo/target/debug/deps/libsheetmusiq_repro-290cebdb3b2a6a36.rmeta: src/lib.rs

src/lib.rs:
