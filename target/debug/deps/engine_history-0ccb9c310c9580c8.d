/root/repo/target/debug/deps/engine_history-0ccb9c310c9580c8.d: tests/engine_history.rs

/root/repo/target/debug/deps/engine_history-0ccb9c310c9580c8: tests/engine_history.rs

tests/engine_history.rs:
