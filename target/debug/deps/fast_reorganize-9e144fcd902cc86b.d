/root/repo/target/debug/deps/fast_reorganize-9e144fcd902cc86b.d: tests/fast_reorganize.rs

/root/repo/target/debug/deps/fast_reorganize-9e144fcd902cc86b: tests/fast_reorganize.rs

tests/fast_reorganize.rs:
