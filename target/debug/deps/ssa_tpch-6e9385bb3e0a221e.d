/root/repo/target/debug/deps/ssa_tpch-6e9385bb3e0a221e.d: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries.rs crates/tpch/src/schema.rs crates/tpch/src/views.rs

/root/repo/target/debug/deps/libssa_tpch-6e9385bb3e0a221e.rlib: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries.rs crates/tpch/src/schema.rs crates/tpch/src/views.rs

/root/repo/target/debug/deps/libssa_tpch-6e9385bb3e0a221e.rmeta: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries.rs crates/tpch/src/schema.rs crates/tpch/src/views.rs

crates/tpch/src/lib.rs:
crates/tpch/src/gen.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/schema.rs:
crates/tpch/src/views.rs:
