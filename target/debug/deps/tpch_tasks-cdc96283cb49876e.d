/root/repo/target/debug/deps/tpch_tasks-cdc96283cb49876e.d: crates/bench/benches/tpch_tasks.rs Cargo.toml

/root/repo/target/debug/deps/libtpch_tasks-cdc96283cb49876e.rmeta: crates/bench/benches/tpch_tasks.rs Cargo.toml

crates/bench/benches/tpch_tasks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
