/root/repo/target/debug/deps/ssa_study-46eeca834e425e0e.d: crates/study/src/lib.rs crates/study/src/interface.rs crates/study/src/klm.rs crates/study/src/protocol.rs crates/study/src/report.rs crates/study/src/sensitivity.rs crates/study/src/subject.rs Cargo.toml

/root/repo/target/debug/deps/libssa_study-46eeca834e425e0e.rmeta: crates/study/src/lib.rs crates/study/src/interface.rs crates/study/src/klm.rs crates/study/src/protocol.rs crates/study/src/report.rs crates/study/src/sensitivity.rs crates/study/src/subject.rs Cargo.toml

crates/study/src/lib.rs:
crates/study/src/interface.rs:
crates/study/src/klm.rs:
crates/study/src/protocol.rs:
crates/study/src/report.rs:
crates/study/src/sensitivity.rs:
crates/study/src/subject.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
