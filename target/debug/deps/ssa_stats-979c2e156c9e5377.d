/root/repo/target/debug/deps/ssa_stats-979c2e156c9e5377.d: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs Cargo.toml

/root/repo/target/debug/deps/libssa_stats-979c2e156c9e5377.rmeta: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/fisher.rs:
crates/stats/src/mann_whitney.rs:
crates/stats/src/wilcoxon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
