/root/repo/target/debug/deps/user_study-f2d70a482aa97b53.d: crates/bench/benches/user_study.rs Cargo.toml

/root/repo/target/debug/deps/libuser_study-f2d70a482aa97b53.rmeta: crates/bench/benches/user_study.rs Cargo.toml

crates/bench/benches/user_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
