/root/repo/target/debug/deps/tpch_repl-d45a7e116cc56cf3.d: crates/bench/src/bin/tpch_repl.rs Cargo.toml

/root/repo/target/debug/deps/libtpch_repl-d45a7e116cc56cf3.rmeta: crates/bench/src/bin/tpch_repl.rs Cargo.toml

crates/bench/src/bin/tpch_repl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
