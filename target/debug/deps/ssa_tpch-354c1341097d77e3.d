/root/repo/target/debug/deps/ssa_tpch-354c1341097d77e3.d: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries.rs crates/tpch/src/schema.rs crates/tpch/src/views.rs

/root/repo/target/debug/deps/ssa_tpch-354c1341097d77e3: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries.rs crates/tpch/src/schema.rs crates/tpch/src/views.rs

crates/tpch/src/lib.rs:
crates/tpch/src/gen.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/schema.rs:
crates/tpch/src/views.rs:
