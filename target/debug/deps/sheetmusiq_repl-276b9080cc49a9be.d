/root/repo/target/debug/deps/sheetmusiq_repl-276b9080cc49a9be.d: crates/musiq/src/bin/repl.rs

/root/repo/target/debug/deps/sheetmusiq_repl-276b9080cc49a9be: crates/musiq/src/bin/repl.rs

crates/musiq/src/bin/repl.rs:
