/root/repo/target/debug/deps/query_modification-e36a1a86fd543fa7.d: tests/query_modification.rs

/root/repo/target/debug/deps/query_modification-e36a1a86fd543fa7: tests/query_modification.rs

tests/query_modification.rs:
