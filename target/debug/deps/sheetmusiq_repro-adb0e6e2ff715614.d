/root/repo/target/debug/deps/sheetmusiq_repro-adb0e6e2ff715614.d: src/lib.rs

/root/repo/target/debug/deps/sheetmusiq_repro-adb0e6e2ff715614: src/lib.rs

src/lib.rs:
