/root/repo/target/debug/deps/ssa_stats-a739404e575e343a.d: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs

/root/repo/target/debug/deps/libssa_stats-a739404e575e343a.rlib: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs

/root/repo/target/debug/deps/libssa_stats-a739404e575e343a.rmeta: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/fisher.rs:
crates/stats/src/mann_whitney.rs:
crates/stats/src/wilcoxon.rs:
