/root/repo/target/debug/deps/binary_operators-9d2ababdb9d7104e.d: tests/binary_operators.rs

/root/repo/target/debug/deps/binary_operators-9d2ababdb9d7104e: tests/binary_operators.rs

tests/binary_operators.rs:
