/root/repo/target/debug/deps/spreadsheet_algebra-8a5fa87e156b2060.d: crates/core/src/lib.rs crates/core/src/computed.rs crates/core/src/error.rs crates/core/src/eval.rs crates/core/src/fixtures.rs crates/core/src/history.rs crates/core/src/modify.rs crates/core/src/persist.rs crates/core/src/precedence.rs crates/core/src/render.rs crates/core/src/sheet.rs crates/core/src/spec.rs crates/core/src/state.rs crates/core/src/tree.rs

/root/repo/target/debug/deps/libspreadsheet_algebra-8a5fa87e156b2060.rlib: crates/core/src/lib.rs crates/core/src/computed.rs crates/core/src/error.rs crates/core/src/eval.rs crates/core/src/fixtures.rs crates/core/src/history.rs crates/core/src/modify.rs crates/core/src/persist.rs crates/core/src/precedence.rs crates/core/src/render.rs crates/core/src/sheet.rs crates/core/src/spec.rs crates/core/src/state.rs crates/core/src/tree.rs

/root/repo/target/debug/deps/libspreadsheet_algebra-8a5fa87e156b2060.rmeta: crates/core/src/lib.rs crates/core/src/computed.rs crates/core/src/error.rs crates/core/src/eval.rs crates/core/src/fixtures.rs crates/core/src/history.rs crates/core/src/modify.rs crates/core/src/persist.rs crates/core/src/precedence.rs crates/core/src/render.rs crates/core/src/sheet.rs crates/core/src/spec.rs crates/core/src/state.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/computed.rs:
crates/core/src/error.rs:
crates/core/src/eval.rs:
crates/core/src/fixtures.rs:
crates/core/src/history.rs:
crates/core/src/modify.rs:
crates/core/src/persist.rs:
crates/core/src/precedence.rs:
crates/core/src/render.rs:
crates/core/src/sheet.rs:
crates/core/src/spec.rs:
crates/core/src/state.rs:
crates/core/src/tree.rs:
