/root/repo/target/debug/deps/end_to_end-8e0a9965f0fe692f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-8e0a9965f0fe692f: tests/end_to_end.rs

tests/end_to_end.rs:
