/root/repo/target/debug/deps/ssa_bench-16352a5c36be4b51.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/ssa_bench-16352a5c36be4b51: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
