/root/repo/target/debug/deps/properties-2a409c03ea5c831c.d: crates/relation/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2a409c03ea5c831c.rmeta: crates/relation/tests/properties.rs Cargo.toml

crates/relation/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
