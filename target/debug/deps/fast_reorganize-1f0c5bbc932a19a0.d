/root/repo/target/debug/deps/fast_reorganize-1f0c5bbc932a19a0.d: tests/fast_reorganize.rs Cargo.toml

/root/repo/target/debug/deps/libfast_reorganize-1f0c5bbc932a19a0.rmeta: tests/fast_reorganize.rs Cargo.toml

tests/fast_reorganize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
