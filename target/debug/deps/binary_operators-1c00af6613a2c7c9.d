/root/repo/target/debug/deps/binary_operators-1c00af6613a2c7c9.d: tests/binary_operators.rs Cargo.toml

/root/repo/target/debug/deps/libbinary_operators-1c00af6613a2c7c9.rmeta: tests/binary_operators.rs Cargo.toml

tests/binary_operators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
