/root/repo/target/debug/deps/ssa_study-0f31fff84eed2afc.d: crates/study/src/lib.rs crates/study/src/interface.rs crates/study/src/klm.rs crates/study/src/protocol.rs crates/study/src/report.rs crates/study/src/sensitivity.rs crates/study/src/subject.rs

/root/repo/target/debug/deps/ssa_study-0f31fff84eed2afc: crates/study/src/lib.rs crates/study/src/interface.rs crates/study/src/klm.rs crates/study/src/protocol.rs crates/study/src/report.rs crates/study/src/sensitivity.rs crates/study/src/subject.rs

crates/study/src/lib.rs:
crates/study/src/interface.rs:
crates/study/src/klm.rs:
crates/study/src/protocol.rs:
crates/study/src/report.rs:
crates/study/src/sensitivity.rs:
crates/study/src/subject.rs:
