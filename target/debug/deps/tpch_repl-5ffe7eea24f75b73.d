/root/repo/target/debug/deps/tpch_repl-5ffe7eea24f75b73.d: crates/bench/src/bin/tpch_repl.rs

/root/repo/target/debug/deps/tpch_repl-5ffe7eea24f75b73: crates/bench/src/bin/tpch_repl.rs

crates/bench/src/bin/tpch_repl.rs:
