/root/repo/target/debug/deps/query_modification-39ad1bbd9bdd41b8.d: tests/query_modification.rs Cargo.toml

/root/repo/target/debug/deps/libquery_modification-39ad1bbd9bdd41b8.rmeta: tests/query_modification.rs Cargo.toml

tests/query_modification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
