/root/repo/target/debug/deps/ssa_stats-1c0aa47ba3d30343.d: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs

/root/repo/target/debug/deps/ssa_stats-1c0aa47ba3d30343: crates/stats/src/lib.rs crates/stats/src/descriptive.rs crates/stats/src/fisher.rs crates/stats/src/mann_whitney.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/fisher.rs:
crates/stats/src/mann_whitney.rs:
crates/stats/src/wilcoxon.rs:
