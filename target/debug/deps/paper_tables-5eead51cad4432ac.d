/root/repo/target/debug/deps/paper_tables-5eead51cad4432ac.d: tests/paper_tables.rs

/root/repo/target/debug/deps/paper_tables-5eead51cad4432ac: tests/paper_tables.rs

tests/paper_tables.rs:
