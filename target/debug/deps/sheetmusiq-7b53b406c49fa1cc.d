/root/repo/target/debug/deps/sheetmusiq-7b53b406c49fa1cc.d: crates/musiq/src/lib.rs crates/musiq/src/actions.rs crates/musiq/src/dialogs.rs crates/musiq/src/menu.rs crates/musiq/src/script.rs crates/musiq/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libsheetmusiq-7b53b406c49fa1cc.rmeta: crates/musiq/src/lib.rs crates/musiq/src/actions.rs crates/musiq/src/dialogs.rs crates/musiq/src/menu.rs crates/musiq/src/script.rs crates/musiq/src/session.rs Cargo.toml

crates/musiq/src/lib.rs:
crates/musiq/src/actions.rs:
crates/musiq/src/dialogs.rs:
crates/musiq/src/menu.rs:
crates/musiq/src/script.rs:
crates/musiq/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
