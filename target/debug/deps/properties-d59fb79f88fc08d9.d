/root/repo/target/debug/deps/properties-d59fb79f88fc08d9.d: crates/relation/tests/properties.rs

/root/repo/target/debug/deps/properties-d59fb79f88fc08d9: crates/relation/tests/properties.rs

crates/relation/tests/properties.rs:
