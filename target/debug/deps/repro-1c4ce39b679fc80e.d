/root/repo/target/debug/deps/repro-1c4ce39b679fc80e.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-1c4ce39b679fc80e: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
