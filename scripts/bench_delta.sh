#!/usr/bin/env sh
# Bench regression gate: compare the freshly written BENCH_*.json at the
# repository root against the committed baselines (HEAD) and fail on a
# >25% regression of any recorded mean.
#
#   scripts/bench_delta.sh          # compare working-tree JSON vs HEAD
#
# The benches overwrite the committed JSON in place, so the baseline is
# read back from git. Entries are matched by their identifying fields
# (rows, scenario). Missing coverage fails loudly: a BENCH_*.json with
# no committed baseline fails (commit the baseline in the same change
# that adds the bench), a fresh entry whose key the baseline does not
# know fails, and a baseline entry the fresh run did not reproduce
# fails too — except under fast mode, which records a smoke-size subset
# by design (its keys must still all exist in the baseline). Every
# BENCH_*.json at the root is gated the same way:
# BENCH_incremental.json (edit latency speedups), BENCH_join.json
# (hash-vs-nested join speedups), BENCH_plan.json (planned multi-join
# speedups), BENCH_stream.json (streaming base-delta speedups),
# BENCH_server.json (shared-snapshot read throughput/tails),
# BENCH_persist.json (binary columnar save / cold-open speedups) and
# BENCH_wal.json (durability tax of logged appends) today, anything a
# future bench writes tomorrow. Plan, stream, server, persist and wal
# additionally carry absolute floors — see below.
#
# By default only the speedup ratios are gated: they are means recorded
# by the same run on the same machine, so they transfer across hosts,
# whereas absolute *_ms means compare a CI runner against the machine
# that produced the baseline. Set BENCH_DELTA_STRICT=1 to also gate the
# *_ms means (useful when baseline and fresh run share a machine).
set -eu

cd "$(dirname "$0")/.."

python3 - "$@" <<'EOF'
import glob
import json
import os
import subprocess
import sys

THRESHOLD = 0.25
# Speedup ratios saturate: past this the timed path is effectively free
# (microseconds) and the ratio is timer noise, so both sides are clamped
# here before comparing. A collapse from "free" to "slow" still fails.
SPEEDUP_CAP = 20.0
STRICT = os.environ.get("BENCH_DELTA_STRICT") == "1"
ID_FIELDS = ("rows", "scenario")

def entry_key(entry):
    return tuple((f, entry[f]) for f in ID_FIELDS if f in entry)

def sections(doc):
    """Top-level lists of measurement dicts, e.g. "sizes" or "edits"."""
    for name, value in doc.items():
        if isinstance(value, list) and value and all(
            isinstance(e, dict) for e in value
        ):
            yield name, {entry_key(e): e for e in value}

def gated_metrics(entry):
    """(field, higher_is_better) pairs this gate checks in an entry."""
    for field, value in entry.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if "speedup" in field:
            yield field, True
        elif field.endswith("_ms") and STRICT:
            yield field, False

# Absolute floors on top of the relative gate: the planner must keep a
# ≥5x speedup over the unplanned pipeline on the full-size (100k-row)
# multi-join workloads — the acceptance bar for the plan rewrites, not
# just "no worse than last commit". Fast-mode runs only record the smoke
# size, so the floor never fires there.
PLAN_SPEEDUP_FLOOR = 5.0
PLAN_FLOOR_ROWS = 100_000

# The streaming base-data delta paths must keep a ≥10x per-append
# speedup over full re-evaluation at the full 100k-row size — the
# acceptance bar for the live-feed patching (DESIGN.md §14). Applied to
# every append scenario (single and burst); deletes and updates are
# covered by the relative gate only, since their cost is dominated by
# the O(n) narrowing pass by design.
STREAM_SPEEDUP_FLOOR = 10.0
STREAM_FLOOR_ROWS = 100_000

# The server's shared-snapshot reads must sustain >= 5x the single-site
# (deep-copy-per-session, deep-copy-per-undo-snapshot) baseline at the
# full 100k-row size with 4 reader threads, and a concurrent writer must
# not degrade read tail latency beyond 2x quiet — the acceptance bars
# for the snapshot/epoch architecture (DESIGN.md §15).
SERVER_SPEEDUP_FLOOR = 5.0
SERVER_P99_RATIO_CEILING = 2.0
SERVER_FLOOR_ROWS = 100_000

# Cold open-to-first-answer through the paged binary store must stay
# >= 5x faster than parsing the JSON dump when the query touches a
# strict subset of the columns, at the full 1M-row size — the
# acceptance bar for the lazily-loaded columnar format (DESIGN.md §16).
# The all-columns scenario and save are covered by the relative gate.
PERSIST_SPEEDUP_FLOOR = 5.0
PERSIST_FLOOR_ROWS = 1_000_000

# Durability must not eat the streaming win: with the default batch
# fsync policy, one acked logged append must keep the §14 >= 10x
# speedup over full re-evaluation at the full 100k-row size, and cost
# <= 2x the same append on an unlogged in-memory replica (DESIGN.md
# §17). The never/always policies are covered by the relative gate.
WAL_SPEEDUP_FLOOR = 10.0
WAL_OVERHEAD_CEILING = 2.0
WAL_FLOOR_ROWS = 100_000

def floor_entries(path, fresh):
    """(section, entry, floor) triples whose speedup has an absolute
    floor on top of the relative gate."""
    if path == "BENCH_plan.json":
        for entry in fresh.get("plans", []):
            if entry.get("rows", 0) >= PLAN_FLOOR_ROWS:
                yield "plans", entry, PLAN_SPEEDUP_FLOOR
    elif path == "BENCH_stream.json":
        for entry in fresh.get("edits", []):
            if entry.get("rows", 0) >= STREAM_FLOOR_ROWS and str(
                entry.get("scenario", "")
            ).startswith("append"):
                yield "edits", entry, STREAM_SPEEDUP_FLOOR
    elif path == "BENCH_server.json":
        for entry in fresh.get("reads", []):
            if entry.get("rows", 0) >= SERVER_FLOOR_ROWS and str(
                entry.get("scenario", "")
            ).startswith("read_shared_4"):
                yield "reads", entry, SERVER_SPEEDUP_FLOOR
    elif path == "BENCH_persist.json":
        for entry in fresh.get("scenarios", []):
            if (entry.get("rows", 0) >= PERSIST_FLOOR_ROWS
                    and entry.get("scenario") == "cold_open_query_1col"):
                yield "scenarios", entry, PERSIST_SPEEDUP_FLOOR
    elif path == "BENCH_wal.json":
        for entry in fresh.get("appends", []):
            if (entry.get("rows", 0) >= WAL_FLOOR_ROWS
                    and entry.get("scenario") == "append_wal_batch"):
                yield "appends", entry, WAL_SPEEDUP_FLOOR

def floor_checks(path, fresh):
    # Fast-mode runs only record the smoke size, so floors never fire.
    if fresh.get("fast"):
        return
    for section, entry, floor in floor_entries(path, fresh):
        label = f"{path}:{section}:{dict(entry_key(entry))}"
        speedup = float(entry.get("speedup", 0.0))
        verdict = "FAIL" if speedup < floor else "ok"
        print(f"{verdict:4} {label} speedup floor: "
              f"{speedup:g} (need >= {floor:g})")
        if speedup < floor:
            yield f"{label} speedup {speedup:g} < floor {floor:g}"
        if path == "BENCH_server.json" and "p99_ratio" in entry:
            ratio = float(entry["p99_ratio"])
            ceiling = SERVER_P99_RATIO_CEILING
            verdict = "FAIL" if ratio > ceiling else "ok"
            print(f"{verdict:4} {label} p99_ratio ceiling: "
                  f"{ratio:g} (need <= {ceiling:g})")
            if ratio > ceiling:
                yield f"{label} p99_ratio {ratio:g} > ceiling {ceiling:g}"
        if path == "BENCH_wal.json" and "overhead_ratio" in entry:
            ratio = float(entry["overhead_ratio"])
            ceiling = WAL_OVERHEAD_CEILING
            verdict = "FAIL" if ratio > ceiling else "ok"
            print(f"{verdict:4} {label} overhead_ratio ceiling: "
                  f"{ratio:g} (need <= {ceiling:g})")
            if ratio > ceiling:
                yield f"{label} overhead_ratio {ratio:g} > ceiling {ceiling:g}"

failures = []
compared = 0
for path in sorted(glob.glob("BENCH_*.json")):
    with open(path) as f:
        fresh = json.load(f)
    if fresh.get("fast"):
        print(f"{path}: fresh run is fast-mode (smoke sizes/samples)")
    failures.extend(floor_checks(path, fresh))
    show = subprocess.run(
        ["git", "show", f"HEAD:{path}"], capture_output=True, text=True
    )
    if show.returncode != 0:
        # A bench without a committed baseline would silently skip the
        # gate forever; the change adding a bench must commit its
        # baseline JSON too.
        print(f"FAIL {path}: no committed baseline "
              f"(commit the full-run JSON alongside the bench)")
        failures.append(f"{path}: no committed baseline")
        continue
    baseline = json.loads(show.stdout)
    base_sections = dict(sections(baseline))
    fresh_sections = dict(sections(fresh))
    # Coverage must be loud in both directions: a fresh key the baseline
    # does not know means the gate has nothing to compare it against; a
    # baseline key the fresh run skipped means coverage silently
    # shrank (tolerated only for fast-mode smoke subsets).
    for name, base_entries in base_sections.items():
        fresh_entries = fresh_sections.get(name, {})
        for key in base_entries:
            if key not in fresh_entries:
                label = f"{path}:{name}:{dict(key)}"
                if fresh.get("fast"):
                    print(f"{label}: not re-run by the fast-mode subset")
                else:
                    print(f"FAIL {label}: in baseline but missing from "
                          f"the fresh run")
                    failures.append(f"{label}: missing from fresh run")
    for name, fresh_entries in fresh_sections.items():
        base_entries = base_sections.get(name, {})
        for key, entry in fresh_entries.items():
            base = base_entries.get(key)
            label = f"{path}:{name}:{dict(key)}"
            if base is None:
                print(f"FAIL {label}: not in committed baseline "
                      f"(unknown entry key — update the baseline)")
                failures.append(f"{label}: not in committed baseline")
                continue
            for field, higher_better in gated_metrics(entry):
                if field not in base:
                    continue
                old, new = float(base[field]), float(entry[field])
                if higher_better:
                    old, new = min(old, SPEEDUP_CAP), min(new, SPEEDUP_CAP)
                if old <= 0:
                    continue
                # Regression fraction: how much worse the fresh mean is.
                delta = (old - new) / old if higher_better else (new - old) / old
                verdict = "FAIL" if delta > THRESHOLD else "ok"
                print(
                    f"{verdict:4} {label} {field}: "
                    f"{old:g} -> {new:g} ({-delta:+.1%})"
                )
                compared += 1
                if delta > THRESHOLD:
                    failures.append(f"{label} {field}")

if failures:
    print(f"\nbench_delta: {len(failures)} regression(s) beyond "
          f"{THRESHOLD:.0%}:")
    for f in failures:
        print(f"  {f}")
    sys.exit(1)
print(f"\nbench_delta: OK ({compared} means within {THRESHOLD:.0%})")
EOF
