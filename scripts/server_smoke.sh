#!/usr/bin/env sh
# End-to-end smoke test for the sheet server (DESIGN.md §15): boot the
# release binary with the tiny TPC-H preload, drive a multi-session
# workload over plain HTTP with curl, and verify snapshot isolation,
# refresh, writer endpoints and the error->status mapping from outside
# the process.
#
#   scripts/server_smoke.sh [path/to/ssa-server]
#
# The binary defaults to target/release/ssa-server (build it first with
# `cargo build --release -p ssa-server`). The server is started on an
# ephemeral port (--port 0) and its bound address scraped from the
# "listening on ADDR" line it prints, so parallel CI jobs cannot collide.
set -eu

cd "$(dirname "$0")/.."

SERVER_BIN="${1:-target/release/ssa-server}"
if [ ! -x "$SERVER_BIN" ]; then
    echo "server_smoke: $SERVER_BIN not found or not executable" >&2
    echo "server_smoke: build it with: cargo build --release -p ssa-server" >&2
    exit 1
fi

WORK_DIR="$(mktemp -d)"
SERVER_PID=""
REPLICA_PIDS=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    for pid in $REPLICA_PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK_DIR"
}
trap cleanup EXIT INT TERM

# wait_addr LOGFILE PID -> the "listening on ADDR" address, or dies.
wait_addr() {
    log="$1" pid="$2" addr="" tries=0
    while [ -z "$addr" ]; do
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "server_smoke: server (pid $pid) died during startup:" >&2
            cat "$log" >&2
            exit 1
        fi
        addr="$(sed -n 's/^listening on //p' "$log" | head -n 1)"
        tries=$((tries + 1))
        if [ "$tries" -gt 100 ]; then
            echo "server_smoke: no 'listening on' line after 10s" >&2
            cat "$log" >&2
            exit 1
        fi
        [ -z "$addr" ] && sleep 0.1
    done
    printf '%s' "$addr"
}

echo "==> booting $SERVER_BIN --port 0 --preload tiny"
"$SERVER_BIN" --port 0 --preload tiny >"$WORK_DIR/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the "listening on ADDR" line (the binary prints it once the
# socket is bound); fail fast if the process dies first.
ADDR="$(wait_addr "$WORK_DIR/server.log" "$SERVER_PID")"
BASE="http://$ADDR"
echo "==> server up at $BASE (pid $SERVER_PID)"

# req_at BASE METHOD PATH EXPECTED_STATUS [BODY_FILE] -> body on stdout.
# A 503 means the accept queue shed the connection (the server asks for
# a retry via Retry-After); back off with jitter and try again rather
# than failing the smoke run on transient saturation.
req_at() {
    base="$1" method="$2" path="$3" expect="$4" body_file="${5:-}"
    out="$WORK_DIR/resp.body"
    attempt=0
    while :; do
        if [ -n "$body_file" ]; then
            status="$(curl -s -o "$out" -w '%{http_code}' -X "$method" \
                --data-binary "@$body_file" "$base$path")"
        else
            status="$(curl -s -o "$out" -w '%{http_code}' -X "$method" \
                "$base$path")"
        fi
        if [ "$status" = 503 ] && [ "$expect" != 503 ] && [ "$attempt" -lt 5 ]; then
            attempt=$((attempt + 1))
            pause="$(awk -v a="$attempt" \
                'BEGIN{srand(); printf "%.2f", 0.1 * a + rand() * 0.2}')"
            echo "server_smoke: $method $path shed with 503; retry $attempt in ${pause}s" >&2
            sleep "$pause"
            continue
        fi
        break
    done
    if [ "$status" != "$expect" ]; then
        echo "server_smoke: $method $path -> $status (want $expect)" >&2
        cat "$out" >&2
        exit 1
    fi
    cat "$out"
}

# req METHOD PATH EXPECTED_STATUS [BODY_FILE] -> body on stdout.
req() {
    req_at "$BASE" "$@"
}

# expect_contains HAYSTACK NEEDLE LABEL
expect_contains() {
    case "$1" in
    *"$2"*) ;;
    *)
        echo "server_smoke: $3: expected $2 in: $1" >&2
        exit 1
        ;;
    esac
}

echo "==> health + preloaded catalog"
req GET /health 200 >/dev/null
sheets="$(req GET /sheets 200)"
expect_contains "$sheets" '"orders"' "preloaded sheets"

echo "==> create a sheet from CSV, duplicate is 409"
cat >"$WORK_DIR/fruit.csv" <<'CSV'
name,qty,price
apple,10,0.5
banana,6,0.25
cherry,40,3.0
CSV
req PUT /sheets/fruit 201 "$WORK_DIR/fruit.csv" >/dev/null
req PUT /sheets/fruit 409 "$WORK_DIR/fruit.csv" >/dev/null
meta="$(req GET /sheets/fruit 200)"
expect_contains "$meta" '"rows": 3' "fresh sheet row count"
req GET /sheets/nosuch 404 >/dev/null

echo "==> two sessions pin the same snapshot, one queries"
s1="$(req POST '/sessions?sheet=fruit' 201)"
s2="$(req POST '/sessions?sheet=fruit' 201)"
id1="$(printf '%s' "$s1" | sed -n 's/.*"session": \([0-9]*\).*/\1/p')"
id2="$(printf '%s' "$s2" | sed -n 's/.*"session": \([0-9]*\).*/\1/p')"
printf 'order price desc' >"$WORK_DIR/op"
req POST "/sessions/$id1/apply" 200 "$WORK_DIR/op" >/dev/null
view1="$(req GET "/sessions/$id1/view" 200)"
expect_contains "$view1" cherry "ordered view"

echo "==> writer endpoints commit and bump the version"
printf 'durian,2,7.5' >"$WORK_DIR/rows"
appended="$(req POST /sheets/fruit/rows 200 "$WORK_DIR/rows")"
expect_contains "$appended" '"version": 1' "append bumps version"
printf '1 qty 11' >"$WORK_DIR/cell"
updated="$(req POST /sheets/fruit/cells 200 "$WORK_DIR/cell")"
expect_contains "$updated" '"version": 2' "update bumps version"

echo "==> pinned sessions do not see the commit until refresh"
view1_after="$(req GET "/sessions/$id1/view" 200)"
if [ "$view1" != "$view1_after" ]; then
    echo "server_smoke: pinned session view drifted across a commit" >&2
    exit 1
fi
view2="$(req GET "/sessions/$id2/view" 200)"
case "$view2" in
*durian*)
    echo "server_smoke: unrefreshed session sees the new row" >&2
    exit 1
    ;;
esac
refreshed="$(req POST "/sessions/$id2/refresh" 200)"
expect_contains "$refreshed" '"version": 2' "refresh re-pins to latest"
view2="$(req GET "/sessions/$id2/view" 200)"
expect_contains "$view2" durian "refreshed session sees the new row"
view1_after="$(req GET "/sessions/$id1/view" 200)"
if [ "$view1" != "$view1_after" ]; then
    echo "server_smoke: session 1 drifted after session 2 refreshed" >&2
    exit 1
fi

echo "==> error mapping: write commands in sessions are 409, bad ops 400"
printf 'setcell 1 qty 99' >"$WORK_DIR/op"
req POST "/sessions/$id1/apply" 409 "$WORK_DIR/op" >/dev/null
printf 'select nosuchcol > 1' >"$WORK_DIR/op"
req POST "/sessions/$id1/apply" 404 "$WORK_DIR/op" >/dev/null
printf 'frobnicate' >"$WORK_DIR/op"
req POST "/sessions/$id1/apply" 400 "$WORK_DIR/op" >/dev/null

echo "==> sessions close cleanly"
req DELETE "/sessions/$id1" 200 >/dev/null
req GET "/sessions/$id1/view" 404 >/dev/null
req DELETE "/sessions/$id2" 200 >/dev/null

# --- Durability & replication (DESIGN.md §17) -------------------------
# Two durable replicas of the same sheet diverge, exchange op-logs over
# /sync, and converge bitwise; a SIGKILLed replica reopens its snapshot
# + WAL and still agrees with its peer.

echo "==> booting two durable replicas (fsync always)"
mkdir -p "$WORK_DIR/ra" "$WORK_DIR/rb"
"$SERVER_BIN" --port 0 --durable "$WORK_DIR/ra" --fsync always --replica 1 \
    >"$WORK_DIR/ra.log" 2>&1 &
PID_A=$!
REPLICA_PIDS="$REPLICA_PIDS $PID_A"
"$SERVER_BIN" --port 0 --durable "$WORK_DIR/rb" --fsync always --replica 2 \
    >"$WORK_DIR/rb.log" 2>&1 &
PID_B=$!
REPLICA_PIDS="$REPLICA_PIDS $PID_B"
BASE_A="http://$(wait_addr "$WORK_DIR/ra.log" "$PID_A")"
BASE_B="http://$(wait_addr "$WORK_DIR/rb.log" "$PID_B")"
echo "==> replica 1 at $BASE_A, replica 2 at $BASE_B"

echo "==> same genesis on both, divergent edits"
req_at "$BASE_A" PUT /sheets/fruit 201 "$WORK_DIR/fruit.csv" >/dev/null
req_at "$BASE_B" PUT /sheets/fruit 201 "$WORK_DIR/fruit.csv" >/dev/null
printf 'select price < 2.0\norder qty desc 1\n' >"$WORK_DIR/ops_a"
req_at "$BASE_A" POST /sheets/fruit/ops 200 "$WORK_DIR/ops_a" >/dev/null
printf 'elderberry,12,1.75' >"$WORK_DIR/rows_b"
req_at "$BASE_B" POST /sheets/fruit/rows 200 "$WORK_DIR/rows_b" >/dev/null
fp_a="$(req_at "$BASE_A" GET /sheets/fruit/fingerprint 200)"
fp_b="$(req_at "$BASE_B" GET /sheets/fruit/fingerprint 200)"
if [ "$fp_a" = "$fp_b" ]; then
    echo "server_smoke: replicas agree before sync (edits not divergent?)" >&2
    exit 1
fi

echo "==> op-log exchange: A -> B, reply B -> A"
req_at "$BASE_A" GET /sheets/fruit/sync 200 >"$WORK_DIR/pull_a"
req_at "$BASE_B" POST /sheets/fruit/sync 200 "$WORK_DIR/pull_a" >"$WORK_DIR/reply_b"
req_at "$BASE_A" POST /sheets/fruit/sync 200 "$WORK_DIR/reply_b" >/dev/null
fp_a="$(req_at "$BASE_A" GET /sheets/fruit/fingerprint 200)"
fp_b="$(req_at "$BASE_B" GET /sheets/fruit/fingerprint 200)"
if [ "$fp_a" != "$fp_b" ]; then
    echo "server_smoke: replicas diverge after sync round-trip:" >&2
    echo "  A: $fp_a" >&2
    echo "  B: $fp_b" >&2
    exit 1
fi
echo "==> replicas converged: $(printf '%s' "$fp_a" | cut -c1-64)..."

echo "==> SIGKILL replica 1, reopen from snapshot + WAL"
kill -9 "$PID_A" 2>/dev/null || true
wait "$PID_A" 2>/dev/null || true
"$SERVER_BIN" --port 0 --durable "$WORK_DIR/ra" --fsync always --replica 1 \
    --open "$WORK_DIR/ra/fruit.sheet" >"$WORK_DIR/ra2.log" 2>&1 &
PID_A=$!
REPLICA_PIDS="$REPLICA_PIDS $PID_A"
BASE_A="http://$(wait_addr "$WORK_DIR/ra2.log" "$PID_A")"
fp_a="$(req_at "$BASE_A" GET /sheets/fruit/fingerprint 200)"
if [ "$fp_a" != "$fp_b" ]; then
    echo "server_smoke: recovered replica lost state: $fp_a != $fp_b" >&2
    exit 1
fi
echo "==> recovered replica still agrees with its peer"

echo "server_smoke: OK"
