#!/usr/bin/env sh
# End-to-end smoke test for the sheet server (DESIGN.md §15): boot the
# release binary with the tiny TPC-H preload, drive a multi-session
# workload over plain HTTP with curl, and verify snapshot isolation,
# refresh, writer endpoints and the error->status mapping from outside
# the process.
#
#   scripts/server_smoke.sh [path/to/ssa-server]
#
# The binary defaults to target/release/ssa-server (build it first with
# `cargo build --release -p ssa-server`). The server is started on an
# ephemeral port (--port 0) and its bound address scraped from the
# "listening on ADDR" line it prints, so parallel CI jobs cannot collide.
set -eu

cd "$(dirname "$0")/.."

SERVER_BIN="${1:-target/release/ssa-server}"
if [ ! -x "$SERVER_BIN" ]; then
    echo "server_smoke: $SERVER_BIN not found or not executable" >&2
    echo "server_smoke: build it with: cargo build --release -p ssa-server" >&2
    exit 1
fi

WORK_DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK_DIR"
}
trap cleanup EXIT INT TERM

echo "==> booting $SERVER_BIN --port 0 --preload tiny"
"$SERVER_BIN" --port 0 --preload tiny >"$WORK_DIR/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the "listening on ADDR" line (the binary prints it once the
# socket is bound); fail fast if the process dies first.
ADDR=""
tries=0
while [ -z "$ADDR" ]; do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "server_smoke: server died during startup:" >&2
        cat "$WORK_DIR/server.log" >&2
        exit 1
    fi
    ADDR="$(sed -n 's/^listening on //p' "$WORK_DIR/server.log" | head -n 1)"
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "server_smoke: no 'listening on' line after 10s" >&2
        cat "$WORK_DIR/server.log" >&2
        exit 1
    fi
    [ -z "$ADDR" ] && sleep 0.1
done
BASE="http://$ADDR"
echo "==> server up at $BASE (pid $SERVER_PID)"

# req METHOD PATH EXPECTED_STATUS [BODY_FILE] -> body on stdout.
req() {
    method="$1" path="$2" expect="$3" body_file="${4:-}"
    out="$WORK_DIR/resp.body"
    if [ -n "$body_file" ]; then
        status="$(curl -s -o "$out" -w '%{http_code}' -X "$method" \
            --data-binary "@$body_file" "$BASE$path")"
    else
        status="$(curl -s -o "$out" -w '%{http_code}' -X "$method" \
            "$BASE$path")"
    fi
    if [ "$status" != "$expect" ]; then
        echo "server_smoke: $method $path -> $status (want $expect)" >&2
        cat "$out" >&2
        exit 1
    fi
    cat "$out"
}

# expect_contains HAYSTACK NEEDLE LABEL
expect_contains() {
    case "$1" in
    *"$2"*) ;;
    *)
        echo "server_smoke: $3: expected $2 in: $1" >&2
        exit 1
        ;;
    esac
}

echo "==> health + preloaded catalog"
req GET /health 200 >/dev/null
sheets="$(req GET /sheets 200)"
expect_contains "$sheets" '"orders"' "preloaded sheets"

echo "==> create a sheet from CSV, duplicate is 409"
cat >"$WORK_DIR/fruit.csv" <<'CSV'
name,qty,price
apple,10,0.5
banana,6,0.25
cherry,40,3.0
CSV
req PUT /sheets/fruit 201 "$WORK_DIR/fruit.csv" >/dev/null
req PUT /sheets/fruit 409 "$WORK_DIR/fruit.csv" >/dev/null
meta="$(req GET /sheets/fruit 200)"
expect_contains "$meta" '"rows": 3' "fresh sheet row count"
req GET /sheets/nosuch 404 >/dev/null

echo "==> two sessions pin the same snapshot, one queries"
s1="$(req POST '/sessions?sheet=fruit' 201)"
s2="$(req POST '/sessions?sheet=fruit' 201)"
id1="$(printf '%s' "$s1" | sed -n 's/.*"session": \([0-9]*\).*/\1/p')"
id2="$(printf '%s' "$s2" | sed -n 's/.*"session": \([0-9]*\).*/\1/p')"
printf 'order price desc' >"$WORK_DIR/op"
req POST "/sessions/$id1/apply" 200 "$WORK_DIR/op" >/dev/null
view1="$(req GET "/sessions/$id1/view" 200)"
expect_contains "$view1" cherry "ordered view"

echo "==> writer endpoints commit and bump the version"
printf 'durian,2,7.5' >"$WORK_DIR/rows"
appended="$(req POST /sheets/fruit/rows 200 "$WORK_DIR/rows")"
expect_contains "$appended" '"version": 1' "append bumps version"
printf '1 qty 11' >"$WORK_DIR/cell"
updated="$(req POST /sheets/fruit/cells 200 "$WORK_DIR/cell")"
expect_contains "$updated" '"version": 2' "update bumps version"

echo "==> pinned sessions do not see the commit until refresh"
view1_after="$(req GET "/sessions/$id1/view" 200)"
if [ "$view1" != "$view1_after" ]; then
    echo "server_smoke: pinned session view drifted across a commit" >&2
    exit 1
fi
view2="$(req GET "/sessions/$id2/view" 200)"
case "$view2" in
*durian*)
    echo "server_smoke: unrefreshed session sees the new row" >&2
    exit 1
    ;;
esac
refreshed="$(req POST "/sessions/$id2/refresh" 200)"
expect_contains "$refreshed" '"version": 2' "refresh re-pins to latest"
view2="$(req GET "/sessions/$id2/view" 200)"
expect_contains "$view2" durian "refreshed session sees the new row"
view1_after="$(req GET "/sessions/$id1/view" 200)"
if [ "$view1" != "$view1_after" ]; then
    echo "server_smoke: session 1 drifted after session 2 refreshed" >&2
    exit 1
fi

echo "==> error mapping: write commands in sessions are 409, bad ops 400"
printf 'setcell 1 qty 99' >"$WORK_DIR/op"
req POST "/sessions/$id1/apply" 409 "$WORK_DIR/op" >/dev/null
printf 'select nosuchcol > 1' >"$WORK_DIR/op"
req POST "/sessions/$id1/apply" 404 "$WORK_DIR/op" >/dev/null
printf 'frobnicate' >"$WORK_DIR/op"
req POST "/sessions/$id1/apply" 400 "$WORK_DIR/op" >/dev/null

echo "==> sessions close cleanly"
req DELETE "/sessions/$id1" 200 >/dev/null
req GET "/sessions/$id1/view" 404 >/dev/null
req DELETE "/sessions/$id2" 200 >/dev/null

echo "server_smoke: OK"
