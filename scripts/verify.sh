#!/usr/bin/env sh
# Offline repo verification: the tier-1 gate plus formatting and lints.
#
#   scripts/verify.sh          # build + full test suite + fmt + clippy
#
# Works without network access (all dependencies are vendored or
# path-local). fmt/clippy are skipped with a notice when the toolchain
# component is not installed, so the script degrades to the tier-1
# gate on minimal toolchains.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

# The server binary must build warning-free on its own: it is what CI's
# server-smoke job boots, and a warning there is a bug waiting for a
# connection to trigger it.
echo "==> cargo build -p ssa-server --release (deny warnings)"
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo build -p ssa-server --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo test --workspace --features fault-injection"
cargo test --workspace --features fault-injection -q

# The binary codec's corruption fuzz and save-rollback pins run above as
# part of the workspace suites, but they are the load-bearing gate for
# the on-disk format (DESIGN.md §16), so name them: a refactor that
# accidentally drops these test files must fail here, not pass quietly.
echo "==> corruption fuzz + atomic-save rollback (fault-injection)"
cargo test --features fault-injection --test persist_binary --test atomicity -q

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format check"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy"
    cargo clippy --workspace --all-targets -- -D warnings
    # Library crates must not unwrap/expect on hot paths (test modules
    # opt back in via cfg_attr); see DESIGN.md §12.
    echo "==> cargo clippy (deny unwrap in library crates)"
    cargo clippy -p spreadsheet-algebra -p ssa-relation -p ssa-server -- \
        -D warnings -D clippy::unwrap_used
else
    echo "==> cargo clippy not installed; skipping lints"
fi

if command -v shellcheck >/dev/null 2>&1; then
    echo "==> shellcheck scripts/*.sh"
    shellcheck scripts/*.sh
else
    echo "==> shellcheck not installed; skipping shell lint"
fi

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "verify: OK"
