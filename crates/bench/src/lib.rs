//! # ssa-bench — benchmark harness
//!
//! * the [`repro`](../repro/index.html) binary (`cargo run -p ssa-bench --bin repro`)
//!   regenerates every table and figure of the paper;
//! * criterion benches (`cargo bench`) measure operator scaling, query
//!   modification vs naive replay, commutativity overhead, the TPC-H
//!   study tasks through both evaluation paths, and the simulated study.
//!
//! Shared workload builders live here so benches and the binary agree on
//! the data they measure.

pub mod harness;

use spreadsheet_algebra::Spreadsheet;
use ssa_relation::schema::Schema;
use ssa_relation::ValueType::{Int, Str};
use ssa_relation::{Relation, Tuple, Value};

/// A synthetic car-like relation of `n` rows for scaling benches.
pub fn synthetic_cars(n: usize) -> Relation {
    let schema = Schema::of(&[
        ("ID", Int),
        ("Model", Str),
        ("Price", Int),
        ("Year", Int),
        ("Mileage", Int),
    ]);
    let models = ["Jetta", "Civic", "Accord", "Focus", "Corolla"];
    let mut rel = Relation::new("cars", schema);
    for i in 0..n {
        // Deterministic pseudo-random-ish mix without an RNG dependency.
        let m = models[(i * 7 + i / 11) % models.len()];
        rel.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::str(m),
            Value::Int(10_000 + ((i * 131) % 15_000) as i64),
            Value::Int(2000 + ((i * 13) % 10) as i64),
            Value::Int(10_000 + ((i * 977) % 150_000) as i64),
        ]))
        .expect("widths match");
    }
    rel
}

/// A string-heavy synthetic relation of `n` rows: used-car listings where
/// most columns are inferred strings (model, dealer, city, comment), in
/// the spirit of the TPC-H-derived study workloads (names, nations,
/// comments). Exercises string hashing (dedup), string grouping, string
/// sorting, and the string-dominated row gather.
pub fn synthetic_listings(n: usize) -> Relation {
    let schema = Schema::of(&[
        ("ID", Int),
        ("Model", Str),
        ("Dealer", Str),
        ("City", Str),
        ("Comment", Str),
        ("Price", Int),
    ]);
    let models = [
        "Jetta", "Civic", "Accord", "Focus", "Corolla", "Passat", "Camry", "Golf", "Fit", "Mazda3",
    ];
    let cities = [
        "Ann Arbor",
        "Ypsilanti",
        "Detroit",
        "Lansing",
        "Flint",
        "Saginaw",
        "Kalamazoo",
        "Grand Rapids",
        "Traverse City",
        "Marquette",
    ];
    let adjectives = ["excellent", "good", "fair", "rough", "pristine", "average"];
    let mut rel = Relation::new("listings", schema);
    for i in 0..n {
        // Deterministic pseudo-random-ish mix without an RNG dependency.
        let model = models[(i * 7 + i / 11) % models.len()];
        let dealer = format!(
            "Dealer #{:03} of {}",
            (i * 131) % 200,
            cities[(i * 3) % cities.len()]
        );
        let city = cities[(i * 17 + i / 13) % cities.len()];
        // Comments are mostly distinct: string hashing and cloning cannot
        // be amortized over a handful of repeated values.
        let comment = format!(
            "{} condition {} — odo check {} (listing {})",
            adjectives[(i * 5) % adjectives.len()],
            model,
            10_000 + ((i * 977) % 150_000),
            i
        );
        rel.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::str(model),
            Value::from(dealer),
            Value::str(city),
            Value::from(comment),
            Value::Int(10_000 + ((i * 131) % 15_000) as i64),
        ]))
        .expect("widths match");
    }
    rel
}

/// A sheet over [`synthetic_cars`] with the paper's standard arrangement.
pub fn arranged_sheet(n: usize) -> Spreadsheet {
    use spreadsheet_algebra::Direction;
    let mut s = Spreadsheet::over(synthetic_cars(n));
    s.group(&["Model"], Direction::Asc).expect("Model exists");
    s.group(&["Model", "Year"], Direction::Asc)
        .expect("superset");
    s.order("Price", Direction::Asc, 3).expect("finest level");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_cars_deterministic_and_sized() {
        let a = synthetic_cars(100);
        let b = synthetic_cars(100);
        assert!(a.multiset_eq(&b));
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn arranged_sheet_evaluates() {
        let mut s = arranged_sheet(50);
        assert_eq!(s.view().unwrap().len(), 50);
        assert_eq!(s.view().unwrap().tree.depth(), 3);
    }
}
