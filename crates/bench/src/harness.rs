//! In-tree micro-benchmark harness with a criterion-shaped API.
//!
//! The workspace builds with no registry access, so the `[[bench]]`
//! targets run on this shim instead of the criterion crate. It keeps the
//! subset of the API the benches use — `Criterion::bench_function`,
//! `benchmark_group`/`sample_size`/`bench_with_input`/`finish`,
//! `BenchmarkId::from_parameter`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by plain
//! `std::time::Instant` sampling (warm-up, then timed samples; the median
//! is reported). Statistical machinery (outlier analysis, regression
//! tracking) is intentionally out of scope.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How long to spin before measuring, and roughly how long each recorded
/// sample should take. Overridable through `SSA_BENCH_FAST=1`, which the
/// repo's verify script uses to smoke-test bench targets quickly.
fn budget() -> (Duration, Duration, usize) {
    if std::env::var_os("SSA_BENCH_FAST").is_some() {
        (Duration::from_millis(5), Duration::from_millis(5), 5)
    } else {
        (Duration::from_millis(120), Duration::from_millis(40), 20)
    }
}

/// Summary statistics of one benchmark in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    pub median_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

/// Time one closure: warm up, pick an iteration count per sample, then
/// record `samples` timed batches. Returns per-iteration statistics.
pub fn measure<O>(mut f: impl FnMut() -> O, sample_target: Duration, samples: usize) -> Stats {
    let (warmup, _, _) = budget();
    // Warm-up, also yielding a first throughput estimate.
    let start = Instant::now();
    let mut warm_iters: u64 = 0;
    while start.elapsed() < warmup || warm_iters == 0 {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
    let iters = ((sample_target.as_secs_f64() / per_iter).ceil() as u64).max(1);

    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        times.push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median_ns = times[times.len() / 2];
    let mean_ns = times.iter().sum::<f64>() / times.len() as f64;
    Stats {
        median_ns,
        mean_ns,
        min_ns: times[0],
        max_ns: times[times.len() - 1],
        samples,
        iters_per_sample: iters,
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Identifies one benchmark within a group, mirroring criterion's type.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: p.to_string(),
        }
    }

    pub fn new(name: impl Display, p: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{p}"),
        }
    }
}

/// Passed to the closure under test; `iter` runs and times it.
pub struct Bencher<'a> {
    stats: &'a mut Option<Stats>,
    sample_target: Duration,
    samples: usize,
}

impl Bencher<'_> {
    pub fn iter<O>(&mut self, f: impl FnMut() -> O) {
        *self.stats = Some(measure(f, self.sample_target, self.samples));
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    fn run_one(&mut self, label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
        let (_, sample_target, default_samples) = budget();
        let samples = samples.min(default_samples).max(3);
        let mut stats = None;
        f(&mut Bencher {
            stats: &mut stats,
            sample_target,
            samples,
        });
        match stats {
            Some(s) => println!(
                "{label:<44} time: [{} {} {}]  ({} samples × {} iters)",
                human(s.min_ns),
                human(s.median_ns),
                human(s.max_ns),
                s.samples,
                s.iters_per_sample,
            ),
            None => println!("{label:<44} (no measurement recorded)"),
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let (_, _, samples) = budget();
        self.run_one(name, samples, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (_, _, samples) = budget();
        BenchmarkGroup {
            c: self,
            name: name.into(),
            samples,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Criterion requires ≥ 10; accept anything ≥ 1 here.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function(
        &mut self,
        name: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        self.c.run_one(&label, self.samples, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.text);
        self.c.run_one(&label, self.samples, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Bundle benchmark functions under a name, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group, honoring a substring filter argument
/// the same way `cargo bench -- <filter>` reaches criterion (coarsely: any
/// non-flag argument must be a substring of the group fn's name to run it).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let filters: Vec<String> = std::env::args()
                .skip(1)
                .filter(|a| !a.starts_with('-'))
                .collect();
            $(
                let name = stringify!($group);
                if filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str())) {
                    $group();
                }
            )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_sane_stats() {
        let s = measure(
            || std::hint::black_box(2_u64).pow(10),
            Duration::from_millis(1),
            5,
        );
        assert_eq!(s.samples, 5);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert!(s.median_ns > 0.0);
    }

    #[test]
    fn group_api_shape_works() {
        std::env::set_var("SSA_BENCH_FAST", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(4);
        g.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
