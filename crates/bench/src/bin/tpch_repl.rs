//! Interactive SheetMusiq REPL over the generated TPC-H study database —
//! the base tables plus the predefined study views, exactly as a study
//! participant saw them. Try the study tasks yourself:
//!
//! ```text
//! load v_custsales
//! select c_mktsegment = 'BUILDING' AND o_orderdate < 19950315
//! select l_shipdate > 19950315
//! group l_orderkey
//! agg sum l_revenue 2
//! order Sum_l_revenue desc 2
//! ```
//!
//! Or let the Theorem-1 translation do it: `sql SELECT …`.

use sheetmusiq::{ScriptHost, Session};
use ssa_tpch::study_setup;
use std::io::{self, BufRead, Write};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("Generating TPC-H study database at scale {scale} (seed 2009)…");
    let (catalog, tasks) = study_setup(scale, 2009);
    println!("Tables/views: {}", catalog.names().join(", "));
    println!("\nThe ten study tasks:");
    for t in &tasks {
        println!("  {:>2}. [{}] {}", t.id, t.complexity, t.description);
    }
    println!("\n{}", sheetmusiq::HELP);

    let mut host = ScriptHost::new(Session::new(catalog));
    let stdin = io::stdin();
    let mut line = String::new();
    loop {
        print!("musiq> ");
        io::stdout().flush().expect("stdout flush");
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let cmd = line.trim();
        if cmd.eq_ignore_ascii_case("quit") || cmd.eq_ignore_ascii_case("exit") {
            break;
        }
        match host.execute(cmd) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
