//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro                  # everything
//! repro table1           # Table I   — sample used-car database
//! repro table2           # Table II  — after grouping by Condition
//! repro table3           # Table III — Avg_Price computed column
//! repro table4_5         # Tables IV–V — query modification
//! repro table6           # Table VI  — subjective results
//! repro fig3 fig4 fig5   # user-study figures
//! repro significance     # Mann-Whitney + Fisher claims
//! repro sensitivity      # robustness of the study shape across seeds
//! repro theorems         # Theorem 1–3 spot checks
//! ```

use spreadsheet_algebra::fixtures::used_cars;
use spreadsheet_algebra::prelude::*;
use spreadsheet_algebra::render::render_table;
use ssa_study::{
    correctness_significance, fig3_speed, fig4_stddev, fig5_correctness, run_study,
    speed_significance, table6_subjective, StudyConfig,
};
use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("table1") {
        section("Table I — sample used-car database (grouped by Model DESC, Year ASC; Price ASC)");
        print!("{}", render(table1_sheet()));
    }
    if want("table2") {
        section("Table II — after grouping by {Year, Model, Condition} ASC (Example 1)");
        let mut sheet = table1_sheet();
        sheet
            .group(&["Year", "Model", "Condition"], Direction::Asc)
            .expect("grouping extends the paper's arrangement");
        print!("{}", render(sheet));
    }
    if want("table3") {
        section("Table III — Avg_Price per (Model, Year) as a computed column");
        let mut sheet = table1_sheet();
        sheet
            .aggregate(AggFunc::Avg, "Price", 3)
            .expect("level 3 exists");
        sheet.project_out("Condition").expect("Condition exists");
        print!("{}", render(sheet));
    }
    if want("table4_5") {
        section("Tables IV–V — query modification (Year = 2005 → 2006)");
        let mut sheet = Spreadsheet::over(used_cars());
        let year = sheet
            .select(Expr::col("Year").eq(Expr::lit(2005)))
            .expect("Year exists");
        sheet
            .select(Expr::col("Model").eq(Expr::lit("Jetta")))
            .expect("Model exists");
        sheet
            .select(Expr::col("Mileage").lt(Expr::lit(80000)))
            .expect("Mileage exists");
        sheet
            .group(&["Condition"], Direction::Asc)
            .expect("Condition exists");
        sheet
            .order("Price", Direction::Asc, 2)
            .expect("finest level");
        println!("Before modification (Table IV):");
        print!("{}", render(sheet.clone()));
        sheet
            .replace_selection(year, Expr::col("Year").eq(Expr::lit(2006)))
            .expect("the retained predicate is replaceable");
        println!("\nAfter modifying the retained Year predicate (Table V):");
        print!("{}", render(sheet));
    }

    let study =
        if want("fig3") || want("fig4") || want("fig5") || want("table6") || want("significance") {
            println!("\nRunning the simulated user study (10 subjects × 10 TPC-H tasks × 2 tools,");
            println!("system answers verified against the SQL reference first)…");
            Some(run_study(&StudyConfig::default()))
        } else {
            None
        };

    if let Some(result) = &study {
        if want("fig3") {
            section("Fig. 3 — average time per query (seconds)");
            println!("{:>5} {:>10} {:>10}", "query", "Navicat", "SheetMusiq");
            for s in fig3_speed(result) {
                println!("{:>5} {:>10.1} {:>10.1}", s.task, s.navicat, s.sheetmusiq);
            }
        }
        if want("fig4") {
            section("Fig. 4 — standard deviation of speeds (seconds)");
            println!("{:>5} {:>10} {:>10}", "query", "Navicat", "SheetMusiq");
            for s in fig4_stddev(result) {
                println!("{:>5} {:>10.1} {:>10.1}", s.task, s.navicat, s.sheetmusiq);
            }
        }
        if want("fig5") {
            section("Fig. 5 — users (of 10) completing each query correctly");
            println!("{:>5} {:>10} {:>10}", "query", "Navicat", "SheetMusiq");
            for s in fig5_correctness(result) {
                println!("{:>5} {:>10} {:>10}", s.task, s.navicat, s.sheetmusiq);
            }
        }
        if want("significance") {
            section("Significance — Mann-Whitney per query (speed), Fisher (correctness)");
            let paired = ssa_study::speed_significance_paired(result);
            for ((task, mw), (_, w)) in speed_significance(result).into_iter().zip(paired) {
                println!(
                    "query {:>2}: min-U = {:>5.1}, two-sided p = {:.6}{}  (paired Wilcoxon p = {:.5})",
                    task,
                    mw.u1.min(mw.u2),
                    mw.p_two_sided,
                    if mw.p_two_sided < 0.002 { "  << 0.002 (significant)" } else { "" },
                    w.p_two_sided
                );
            }
            let (musiq, navicat, p) = correctness_significance(result);
            println!(
                "correct totals: SheetMusiq {musiq}/100 vs Navicat {navicat}/100; Fisher p = {p:.6}"
            );
        }
        if want("table6") {
            section("Table VI — subjective results");
            let t6 = table6_subjective(result);
            println!(
                "Which package do you prefer to use?             SheetMusiq {} / Navicat {}",
                t6.prefer.0, t6.prefer.1
            );
            println!(
                "Seeing data helps formulate queries             yes {} / no {}",
                t6.seeing_data_helps.0, t6.seeing_data_helps.1
            );
            println!(
                "Progressive refinement better than all-at-once  yes {} / no {}",
                t6.progressive_better.0, t6.progressive_better.1
            );
            println!(
                "Database concepts easier in SheetMusiq          yes {} / no {}",
                t6.concepts_easier.0, t6.concepts_easier.1
            );
        }
    }

    if want("sensitivity") {
        section("Sensitivity — study conclusions across 10 participant-panel seeds");
        let rows = ssa_study::sweep(&(1..=10).collect::<Vec<u64>>(), 0.02);
        print!("{}", ssa_study::render_sweep(&rows));
    }

    if want("theorems") {
        section("Theorems 1–3 — spot checks (full property tests live in tests/)");
        theorem1_check();
        theorem2_check();
        theorem3_check();
    }
}

fn section(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Table I's arrangement: grouped Model DESC then Year ASC, Price ASC.
fn table1_sheet() -> Spreadsheet {
    let mut sheet = Spreadsheet::over(used_cars());
    sheet
        .group(&["Model"], Direction::Desc)
        .expect("Model exists");
    sheet
        .group(&["Model", "Year"], Direction::Asc)
        .expect("superset basis");
    sheet
        .order("Price", Direction::Asc, 3)
        .expect("finest level");
    sheet
}

fn render(sheet: Spreadsheet) -> String {
    render_table(&sheet.evaluate_now().expect("fixture sheets evaluate"))
}

fn theorem1_check() {
    use ssa_sql::{eval_select, parse_select, translate};
    let (catalog, tasks) = ssa_tpch::study_setup(0.05, 2009);
    let mut ok = 0;
    for task in &tasks {
        let stmt = parse_select(task.sql).expect("task SQL parses");
        let reference = eval_select(&stmt, &catalog).expect("reference evaluates");
        let translated = translate(&stmt, &catalog).expect("translation succeeds");
        let sheet_result = translated.result().expect("sheet evaluates");
        assert!(ssa_sql::equivalent(&stmt, &reference, &sheet_result));
        ok += 1;
    }
    println!("Theorem 1: all {ok}/10 study queries translate to equivalent spreadsheet programs");
}

fn theorem2_check() {
    use spreadsheet_algebra::may_commute;
    let sheet = Spreadsheet::over(used_cars());
    let pairs = [
        (
            AlgebraOp::Select {
                predicate: Expr::col("Year").eq(Expr::lit(2005)),
            },
            AlgebraOp::Aggregate {
                func: AggFunc::Avg,
                column: "Price".into(),
                level: 1,
            },
        ),
        (
            AlgebraOp::Dedup,
            AlgebraOp::Project {
                column: "Mileage".into(),
            },
        ),
    ];
    for (a, b) in pairs {
        assert!(may_commute(&a, &b, &sheet));
        let mut s1 = sheet.clone();
        a.apply(&mut s1).expect("op applies");
        b.apply(&mut s1).expect("op applies");
        let mut s2 = sheet.clone();
        b.apply(&mut s2).expect("op applies");
        a.apply(&mut s2).expect("op applies");
        assert_eq!(
            s1.evaluate_now().expect("evaluates"),
            s2.evaluate_now().expect("evaluates"),
            "{a} and {b} must commute"
        );
        println!("Theorem 2: {a} then {b}  ==  {b} then {a}   [ok]");
    }
}

fn theorem3_check() {
    // State-change modification equals replaying an edited history.
    let mut modified = Spreadsheet::over(used_cars());
    let id = modified
        .select(Expr::col("Year").eq(Expr::lit(2005)))
        .expect("select");
    modified
        .group(&["Condition"], Direction::Asc)
        .expect("group");
    modified
        .aggregate(AggFunc::Avg, "Price", 2)
        .expect("aggregate");
    modified
        .replace_selection(id, Expr::col("Year").eq(Expr::lit(2006)))
        .expect("modification");

    let mut replayed = Spreadsheet::over(used_cars());
    replayed
        .select(Expr::col("Year").eq(Expr::lit(2006)))
        .expect("select");
    replayed
        .group(&["Condition"], Direction::Asc)
        .expect("group");
    replayed
        .aggregate(AggFunc::Avg, "Price", 2)
        .expect("aggregate");

    assert_eq!(
        modified.evaluate_now().expect("evaluates"),
        replayed.evaluate_now().expect("evaluates")
    );
    println!("Theorem 3: query-state modification == rewriting history   [ok]");
}
