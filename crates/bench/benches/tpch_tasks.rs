//! A4 — the ten study tasks executed end-to-end, through both paths:
//! the SQL reference evaluator and the Theorem-1 spreadsheet-algebra
//! translation. Also benches the data generator itself.

use ssa_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssa_sql::{eval_select, translate};
use ssa_tpch::{generate, study_catalog, study_tasks, GenConfig};
use std::hint::black_box;

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpch_generate");
    g.sample_size(10);
    for scale in [0.05f64, 0.2] {
        g.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            b.iter(|| black_box(generate(&GenConfig::scale(scale), 1)).total_rows())
        });
    }
    g.finish();
}

fn bench_tasks(c: &mut Criterion) {
    let data = generate(&GenConfig::scale(0.05), 1);
    let catalog = study_catalog(&data).unwrap();
    let tasks = study_tasks();

    let mut g = c.benchmark_group("task_sql_reference");
    g.sample_size(10);
    for task in &tasks {
        let stmt = task.stmt();
        g.bench_with_input(BenchmarkId::from_parameter(task.id), &stmt, |b, stmt| {
            b.iter(|| black_box(eval_select(stmt, &catalog).unwrap()).len())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("task_spreadsheet_algebra");
    g.sample_size(10);
    for task in &tasks {
        let stmt = task.stmt();
        g.bench_with_input(BenchmarkId::from_parameter(task.id), &stmt, |b, stmt| {
            b.iter(|| {
                let t = translate(stmt, &catalog).unwrap();
                black_box(t.result().unwrap()).len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_generator, bench_tasks);
criterion_main!(benches);
