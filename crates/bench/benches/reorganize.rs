//! A5 — ablation of the reorganize fast path: data-organization
//! operators (grouping/ordering/projection) "do not change the actual
//! content" (Sec. III-A), so the engine re-sorts the cached evaluation
//! instead of re-running the canonical pipeline. This bench measures an
//! ordering change on a sheet with selections + an aggregate, with the
//! fast path on vs off.

use spreadsheet_algebra::{Direction, Spreadsheet};
use ssa_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssa_bench::synthetic_cars;
use ssa_relation::{AggFunc, Expr};
use std::hint::black_box;

fn prepared(n: usize, fast: bool) -> Spreadsheet {
    let mut s = Spreadsheet::over(synthetic_cars(n));
    s.set_fast_reorganize(fast);
    s.select(Expr::col("Price").lt(Expr::lit(24_000))).unwrap();
    s.group(&["Model"], Direction::Asc).unwrap();
    s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
    s.view().unwrap(); // prime the cache
    s
}

fn bench_reorder(c: &mut Criterion, name: &str, fast: bool) {
    let mut g = c.benchmark_group(name);
    for n in [1_000usize, 10_000] {
        let sheet = prepared(n, fast);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut s = sheet.clone();
            let mut desc = false;
            b.iter(|| {
                // flip the ordering each iteration so the spec always
                // changes and the reorganize path actually runs
                desc = !desc;
                let dir = if desc {
                    Direction::Desc
                } else {
                    Direction::Asc
                };
                s.order("Mileage", dir, 2).unwrap();
                black_box(s.view().unwrap().len())
            })
        });
    }
    g.finish();
}

fn fast_path(c: &mut Criterion) {
    bench_reorder(c, "reorder_fast_path", true);
}

fn full_reeval(c: &mut Criterion) {
    bench_reorder(c, "reorder_full_reeval", false);
}

criterion_group!(benches, fast_path, full_reeval);
criterion_main!(benches);
