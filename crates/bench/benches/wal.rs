//! Durability tax of the write-ahead log (DESIGN.md §17).
//!
//! Measures the latency of one acked append — `DurableSheet::commit`
//! of an `AppendRows` event, then `view()` — on a warm grouped orders
//! sheet, across the fsync spectrum:
//!
//! - `append_full`: no WAL and no streaming (`set_incremental(false)`)
//!   — the PR 7 full re-evaluation floor the §14 speedup is gated
//!   against.
//! - `append_nowal`: in-memory replica, no log at all — the streaming
//!   ceiling the WAL's overhead is measured from.
//! - `append_wal_never` / `append_wal_batch` / `append_wal_always`:
//!   logged commits with fsync per policy.
//!
//! Two gates ride on this file (`scripts/bench_delta.sh`): the batch
//! policy must keep the §14 ≥10x append speedup over full re-eval at
//! 100k rows — durability must not eat the streaming win — and its
//! `overhead_ratio` (logged / unlogged append) must stay ≤ 2x.
//!
//! Results go to console and `BENCH_wal.json` at the repository root.
//! `SSA_BENCH_FAST=1` runs a tiny smoke configuration (the JSON is then
//! marked `"fast": true`).

use spreadsheet_algebra::prelude::*;
use spreadsheet_algebra::{DurableSheet, FsyncPolicy, SheetOp};
use ssa_relation::Relation;
use ssa_tpch::{schema, FeedConfig, OrderFeed};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

fn feed_for(n: usize) -> OrderFeed {
    OrderFeed::new(
        FeedConfig {
            customers: (n / 100).max(10),
            ..FeedConfig::default()
        },
        0x5712_EA11,
    )
}

fn orders(n: usize, feed: &mut OrderFeed) -> Relation {
    let mut orders = Relation::new("orders", schema::orders());
    orders
        .append_rows(feed.batch(n))
        .expect("feed rows match the orders schema");
    orders
}

/// The §14 query state, expressed as replicated ops: two grouping
/// levels, a sort, two aggregates and a selection — every append lands
/// in one bounded group of the warm cache.
fn query_ops() -> Vec<SheetOp> {
    vec![
        SheetOp::Group {
            attributes: vec!["o_orderstatus".into()],
            direction: Direction::Asc,
        },
        SheetOp::Group {
            attributes: vec!["o_custkey".into()],
            direction: Direction::Asc,
        },
        SheetOp::Order {
            attribute: "o_totalprice".into(),
            direction: Direction::Asc,
            level: 3,
        },
        SheetOp::Aggregate {
            func: AggFunc::Avg,
            column: "o_totalprice".into(),
            level: 3,
        },
        SheetOp::Aggregate {
            func: AggFunc::Count,
            column: "o_orderkey".into(),
            level: 3,
        },
        SheetOp::Select {
            predicate: Expr::col("o_totalprice").lt(Expr::lit(179_000.0)),
        },
    ]
}

/// Warm a durable sheet: commit the query state, evaluate, and burn one
/// pre-warm append+view so the timed loop measures steady state.
fn warm(sheet: &mut DurableSheet, feed: &mut OrderFeed) {
    for op in query_ops() {
        sheet.commit(op).expect("query op commits");
    }
    sheet.view().expect("template evaluates");
    sheet
        .commit(SheetOp::AppendRows {
            rows: feed.batch(1),
        })
        .expect("pre-warm append");
    sheet.view().expect("pre-warm evaluates");
}

/// Median wall time of one acked append (commit + view) in ms.
fn time_durable(sheet: &mut DurableSheet, feed: &mut OrderFeed, samples: usize) -> f64 {
    let mut times = Vec::with_capacity(samples);
    for i in 0..samples + 2 {
        let rows = feed.batch(1);
        let t = Instant::now();
        sheet
            .commit(SheetOp::AppendRows { rows })
            .expect("timed append commits");
        black_box(sheet.view().expect("timed append evaluates"));
        if i >= 2 {
            times.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Median wall time of one append on the no-WAL, no-streaming floor.
fn time_full(n: usize, samples: usize) -> f64 {
    let mut feed = feed_for(n);
    let mut s = Spreadsheet::over(orders(n, &mut feed));
    s.group(&["o_orderstatus"], Direction::Asc).expect("group");
    s.group_add(&["o_custkey"], Direction::Asc).expect("group");
    s.order("o_totalprice", Direction::Asc, 3).expect("order");
    s.aggregate(AggFunc::Avg, "o_totalprice", 3).expect("agg");
    s.aggregate(AggFunc::Count, "o_orderkey", 3).expect("agg");
    s.select(Expr::col("o_totalprice").lt(Expr::lit(179_000.0)))
        .expect("select");
    s.set_incremental(false);
    s.set_fast_reorganize(false);
    s.view().expect("full template evaluates");
    let mut times = Vec::with_capacity(samples);
    for i in 0..samples + 2 {
        let rows = feed.batch(1);
        let t = Instant::now();
        s.append_rows(rows).expect("full append");
        black_box(s.view().expect("full append evaluates"));
        if i >= 2 {
            times.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn bench_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssa-wal-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    dir
}

struct Row {
    rows: usize,
    scenario: &'static str,
    ms: f64,
    speedup: f64,
    overhead_ratio: f64,
}

fn main() {
    let fast = std::env::var_os("SSA_BENCH_FAST").is_some();
    let sizes: &[usize] = if fast {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let samples = if fast { 5 } else { 25 };
    let dir = bench_dir();

    // Oracle check before anything is timed: a logged replica must end
    // bitwise equal to an unlogged one fed the same events.
    {
        let mut feed_a = feed_for(1_000);
        let mut feed_b = feed_for(1_000);
        let mut logged = DurableSheet::create(
            dir.join("oracle.sheet"),
            1,
            orders(1_000, &mut feed_a),
            FsyncPolicy::Always,
        )
        .expect("create oracle");
        let mut plain =
            DurableSheet::in_memory(1, orders(1_000, &mut feed_b)).expect("in-memory oracle");
        warm(&mut logged, &mut feed_a);
        warm(&mut plain, &mut feed_b);
        assert_eq!(
            logged.replica().fingerprint(),
            plain.replica().fingerprint(),
            "logged and unlogged replicas diverged — bench aborted"
        );
    }

    let policies: &[(&'static str, Option<FsyncPolicy>)] = &[
        ("append_nowal", None),
        ("append_wal_never", Some(FsyncPolicy::Never)),
        (
            "append_wal_batch",
            Some(FsyncPolicy::Batch(std::time::Duration::from_millis(25))),
        ),
        ("append_wal_always", Some(FsyncPolicy::Always)),
    ];

    let mut results = Vec::new();
    for &n in sizes {
        let full_ms = time_full(n, samples);
        println!("wal/{n:>6} rows/append_full       {full_ms:9.3} ms");
        results.push(Row {
            rows: n,
            scenario: "append_full",
            ms: full_ms,
            speedup: 1.0,
            overhead_ratio: 0.0,
        });

        let mut nowal_ms = f64::NAN;
        for (name, policy) in policies {
            let mut feed = feed_for(n);
            let base = orders(n, &mut feed);
            let mut sheet = match policy {
                None => DurableSheet::in_memory(1, base).expect("in-memory sheet"),
                Some(p) => {
                    let path = dir.join(format!("{name}_{n}.sheet"));
                    let _ = std::fs::remove_file(&path);
                    let _ = std::fs::remove_file(path.with_extension("sheet.wal"));
                    DurableSheet::create(&path, 1, base, *p).expect("durable sheet")
                }
            };
            warm(&mut sheet, &mut feed);
            let ms = time_durable(&mut sheet, &mut feed, samples);
            if policy.is_none() {
                nowal_ms = ms;
            }
            let overhead = ms / nowal_ms;
            println!(
                "wal/{n:>6} rows/{name:18} {ms:9.3} ms  speedup {:6.2}x  overhead {overhead:5.2}x",
                full_ms / ms,
            );
            results.push(Row {
                rows: n,
                scenario: name,
                ms,
                speedup: full_ms / ms,
                overhead_ratio: overhead,
            });
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"wal\",\n");
    json.push_str(
        "  \"workload\": \"warm 2-level grouped orders sheet; one acked append (commit + view) per sample, across fsync policies\",\n",
    );
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str("  \"appends\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"scenario\": \"{}\", \"ms\": {:.3}, \"speedup\": {:.2}, \"overhead_ratio\": {:.2}}}{}\n",
            r.rows,
            r.scenario,
            r.ms,
            r.speedup,
            r.overhead_ratio,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal.json");
    std::fs::write(path, &json).expect("write BENCH_wal.json at repo root");
    println!("wrote {path}");
}
