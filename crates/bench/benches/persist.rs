//! Binary columnar persistence vs the JSON codec (DESIGN.md §16).
//!
//! Measures, on an orders-shaped table:
//!
//! * `save` — atomic binary save vs atomic JSON save;
//! * `cold_open_query_1col` — from a cold handle, open the file and
//!   answer a selective filter that touches **one** column. The binary
//!   side pays head + footer + meta + one column's chunks; the JSON
//!   baseline must parse the entire dump before it can look at anything.
//!   This is the tentpole claim: cold open-to-first-answer is O(touched
//!   columns), gated at ≥5x by `scripts/bench_delta.sh` at 1M rows;
//! * `cold_open_query_all` — the same query projecting every column
//!   (the binary side's worst case: all chunks load).
//!
//! Peak resident-set sizes are measured in fresh child processes (the
//! bench re-execs itself with `SSA_PERSIST_RSS_MODE` set, does one cold
//! open + query, and reports its own `VmHWM`), so the paged path's
//! footprint is not polluted by the parent's table generation — showing
//! the paged open serving its first answer with far less memory than
//! full materialization. Results go to console and `BENCH_persist.json`
//! at the repository root; `SSA_BENCH_FAST=1` runs a smoke size (JSON
//! marked `"fast": true`).

use spreadsheet_algebra::storage::{save_sheet_json, PagedSheet};
use spreadsheet_algebra::{QueryState, StoredSheet};
use ssa_relation::rng::Rng;
use ssa_relation::{Expr, Relation, Schema, Tuple, Value, ValueType};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const PRICE_CUTOFF: f64 = 500.0; // ~5% of the uniform [0, 10k) prices

fn orders_sheet(rows: usize) -> StoredSheet {
    let statuses = ["open", "paid", "shipped", "done", "void"];
    let mut rng = Rng::seed_from_u64(0x9E55_1057);
    let relation = Relation::with_rows(
        "orders",
        Schema::of(&[
            ("o_id", ValueType::Int),
            ("o_cust", ValueType::Int),
            ("o_price", ValueType::Float),
            ("o_qty", ValueType::Int),
            ("o_status", ValueType::Str),
            ("o_comment", ValueType::Str),
        ]),
        (0..rows)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::Int(rng.gen_range(0..(rows / 100).max(10) as i64)),
                    Value::Float((rng.next_u64() % 10_000_000) as f64 / 1_000.0),
                    Value::Int(rng.gen_range(1..50i64)),
                    Value::str(statuses[rng.gen_range(0..statuses.len())]),
                    Value::from(format!("comment-{}", rng.gen_range(0..1_000u64))),
                ])
            })
            .collect(),
    )
    .expect("orders relation");
    StoredSheet {
        name: "orders".into(),
        relation,
        state: QueryState::new(),
    }
}

fn temp_path(ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ssa_persist_bench_{}.{ext}", std::process::id()))
}

/// Median wall time of `f` in milliseconds.
fn time_ms(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        f();
        times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// A field from /proc/self/status in MB (0.0 off Linux).
fn proc_status_mb(field: &str) -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with(field)).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|kb| kb.parse::<f64>().ok())
            })
        })
        .map_or(0.0, |kb| kb / 1024.0)
}

/// The JSON baseline's cold open + 1-column filter: parse everything,
/// then count matching prices.
fn json_open_count(path: &PathBuf) -> usize {
    let text = std::fs::read_to_string(path).expect("read json sheet");
    let stored = StoredSheet::from_json(&text).expect("parse json sheet");
    let pi = stored
        .relation
        .schema()
        .index_of("o_price")
        .expect("o_price exists");
    stored
        .relation
        .rows()
        .iter()
        .filter(|t| matches!(t.values()[pi], Value::Float(p) if p < PRICE_CUTOFF))
        .count()
}

/// The JSON baseline's all-columns variant: parse, filter, materialize
/// the matching rows as a relation (what the binary side's scan returns).
fn json_open_rows(path: &PathBuf) -> Relation {
    let text = std::fs::read_to_string(path).expect("read json sheet");
    let stored = StoredSheet::from_json(&text).expect("parse json sheet");
    let pi = stored
        .relation
        .schema()
        .index_of("o_price")
        .expect("o_price exists");
    let ids: Vec<u32> = stored
        .relation
        .rows()
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t.values()[pi], Value::Float(p) if p < PRICE_CUTOFF))
        .map(|(i, _)| i as u32)
        .collect();
    stored.relation.take_rows(&ids)
}

/// Child-process entry: one cold open + 1-column query, then report
/// this process's peak RSS. Keeps the measurement free of the parent's
/// table-generation and oracle footprint.
fn rss_child(mode: &str) {
    let path = PathBuf::from(std::env::var("SSA_PERSIST_RSS_PATH").expect("child needs path"));
    let pred = Expr::col("o_price").lt(Expr::lit(PRICE_CUTOFF));
    let matched = match mode {
        "paged" => {
            let paged = PagedSheet::open(&path).expect("paged open");
            paged.scan(Some(&pred), &["o_price"]).expect("scan").len()
        }
        "json" => json_open_count(&path),
        other => panic!("bad SSA_PERSIST_RSS_MODE {other:?}"),
    };
    println!("matched={matched} peak_mb={:.1}", proc_status_mb("VmHWM"));
}

/// Run the cold 1-column query in a fresh process; (matches, peak MB).
fn child_peak(mode: &str, path: &PathBuf) -> (usize, f64) {
    let out = std::process::Command::new(std::env::current_exe().expect("current exe"))
        .env("SSA_PERSIST_RSS_MODE", mode)
        .env("SSA_PERSIST_RSS_PATH", path)
        .output()
        .expect("spawn rss child");
    assert!(out.status.success(), "rss child ({mode}) failed");
    let text = String::from_utf8_lossy(&out.stdout);
    let field = |key: &str| {
        text.split_whitespace()
            .find_map(|tok| tok.strip_prefix(key))
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or_else(|| panic!("rss child ({mode}) output {text:?} lacks {key}"))
    };
    (field("matched=") as usize, field("peak_mb="))
}

struct Row {
    rows: usize,
    scenario: &'static str,
    json_ms: f64,
    binary_ms: f64,
}

/// Side facts recorded once for the largest size (top-level dicts in
/// the JSON are informational — `bench_delta.sh` gates only the
/// scenario list).
struct SizeInfo {
    binary_bytes: u64,
    json_bytes: u64,
    lazy_bytes_read: u64,
    paged_peak_mb: f64,
    json_peak_mb: f64,
}

fn run_size(rows: usize, samples: usize, results: &mut Vec<Row>) -> SizeInfo {
    println!("persist: generating {rows}-row orders table...");
    let stored = orders_sheet(rows);
    let pred = Expr::col("o_price").lt(Expr::lit(PRICE_CUTOFF));
    let all_cols = [
        "o_id",
        "o_cust",
        "o_price",
        "o_qty",
        "o_status",
        "o_comment",
    ];

    let bin_path = temp_path("bin");
    let json_path = temp_path("json");

    // -- correctness oracle, before any timing ---------------------------
    stored.save_path(&bin_path).expect("binary save");
    save_sheet_json(&stored, &json_path).expect("json save");
    {
        let paged = PagedSheet::open(&bin_path).expect("paged open");
        let narrow = paged.scan(Some(&pred), &["o_price"]).expect("scan");
        assert_eq!(
            narrow.len(),
            json_open_count(&json_path),
            "paged scan and JSON baseline disagree — bench aborted"
        );
        let wide = paged.scan(Some(&pred), &all_cols).expect("scan all");
        assert!(wide.multiset_eq(&json_open_rows(&json_path)));
        let reopened = paged.materialize().expect("materialize");
        assert_eq!(reopened, stored, "binary round trip — bench aborted");
    }

    // -- save ------------------------------------------------------------
    let save_binary_ms = time_ms(samples, || {
        stored.save_path(&bin_path).expect("binary save");
    });
    let save_json_ms = time_ms(samples, || {
        save_sheet_json(&stored, &json_path).expect("json save");
    });
    let binary_bytes = std::fs::metadata(&bin_path).expect("stat").len();
    let json_bytes = std::fs::metadata(&json_path).expect("stat").len();
    println!(
        "persist/{rows} rows/save               json {save_json_ms:9.1} ms ({json_bytes:>11} B)  binary {save_binary_ms:9.1} ms ({binary_bytes:>11} B)  speedup {:5.2}x",
        save_json_ms / save_binary_ms
    );
    results.push(Row {
        rows,
        scenario: "save",
        json_ms: save_json_ms,
        binary_ms: save_binary_ms,
    });

    // -- cold open + queries ---------------------------------------------
    let mut lazy_bytes_read = 0u64;
    let binary_1col_ms = time_ms(samples, || {
        let paged = PagedSheet::open(&bin_path).expect("paged open");
        let narrow = paged.scan(Some(&pred), &["o_price"]).expect("scan");
        black_box(narrow.len());
        lazy_bytes_read = paged.bytes_read();
    });
    let binary_all_ms = time_ms(samples, || {
        let paged = PagedSheet::open(&bin_path).expect("paged open");
        let wide = paged.scan(Some(&pred), &all_cols).expect("scan all");
        black_box(wide.len());
    });

    let json_1col_ms = time_ms(samples, || {
        black_box(json_open_count(&json_path));
    });
    let json_all_ms = time_ms(samples, || {
        black_box(json_open_rows(&json_path).len());
    });

    // -- peak RSS of a cold open, in fresh processes ---------------------
    let (paged_matched, paged_peak_mb) = child_peak("paged", &bin_path);
    let (json_matched, json_peak_mb) = child_peak("json", &json_path);
    assert_eq!(paged_matched, json_matched, "rss children disagree");

    println!(
        "persist/{rows} rows/cold_open_query_1col  json {json_1col_ms:9.1} ms  binary {binary_1col_ms:9.1} ms  speedup {:5.2}x  (read {lazy_bytes_read} of {binary_bytes} B)",
        json_1col_ms / binary_1col_ms
    );
    println!(
        "persist/{rows} rows/cold_open_query_all   json {json_all_ms:9.1} ms  binary {binary_all_ms:9.1} ms  speedup {:5.2}x",
        json_all_ms / binary_all_ms
    );
    println!(
        "persist/{rows} rows/peak_rss            paged 1-col open {paged_peak_mb:.0} MB  full JSON open {json_peak_mb:.0} MB"
    );
    results.push(Row {
        rows,
        scenario: "cold_open_query_1col",
        json_ms: json_1col_ms,
        binary_ms: binary_1col_ms,
    });
    results.push(Row {
        rows,
        scenario: "cold_open_query_all",
        json_ms: json_all_ms,
        binary_ms: binary_all_ms,
    });

    std::fs::remove_file(&bin_path).ok();
    std::fs::remove_file(&json_path).ok();
    SizeInfo {
        binary_bytes,
        json_bytes,
        lazy_bytes_read,
        paged_peak_mb,
        json_peak_mb,
    }
}

fn main() {
    if let Ok(mode) = std::env::var("SSA_PERSIST_RSS_MODE") {
        rss_child(&mode);
        return;
    }
    let fast = std::env::var_os("SSA_BENCH_FAST").is_some();
    // The full run records the smoke size too, so fast-mode CI keys
    // always exist in the committed baseline (bench_delta.sh contract).
    let sizes: &[usize] = if fast {
        &[20_000]
    } else {
        &[20_000, 1_000_000]
    };
    let samples = if fast { 2 } else { 3 };

    let mut results = Vec::new();
    let mut info = None;
    for &rows in sizes {
        info = Some(run_size(rows, samples, &mut results));
    }
    let info = info.expect("at least one size");
    let SizeInfo {
        binary_bytes,
        json_bytes,
        lazy_bytes_read,
        paged_peak_mb,
        json_peak_mb,
    } = info;

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"persist\",\n");
    json.push_str(
        "  \"workload\": \"6-column orders table; atomic save and cold open + 5%-selective price filter, binary columnar (paged, lazy) vs JSON codec\",\n",
    );
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str(&format!(
        "  \"files\": {{\"binary_bytes\": {binary_bytes}, \"json_bytes\": {json_bytes}, \"lazy_bytes_read_1col\": {lazy_bytes_read}}},\n"
    ));
    json.push_str(&format!(
        "  \"peak_rss_mb\": {{\"paged_1col_open\": {paged_peak_mb:.1}, \"json_open\": {json_peak_mb:.1}}},\n"
    ));
    json.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"scenario\": \"{}\", \"json_ms\": {:.3}, \"binary_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.rows,
            r.scenario,
            r.json_ms,
            r.binary_ms,
            r.json_ms / r.binary_ms,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persist.json");
    std::fs::write(path, &json).expect("write BENCH_persist.json at repo root");
    println!("wrote {path}");
}
