//! A1 — query modification vs naive re-execution (the Sec. V motivation:
//! "the system could undo all operations back to the i-th and then re-do
//! from there again. However, this is likely to take too long").
//!
//! We build a history of k selections + grouping + aggregation, then
//! modify the *first* selection: once through query state (one state
//! edit + one re-evaluation) and once naively (rebuild the whole sheet
//! from scratch, replaying every operator with the edit applied — one
//! re-evaluation per replayed step, since a direct-manipulation
//! interface shows every intermediate result).

use spreadsheet_algebra::{Direction, Spreadsheet};
use ssa_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssa_bench::synthetic_cars;
use ssa_relation::{AggFunc, Expr};
use std::hint::black_box;

const ROWS: usize = 2_000;
const HISTORY_LENGTHS: [usize; 3] = [4, 16, 64];

fn build(k: usize) -> (Spreadsheet, u64) {
    let mut s = Spreadsheet::over(synthetic_cars(ROWS));
    let first = s.select(Expr::col("Price").lt(Expr::lit(30_000))).unwrap();
    for i in 0..k {
        // distinct, all-satisfiable predicates
        s.select(Expr::col("Mileage").lt(Expr::lit(1_000_000 + i as i64)))
            .unwrap();
    }
    s.group(&["Model"], Direction::Asc).unwrap();
    s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
    (s, first)
}

fn modification_via_state(c: &mut Criterion) {
    let mut g = c.benchmark_group("modify_via_query_state");
    for k in HISTORY_LENGTHS {
        let (sheet, first) = build(k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut s = sheet.clone();
                s.replace_selection(first, Expr::col("Price").lt(Expr::lit(20_000)))
                    .unwrap();
                black_box(s.view().unwrap().len())
            })
        });
    }
    g.finish();
}

fn modification_naive_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("modify_naive_replay");
    for k in HISTORY_LENGTHS {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                // Start over and repeat all operations with the edit,
                // evaluating after each step as the interface would.
                let mut s = Spreadsheet::over(synthetic_cars(ROWS));
                s.select(Expr::col("Price").lt(Expr::lit(20_000))).unwrap();
                s.view().unwrap();
                for i in 0..k {
                    s.select(Expr::col("Mileage").lt(Expr::lit(1_000_000 + i as i64)))
                        .unwrap();
                    s.view().unwrap();
                }
                s.group(&["Model"], Direction::Asc).unwrap();
                s.view().unwrap();
                s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
                black_box(s.view().unwrap().len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, modification_via_state, modification_naive_replay);
criterion_main!(benches);
