//! A2 — operator application scaling: how each spreadsheet operator's
//! end-to-end cost (state edit + canonical re-evaluation) grows with the
//! number of rows. Intermediate results are visible after *every* step in
//! a direct-manipulation interface, so per-operator latency is the
//! interactivity budget.

use spreadsheet_algebra::{Direction, Spreadsheet};
use ssa_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssa_bench::{arranged_sheet, synthetic_cars};
use ssa_relation::{AggFunc, Expr};
use std::hint::black_box;

const SIZES: [usize; 3] = [100, 1_000, 10_000];

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("selection");
    for n in SIZES {
        let sheet = Spreadsheet::over(synthetic_cars(n));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut s = sheet.clone();
                s.select(Expr::col("Price").lt(Expr::lit(15_000))).unwrap();
                black_box(s.view().unwrap().len())
            })
        });
    }
    g.finish();
}

fn bench_grouping(c: &mut Criterion) {
    let mut g = c.benchmark_group("grouping");
    for n in SIZES {
        let sheet = Spreadsheet::over(synthetic_cars(n));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut s = sheet.clone();
                s.group(&["Model"], Direction::Asc).unwrap();
                s.group(&["Model", "Year"], Direction::Asc).unwrap();
                black_box(s.view().unwrap().tree.depth())
            })
        });
    }
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregation");
    for n in SIZES {
        let sheet = arranged_sheet(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut s = sheet.clone();
                s.aggregate(AggFunc::Avg, "Price", 3).unwrap();
                black_box(s.view().unwrap().len())
            })
        });
    }
    g.finish();
}

fn bench_ordering(c: &mut Criterion) {
    let mut g = c.benchmark_group("ordering");
    for n in SIZES {
        let sheet = arranged_sheet(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut s = sheet.clone();
                s.order("Mileage", Direction::Desc, 3).unwrap();
                black_box(s.view().unwrap().len())
            })
        });
    }
    g.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("duplicate_elimination");
    for n in SIZES {
        let mut sheet = Spreadsheet::over(synthetic_cars(n));
        sheet.project_out("ID").unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut s = sheet.clone();
                s.dedup().unwrap();
                black_box(s.view().unwrap().len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_selection,
    bench_grouping,
    bench_aggregation,
    bench_ordering,
    bench_dedup
);
criterion_main!(benches);
