//! The full simulated user study (Figs. 3–5, Table VI inputs): 10
//! subjects × 10 tasks × 2 tools, with and without the system-verification
//! pass that runs every task through the real algebra first.

use ssa_bench::harness::{criterion_group, criterion_main, Criterion};
use ssa_study::{run_study, StudyConfig};
use std::hint::black_box;

fn bench_simulation_only(c: &mut Criterion) {
    c.bench_function("study_simulation_only", |b| {
        b.iter(|| {
            let r = run_study(&StudyConfig {
                seed: 2009,
                scale: 0.02,
                verify_system: false,
            });
            black_box(r.runs.len())
        })
    });
}

fn bench_with_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("study_with_system_verification");
    g.sample_size(10);
    g.bench_function("scale_0.02", |b| {
        b.iter(|| {
            let r = run_study(&StudyConfig {
                seed: 2009,
                scale: 0.02,
                verify_system: true,
            });
            black_box(r.runs.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulation_only, bench_with_verification);
criterion_main!(benches);
