//! Hash join vs the forced nested-loop path on equi-join workloads.
//!
//! Two key distributions per size, both joined on `K = K2`:
//!
//! - `selective`: the build side's keys are unique and cover half the
//!   probe side's key domain, so each probe row matches 0 or 1 build row
//!   (output ≈ |probe| / 2).
//! - `fanout`: each build key repeats 8 times and every probe row
//!   matches, so candidate lists are long (output = 8 × |probe|).
//!
//! The probe side has `rows` tuples; the build side `rows / 10` — the
//! classic big-fact/small-dimension shape. Both paths run with the
//! default parallel threshold, so the comparison is hash table vs
//! exhaustive scan, not serial vs parallel. Before timing, the hash
//! output is asserted row-for-row equal to the nested loop's.
//!
//! Results go to console and `BENCH_join.json` at the repository root.
//! `SSA_BENCH_FAST=1` runs the 1k size only (JSON marked `"fast": true`).

use ssa_relation::ops;
use ssa_relation::par::DEFAULT_PARALLEL_THRESHOLD;
use ssa_relation::schema::Schema;
use ssa_relation::ValueType::Int;
use ssa_relation::{Expr, Relation, Tuple, Value};
use std::hint::black_box;
use std::time::Instant;

fn relation(name: &str, key_col: &str, keys: impl Iterator<Item = i64>) -> Relation {
    let rows: Vec<Tuple> = keys
        .enumerate()
        .map(|(i, k)| Tuple::new(vec![Value::Int(k), Value::Int(i as i64)]))
        .collect();
    Relation::with_rows(name, Schema::of(&[(key_col, Int), ("V", Int)]), rows)
        .expect("widths match")
}

struct Scenario {
    name: &'static str,
    /// (probe side, build side) for `rows` probe tuples.
    operands: fn(usize) -> (Relation, Relation),
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "selective",
        operands: |n| {
            let m = (n / 10).max(1) as i64;
            // build keys unique in 0..m; probe keys uniform in 0..2m
            let probe = relation("fact", "K", (0..n as i64).map(move |i| (i * 7) % (2 * m)));
            let build = relation("dim", "K2", 0..m);
            (probe, build)
        },
    },
    Scenario {
        name: "fanout",
        operands: |n| {
            let m = (n / 10).max(8) as i64;
            let domain = (m / 8).max(1);
            // every build key repeats 8×, every probe row matches 8 rows
            let probe = relation("fact", "K", (0..n as i64).map(move |i| (i * 13) % domain));
            let build = relation("dim", "K2", (0..m).map(move |i| i % domain));
            (probe, build)
        },
    },
    Scenario {
        name: "dupheavy",
        operands: |n| {
            // Build-side-choice regression case: the left operand is the
            // *smaller* side (rows/10) but duplicate-heavy (~10 rows per
            // key), and the right side repeats each key ~100×. Raw row
            // counts would build left — and then stably re-sort every
            // output pair back into left-major order; the statistics-based
            // cost model sees the pair estimate and builds right instead.
            let d = (n / 100).max(1) as i64;
            let left = relation("fact", "K", (0..(n / 10).max(1) as i64).map(move |i| i % d));
            let right = relation("dim", "K2", (0..n as i64).map(move |i| (i * 13) % d));
            (left, right)
        },
    },
];

/// Median wall time in milliseconds; one warm-up iteration discarded.
fn time_join(f: impl Fn() -> Relation, samples: usize) -> f64 {
    let mut times = Vec::with_capacity(samples);
    for i in 0..samples + 1 {
        let t = Instant::now();
        black_box(f());
        if i >= 1 {
            times.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

struct Row {
    rows: usize,
    scenario: &'static str,
    nested_ms: f64,
    hash_ms: f64,
}

fn main() {
    let fast = std::env::var_os("SSA_BENCH_FAST").is_some();
    let sizes: &[usize] = if fast {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let samples = if fast { 3 } else { 5 };

    let mut results = Vec::new();
    for &n in sizes {
        for sc in SCENARIOS {
            let (probe, build) = (sc.operands)(n);
            let cond = Expr::col("K").eq(Expr::col("K2"));

            // The hash plan must agree with the nested loop row-for-row
            // before its timing means anything.
            let hash = ops::join(&probe, &build, &cond).expect("hash join");
            let nested = ops::join_nested(&probe, &build, &cond, DEFAULT_PARALLEL_THRESHOLD)
                .expect("nested join");
            assert_eq!(
                hash.rows(),
                nested.rows(),
                "hash != nested for {} at {n} rows — bench aborted",
                sc.name
            );

            let nested_ms = time_join(
                || {
                    ops::join_nested(&probe, &build, &cond, DEFAULT_PARALLEL_THRESHOLD)
                        .expect("nested join")
                },
                samples,
            );
            let hash_ms = time_join(
                || ops::join(&probe, &build, &cond).expect("hash join"),
                samples,
            );
            println!(
                "join/{:>6} rows/{:10}  nested {:10.3} ms  hash {:8.3} ms  speedup {:7.2}x  ({} output rows)",
                n,
                sc.name,
                nested_ms,
                hash_ms,
                nested_ms / hash_ms,
                hash.len(),
            );
            results.push(Row {
                rows: n,
                scenario: sc.name,
                nested_ms,
                hash_ms,
            });
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"join\",\n");
    json.push_str(
        "  \"workload\": \"equi-join K = K2, probe side `rows` tuples, build side rows/10; selective = unique keys covering half the probe domain, fanout = 8 duplicates per build key, dupheavy = small duplicate-heavy left side (build-side-choice regression case)\",\n",
    );
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str("  \"joins\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"scenario\": \"{}\", \"nested_ms\": {:.3}, \"hash_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.rows,
            r.scenario,
            r.nested_ms,
            r.hash_ms,
            r.nested_ms / r.hash_ms,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.json");
    std::fs::write(path, &json).expect("write BENCH_join.json at repo root");
    println!("wrote {path}");
}
