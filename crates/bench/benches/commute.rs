//! A3 — commutativity machinery: the cost of deciding `may_commute`
//! (pure metadata work, independent of data size) versus actually
//! applying operator pairs in both orders and comparing results.

use spreadsheet_algebra::{may_commute, AlgebraOp, Direction, Spreadsheet};
use ssa_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssa_bench::synthetic_cars;
use ssa_relation::{AggFunc, Expr};
use std::hint::black_box;

fn ops() -> Vec<AlgebraOp> {
    vec![
        AlgebraOp::Select {
            predicate: Expr::col("Price").lt(Expr::lit(20_000)),
        },
        AlgebraOp::Select {
            predicate: Expr::col("Year").ge(Expr::lit(2004)),
        },
        AlgebraOp::Project {
            column: "Mileage".into(),
        },
        AlgebraOp::Aggregate {
            func: AggFunc::Avg,
            column: "Price".into(),
            level: 1,
        },
        AlgebraOp::Formula {
            name: Some("PriceK".into()),
            expr: Expr::col("Price").div(Expr::lit(1000)),
        },
        AlgebraOp::Dedup,
        AlgebraOp::Group {
            basis: vec!["Model".into()],
            order: Direction::Asc,
        },
        AlgebraOp::Order {
            attribute: "Price".into(),
            order: Direction::Asc,
            level: 1,
        },
    ]
}

fn bench_decision(c: &mut Criterion) {
    let sheet = Spreadsheet::over(synthetic_cars(1_000));
    let ops = ops();
    c.bench_function("may_commute_all_pairs", |b| {
        b.iter(|| {
            let mut yes = 0usize;
            for a in &ops {
                for d in &ops {
                    if may_commute(a, d, &sheet) {
                        yes += 1;
                    }
                }
            }
            black_box(yes)
        })
    });
}

fn bench_both_orders(c: &mut Criterion) {
    let mut g = c.benchmark_group("apply_both_orders");
    for n in [100usize, 1_000] {
        let sheet = Spreadsheet::over(synthetic_cars(n));
        let ops = ops();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut agreements = 0usize;
                for a in &ops {
                    for d in &ops {
                        if !may_commute(a, d, &sheet) {
                            continue;
                        }
                        let mut s1 = sheet.clone();
                        if a.apply(&mut s1).is_err() || d.apply(&mut s1).is_err() {
                            continue;
                        }
                        let mut s2 = sheet.clone();
                        if d.apply(&mut s2).is_err() || a.apply(&mut s2).is_err() {
                            continue;
                        }
                        if s1.evaluate_now().unwrap() == s2.evaluate_now().unwrap() {
                            agreements += 1;
                        }
                    }
                }
                black_box(agreements)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_decision, bench_both_orders);
criterion_main!(benches);
