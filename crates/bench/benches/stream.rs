//! Streaming base-data deltas vs full re-evaluation (DESIGN.md §14).
//!
//! Measures the latency of one live-feed event — append a row (or a
//! burst), delete a row, update a cell, then `view()` — on a spreadsheet
//! whose cache is already warm, in two modes: streaming (the cached
//! evaluation is patched in place: selections run on the new row only,
//! the permutation and group tree splice by binary search, per-group
//! accumulators advance) and full (`set_incremental(false)`, so every
//! base edit replays the whole pipeline).
//!
//! The base is an `orders`-shaped table filled by the deterministic
//! [`OrderFeed`]; the sheet is grouped two levels deep, aggregated and
//! sorted, so every append exercises the entire patch path. The key
//! claim is *sublinearity*: per-append patch cost stays at µs scale as
//! the table grows from 1k to 100k rows, while full re-evaluation grows
//! linearly — a ≥10x speedup at 100k rows is the acceptance floor
//! (gated by `scripts/bench_delta.sh`).
//!
//! Results go to console and `BENCH_stream.json` at the repository
//! root. `SSA_BENCH_FAST=1` runs a tiny smoke configuration (the JSON
//! is then marked `"fast": true`).

use spreadsheet_algebra::eval::evaluate_with;
use spreadsheet_algebra::prelude::*;
use ssa_relation::{Relation, Tuple};
use ssa_tpch::{schema, FeedConfig, OrderFeed};
use std::hint::black_box;
use std::time::Instant;

/// The warm template: `orders` filled with `n` feed rows, grouped by
/// status then customer, ordered by total price, two running aggregates
/// on the finest grouping, and a selection the feed rows must pass.
///
/// Customer cardinality scales with the table (as a real order stream's
/// would), keeping per-customer groups at ~100 rows across sizes: an
/// append then touches one bounded group, not an O(n) slice — that is
/// what makes the per-append patch sublinear.
fn template(n: usize) -> (Spreadsheet, OrderFeed) {
    let mut feed = OrderFeed::new(
        FeedConfig {
            customers: (n / 100).max(10),
            ..FeedConfig::default()
        },
        0x5712_EA11,
    );
    let mut orders = Relation::new("orders", schema::orders());
    orders
        .append_rows(feed.batch(n))
        .expect("feed rows match the orders schema");
    let mut s = Spreadsheet::over(orders);
    s.group(&["o_orderstatus"], Direction::Asc).unwrap();
    s.group_add(&["o_custkey"], Direction::Asc).unwrap();
    s.order("o_totalprice", Direction::Asc, 3).unwrap();
    s.aggregate(AggFunc::Avg, "o_totalprice", 3).unwrap();
    s.aggregate(AggFunc::Count, "o_orderkey", 3).unwrap();
    s.select(Expr::col("o_totalprice").lt(Expr::lit(179_000.0)))
        .unwrap();
    s.view().expect("template evaluates");
    // One pre-warm append + view so the lazily seeded per-group
    // accumulators (and interned sort keys) are built: the timed events
    // then measure the steady streaming state, not first-touch cache
    // construction.
    s.append_rows(feed.batch(1)).expect("pre-warm append");
    s.view().expect("template pre-warm evaluates");
    (s, feed)
}

struct Scenario {
    name: &'static str,
    /// Feed rows consumed per edit (labels the per-event cost).
    events: usize,
    edit: fn(&mut Spreadsheet, &[Tuple]),
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "append_row",
        events: 1,
        edit: |s, rows| {
            s.append_rows(rows.to_vec()).unwrap();
        },
    },
    Scenario {
        name: "append_burst_100",
        events: 100,
        edit: |s, rows| {
            s.append_rows(rows.to_vec()).unwrap();
        },
    },
    Scenario {
        name: "delete_row",
        events: 1,
        edit: |s, _| {
            let mid = (s.base().len() / 2) as u32;
            s.delete_rows(&[mid]).unwrap();
        },
    },
    Scenario {
        name: "update_cell",
        events: 1,
        edit: |s, rows| {
            // Total price is an aggregate input AND a sort key: the
            // update takes the delete+re-insert path with key-change
            // detection — the worst streaming case. The new value comes
            // from the feed row so successive samples never degenerate
            // into no-op rewrites of the same cell value.
            let ti = s
                .base()
                .schema()
                .index_of("o_totalprice")
                .expect("orders has o_totalprice");
            let v = *rows[0].get(ti);
            let mid = (s.base().len() / 2) as u32;
            s.update_cell(mid, "o_totalprice", v).unwrap();
        },
    },
];

/// Median wall time of (edit + view) in milliseconds, measured in
/// steady state: one clone restores the warm template, then the timed
/// edits stream into it sequentially — a live feed applies events to
/// one long-lived sheet, it does not restart from a snapshot per
/// event. (Cloning per sample would charge every edit a harness
/// artifact: a fresh clone's buffers have `capacity == len`, so its
/// first splice reallocates and page-faults several MB of cache
/// state — milliseconds that no steady stream ever pays.)
fn time_edit(template: &Spreadsheet, feed: &mut OrderFeed, sc: &Scenario, samples: usize) -> f64 {
    let mut s = template.clone();
    let mut times = Vec::with_capacity(samples);
    for i in 0..samples + 2 {
        let rows = feed.batch(sc.events);
        let t = Instant::now();
        (sc.edit)(&mut s, &rows);
        black_box(s.view().expect("edited sheet evaluates"));
        if i >= 2 {
            times.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

struct Row {
    rows: usize,
    scenario: &'static str,
    events: usize,
    full_ms: f64,
    streaming_ms: f64,
}

fn main() {
    let fast = std::env::var_os("SSA_BENCH_FAST").is_some();
    let sizes: &[usize] = if fast {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let samples = if fast { 5 } else { 25 };

    let mut results = Vec::new();
    for &n in sizes {
        let (warm, mut feed) = template(n);
        let mut full = warm.clone();
        full.set_incremental(false);
        full.set_fast_reorganize(false);

        for sc in SCENARIOS {
            let rows = feed.batch(sc.events);

            // The patched view must agree with a fresh naive evaluation
            // — bitwise, including presentation order — before its
            // timing means anything.
            let mut a = warm.clone();
            (sc.edit)(&mut a, &rows);
            let naive = evaluate_with(
                a.base(),
                a.state(),
                spreadsheet_algebra::EvalOptions {
                    naive: true,
                    ..spreadsheet_algebra::EvalOptions::default()
                },
            )
            .expect("naive oracle");
            assert_eq!(
                a.view().expect("patched view"),
                &naive,
                "patched view != oracle for {} at {n} rows — bench aborted",
                sc.name
            );

            let full_ms = time_edit(&full, &mut feed, sc, samples);
            let streaming_ms = time_edit(&warm, &mut feed, sc, samples);
            println!(
                "stream/{:>6} rows/{:16}  full {:8.3} ms  streaming {:8.3} ms  ({:7.1} µs/event)  speedup {:6.2}x",
                n,
                sc.name,
                full_ms,
                streaming_ms,
                streaming_ms * 1e3 / sc.events as f64,
                full_ms / streaming_ms,
            );
            results.push(Row {
                rows: n,
                scenario: sc.name,
                events: sc.events,
                full_ms,
                streaming_ms,
            });
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"stream\",\n");
    json.push_str(
        "  \"workload\": \"warm 2-level grouped orders sheet + Avg/Count aggregates + selection + sort; one feed event then view()\",\n",
    );
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str("  \"edits\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"scenario\": \"{}\", \"events\": {}, \"full_ms\": {:.3}, \"streaming_ms\": {:.3}, \"per_event_us\": {:.1}, \"speedup\": {:.2}}}{}\n",
            r.rows,
            r.scenario,
            r.events,
            r.full_ms,
            r.streaming_ms,
            r.streaming_ms * 1e3 / r.events as f64,
            r.full_ms / r.streaming_ms,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    std::fs::write(path, &json).expect("write BENCH_stream.json at repo root");
    println!("wrote {path}");
}
