//! Index-vector engine vs the naive row-cloning pipeline on the
//! standard workload (selection + formula + aggregate + grouping +
//! presentation sort) at 1k / 10k / 100k rows.
//!
//! Besides the usual console report, this bench writes `BENCH_eval.json`
//! at the repository root: per size, the median evaluation time of the
//! naive oracle, the index-vector engine (default parallel threshold),
//! and the index-vector engine forced sequential — plus the resulting
//! speedups. Run with `SSA_BENCH_FAST=1` for a smoke test (the JSON is
//! then marked `"fast": true`).

use spreadsheet_algebra::eval::{evaluate_with, EvalOptions};
use spreadsheet_algebra::{ComputedColumn, Direction, GroupLevel, OrderKey, QueryState};
use ssa_bench::harness::measure;
use ssa_bench::{synthetic_cars, synthetic_listings};
use ssa_relation::{AggFunc, Expr, Relation};
use std::hint::black_box;
use std::time::Duration;

/// The measured workload: every pipeline stage at once. Selections land
/// at two different ranks (one references the aggregate), so step 3 runs
/// two filter passes and step 4 recomputes both computed columns.
fn workload_state() -> QueryState {
    let mut st = QueryState::new();
    st.spec
        .levels
        .push(GroupLevel::new(["Model"], Direction::Desc));
    st.spec
        .levels
        .push(GroupLevel::new(["Year"], Direction::Asc));
    st.spec.finest_order.push(OrderKey::asc("Price"));
    st.computed.push(ComputedColumn::formula(
        "PriceK",
        Expr::col("Price").div(Expr::lit(1000)),
    ));
    st.computed.push(ComputedColumn::aggregate(
        "Avg_Price",
        AggFunc::Avg,
        "Price",
        2,
        vec!["Model".into()],
    ));
    st.add_selection(Expr::col("Price").le(Expr::col("Avg_Price")));
    st.add_selection(Expr::col("Year").ge(Expr::lit(2002)));
    st
}

/// String-heavy workload (satellite of the interning PR): dedup over
/// tuples whose identity is dominated by string columns, a selection on a
/// string column, a string-basis aggregate, two-level grouping on string
/// keys and a presentation sort on two string columns. Every stage either
/// hashes, compares, or clones strings.
fn string_workload_state() -> QueryState {
    let mut st = QueryState::new();
    st.dedup = true;
    st.spec
        .levels
        .push(GroupLevel::new(["Model"], Direction::Desc));
    st.spec
        .levels
        .push(GroupLevel::new(["City"], Direction::Asc));
    st.spec.finest_order.push(OrderKey::asc("Dealer"));
    st.spec.finest_order.push(OrderKey::asc("Comment"));
    st.computed.push(ComputedColumn::aggregate(
        "Best_Comment",
        AggFunc::Max,
        "Comment",
        2,
        vec!["Model".into()],
    ));
    st.add_selection(Expr::col("City").ne(Expr::lit("Marquette")));
    st
}

struct Row {
    rows: usize,
    naive_ms: f64,
    indexed_ms: f64,
    indexed_seq_ms: f64,
}

/// Median indexed-engine times of the string-heavy workload measured at
/// the commit *before* string interning (PR 1's engine, `Value::Str`
/// holding an owned `String`), on this harness with the same sizes. The
/// interning speedup reported in `BENCH_intern.json` is the trajectory
/// `indexed_pre_ms / indexed_ms`.
const PRE_INTERNING_INDEXED_MS: &[(usize, f64)] =
    &[(1_000, 1.344), (10_000, 22.487), (100_000, 491.803)];

fn run_workload(
    name: &str,
    make_base: fn(usize) -> Relation,
    st: &QueryState,
    sizes: &[usize],
    fast: bool,
) -> Vec<Row> {
    let naive = EvalOptions {
        naive: true,
        ..EvalOptions::default()
    };
    let indexed = EvalOptions::default();
    let sequential = EvalOptions {
        parallel_threshold: usize::MAX,
        ..EvalOptions::default()
    };

    let mut results = Vec::new();
    for &n in sizes {
        let base = make_base(n);

        // The engines must agree before their timings mean anything.
        let a = evaluate_with(&base, st, naive).expect("naive evaluation");
        let b = evaluate_with(&base, st, indexed).expect("indexed evaluation");
        assert_eq!(a, b, "engines disagree at {n} rows — bench aborted");

        let (target, samples) = if fast {
            (Duration::from_millis(5), 3)
        } else {
            (Duration::from_millis(60), 10)
        };
        let s_naive = measure(
            || black_box(evaluate_with(&base, st, naive)),
            target,
            samples,
        );
        let s_indexed = measure(
            || black_box(evaluate_with(&base, st, indexed)),
            target,
            samples,
        );
        let s_seq = measure(
            || black_box(evaluate_with(&base, st, sequential)),
            target,
            samples,
        );

        let row = Row {
            rows: n,
            naive_ms: s_naive.median_ns / 1e6,
            indexed_ms: s_indexed.median_ns / 1e6,
            indexed_seq_ms: s_seq.median_ns / 1e6,
        };
        println!(
            "{name}/{:>6} rows  naive {:8.3} ms  indexed {:8.3} ms  (seq {:8.3} ms)  speedup {:4.2}x",
            row.rows,
            row.naive_ms,
            row.indexed_ms,
            row.indexed_seq_ms,
            row.naive_ms / row.indexed_ms,
        );
        results.push(row);
    }
    results
}

fn sizes_json(results: &[Row]) -> String {
    let mut json = String::new();
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"naive_ms\": {:.3}, \"indexed_ms\": {:.3}, \"indexed_seq_ms\": {:.3}, \"speedup\": {:.2}, \"speedup_sequential\": {:.2}}}{}\n",
            r.rows,
            r.naive_ms,
            r.indexed_ms,
            r.indexed_seq_ms,
            r.naive_ms / r.indexed_ms,
            r.naive_ms / r.indexed_seq_ms,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json
}

fn main() {
    let fast = std::env::var_os("SSA_BENCH_FAST").is_some();
    let sizes: &[usize] = if fast {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    // Numeric workload → BENCH_eval.json (regression gate for interning).
    let st = workload_state();
    let results = run_workload("eval_engine", synthetic_cars, &st, sizes, fast);
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"eval_engine\",\n");
    json.push_str(
        "  \"workload\": \"2 selections + formula + level-2 aggregate + 2-level grouping + sort\",\n",
    );
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str("  \"sizes\": [\n");
    json.push_str(&sizes_json(&results));
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    std::fs::write(path, &json).expect("write BENCH_eval.json at repo root");
    println!("wrote {path}");

    // String-heavy workload → BENCH_intern.json, including the recorded
    // pre-interning trajectory for the interning speedup.
    let st = string_workload_state();
    let results = run_workload("eval_engine_strings", synthetic_listings, &st, sizes, fast);
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"eval_engine_strings\",\n");
    json.push_str(
        "  \"workload\": \"dedup + string selection + Max(Comment) by Model + 2-level string grouping + sort(Dealer, Comment)\",\n",
    );
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str("  \"sizes\": [\n");
    json.push_str(&sizes_json(&results));
    json.push_str("  ],\n");
    json.push_str("  \"interning_trajectory\": [\n");
    let traj: Vec<String> = results
        .iter()
        .filter_map(|r| {
            let pre = PRE_INTERNING_INDEXED_MS
                .iter()
                .find(|(n, _)| *n == r.rows)
                .map(|(_, ms)| *ms)?;
            if !pre.is_finite() {
                return None;
            }
            Some(format!(
                "    {{\"rows\": {}, \"indexed_pre_intern_ms\": {:.3}, \"indexed_ms\": {:.3}, \"interning_speedup\": {:.2}}}",
                r.rows, pre, r.indexed_ms, pre / r.indexed_ms,
            ))
        })
        .collect();
    json.push_str(&traj.join(",\n"));
    json.push_str("\n  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_intern.json");
    std::fs::write(path, &json).expect("write BENCH_intern.json at repo root");
    println!("wrote {path}");
}
