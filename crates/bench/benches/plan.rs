//! Planned vs unplanned multi-join TPC-H workloads — the gate for the
//! algebraic query planner (`spreadsheet_algebra::plan`).
//!
//! Two scenarios per size (`rows` ≈ lineitem count):
//!
//! - `filter_join`: `lineitem ⋈ orders` with a selective single-table
//!   filter (`l_quantity = 1`, ~2% of lineitems) written *above* the
//!   join. The unplanned pipeline joins everything and then filters; the
//!   planner pushes the filter below the join.
//! - `multijoin`: `lineitem ⋈ orders ⋈ customer` with a selective
//!   customer filter (`c_custkey < 1%·customers`). The planner pushes
//!   the filter into `customer`, starts the join tree from that
//!   25-row side, and orders the equi-joins by estimated selectivity;
//!   the unplanned pipeline joins in FROM order and filters last.
//!
//! The unplanned baseline is not a strawman nested loop: it uses the
//! same hash joins, in FROM order, with every single-table filter
//! applied at the top — exactly the filter-above-join flow the
//! evaluation pipeline executed before the planner. Before timing, the
//! planned output is asserted row-for-row equal (including order) to
//! the unplanned output.
//!
//! Results go to console and `BENCH_plan.json` at the repository root.
//! `SSA_BENCH_FAST=1` runs the 1k size only (JSON marked `"fast": true`).

use spreadsheet_algebra::plan::plan_tables;
use ssa_relation::ops;
use ssa_relation::par::DEFAULT_PARALLEL_THRESHOLD;
use ssa_relation::{Expr, Relation};
use ssa_tpch::gen::{generate, GenConfig};
use std::hint::black_box;
use std::time::Instant;

struct Scenario {
    name: &'static str,
    /// FROM list, in order, out of the generated database.
    from: fn(&Db) -> Vec<&Relation>,
    /// WHERE condition (join conjuncts + selective filters).
    condition: fn(&Db) -> Expr,
}

struct Db {
    lineitem: Relation,
    orders: Relation,
    customer: Relation,
    /// `c_custkey < cust_cut` keeps ~1% of customers.
    cust_cut: i64,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "filter_join",
        from: |db| vec![&db.lineitem, &db.orders],
        condition: |_| {
            Expr::col("l_orderkey")
                .eq(Expr::col("o_orderkey"))
                .and(Expr::col("l_quantity").eq(Expr::lit(1)))
        },
    },
    Scenario {
        name: "multijoin",
        from: |db| vec![&db.lineitem, &db.orders, &db.customer],
        condition: |db| {
            Expr::col("l_orderkey")
                .eq(Expr::col("o_orderkey"))
                .and(Expr::col("o_custkey").eq(Expr::col("c_custkey")))
                .and(Expr::col("c_custkey").lt(Expr::lit(db.cust_cut)))
        },
    },
];

/// The pre-planner pipeline: left-deep hash joins in FROM order on the
/// multi-table equi conjuncts, then every remaining conjunct applied as
/// one selection at the top. TPC-H column names are globally unique, so
/// the FROM-order chain needs no renaming and its output order is the
/// left-major nested-loop order the planner must reproduce.
fn unplanned(inputs: &[&Relation], condition: &Expr) -> Relation {
    let mut joins: Vec<Expr> = Vec::new();
    let mut filters: Vec<Expr> = Vec::new();
    for conj in condition.split_conjuncts() {
        let cols = conj.columns();
        let multi = inputs
            .iter()
            .filter(|r| cols.iter().any(|c| r.schema().contains(c)))
            .count()
            > 1;
        if multi {
            joins.push(conj.clone());
        } else {
            filters.push(conj.clone());
        }
    }
    let mut cur = inputs[0].clone();
    for rhs in &inputs[1..] {
        let cond = Expr::conjoin(
            joins
                .iter()
                .filter(|j| {
                    j.columns()
                        .iter()
                        .all(|c| cur.schema().contains(c) || rhs.schema().contains(c))
                })
                .cloned()
                .collect(),
        )
        .expect("every chained input shares an equi conjunct");
        joins.retain(|j| {
            !j.columns()
                .iter()
                .all(|c| cur.schema().contains(c) || rhs.schema().contains(c))
        });
        cur = ops::join_opts(&cur, rhs, &cond, DEFAULT_PARALLEL_THRESHOLD).expect("join");
    }
    match Expr::conjoin(filters) {
        Some(f) => ops::select(&cur, &f).expect("filter"),
        None => cur,
    }
}

fn planned(inputs: &[&Relation], condition: &Expr) -> Relation {
    plan_tables(inputs, Some(condition))
        .expect("plan")
        .execute(DEFAULT_PARALLEL_THRESHOLD)
        .expect("execute")
}

/// Median wall time in milliseconds; one warm-up iteration discarded.
fn time_run(f: impl Fn() -> Relation, samples: usize) -> f64 {
    let mut times = Vec::with_capacity(samples);
    for i in 0..samples + 1 {
        let t = Instant::now();
        black_box(f());
        if i >= 1 {
            times.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

struct Row {
    rows: usize,
    scenario: &'static str,
    unplanned_ms: f64,
    planned_ms: f64,
}

fn main() {
    let fast = std::env::var_os("SSA_BENCH_FAST").is_some();
    let sizes: &[usize] = if fast {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let samples = if fast { 3 } else { 5 };

    let mut results = Vec::new();
    for &n in sizes {
        // `scale(1.0)` yields ~6000 lineitems (1500 orders × ~4 lines).
        let data = generate(&GenConfig::scale(n as f64 / 6000.0), 42);
        let db = Db {
            cust_cut: (data.customer.len() / 100).max(1) as i64,
            lineitem: data.lineitem,
            orders: data.orders,
            customer: data.customer,
        };
        for sc in SCENARIOS {
            let inputs = (sc.from)(&db);
            let cond = (sc.condition)(&db);

            // The planned pipeline must agree with the unplanned one
            // row-for-row (including order) before timing means anything.
            let base = unplanned(&inputs, &cond);
            let opt = planned(&inputs, &cond);
            assert_eq!(base.schema().names(), opt.schema().names(), "{}", sc.name);
            assert_eq!(
                base.rows(),
                opt.rows(),
                "planned != unplanned for {} at {n} rows — bench aborted",
                sc.name
            );

            let unplanned_ms = time_run(|| unplanned(&inputs, &cond), samples);
            let planned_ms = time_run(|| planned(&inputs, &cond), samples);
            println!(
                "plan/{:>6} rows/{:12}  unplanned {:10.3} ms  planned {:8.3} ms  speedup {:7.2}x  ({} output rows)",
                db.lineitem.len(),
                sc.name,
                unplanned_ms,
                planned_ms,
                unplanned_ms / planned_ms,
                base.len(),
            );
            results.push(Row {
                rows: n,
                scenario: sc.name,
                unplanned_ms,
                planned_ms,
            });
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"plan\",\n");
    json.push_str(
        "  \"workload\": \"TPC-H multi-join with selective filters written above the joins; unplanned = FROM-order hash joins with all filters at the top, planned = selection pushdown + selectivity-ordered join tree (plan_tables), output asserted identical incl. order\",\n",
    );
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str("  \"plans\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"scenario\": \"{}\", \"unplanned_ms\": {:.3}, \"planned_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.rows,
            r.scenario,
            r.unplanned_ms,
            r.planned_ms,
            r.unplanned_ms / r.planned_ms,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plan.json");
    std::fs::write(path, &json).expect("write BENCH_plan.json at repo root");
    println!("wrote {path}");
}
