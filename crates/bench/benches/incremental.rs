//! Incremental delta evaluation vs full re-evaluation for state edits.
//!
//! Measures the latency of one interactive edit — apply the operator,
//! then `view()` — on a spreadsheet whose cache is already warm, in two
//! modes: incremental (the delta-aware cache patches the cached
//! canonical relation) and full (`set_incremental(false)` +
//! `set_fast_reorganize(false)`, so every edit replays the whole
//! pipeline). Three edit scenarios, matching DESIGN.md §10:
//!
//! - `add_selection`: a fresh predicate lands on the sheet (Narrow).
//! - `tighten_selection`: an existing predicate is replaced by a
//!   strictly tighter one (Narrow via `Expr::implies`).
//! - `toggle_projection`: a column is hidden (Reorganize — the cached
//!   canonical is reused wholesale, only visibility changes).
//!
//! The template sheet is cloned *outside* the timed region so each
//! sample sees the same warm cache. Results go to console and to
//! `BENCH_incremental.json` at the repository root. `SSA_BENCH_FAST=1`
//! runs a tiny smoke configuration (the JSON is then marked
//! `"fast": true`).

use spreadsheet_algebra::eval::evaluate_with;
use spreadsheet_algebra::prelude::*;
use ssa_bench::synthetic_cars;
use std::hint::black_box;
use std::time::Instant;

/// The warm template: grouped by Model then Year, ordered by Price, one
/// aggregate (recomputed on narrowing) and one coarse selection so
/// `tighten_selection` has something to tighten.
fn template(n: usize) -> (Spreadsheet, u64) {
    let mut s = Spreadsheet::over(synthetic_cars(n));
    s.group(&["Model"], Direction::Asc).unwrap();
    s.group_add(&["Year"], Direction::Asc).unwrap();
    s.order("Price", Direction::Asc, 3).unwrap();
    s.aggregate(AggFunc::Avg, "Price", 2).unwrap();
    let sel = s.select(Expr::col("Price").lt(Expr::lit(24_000))).unwrap();
    s.view().expect("template evaluates");
    // One small tighten + view so the lazily built caches (sort keys,
    // group membership) are warm: the timed edits then measure the
    // steady interactive state, not first-touch cache construction.
    s.replace_selection(sel, Expr::col("Price").lt(Expr::lit(23_500)))
        .unwrap();
    s.view().expect("template pre-warm evaluates");
    (s, sel)
}

struct Scenario {
    name: &'static str,
    edit: fn(&mut Spreadsheet, u64),
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "add_selection",
        edit: |s, _| {
            s.select(Expr::col("Year").ge(Expr::lit(2004))).unwrap();
        },
    },
    Scenario {
        name: "tighten_selection",
        edit: |s, sel| {
            s.replace_selection(sel, Expr::col("Price").lt(Expr::lit(16_000)))
                .unwrap();
        },
    },
    Scenario {
        name: "toggle_projection",
        edit: |s, _| {
            s.project_out("Mileage").unwrap();
        },
    },
];

/// Median wall time of (edit + view) in milliseconds. The clone restoring
/// the warm template runs outside the timed region.
fn time_edit(
    template: &Spreadsheet,
    sel: u64,
    edit: fn(&mut Spreadsheet, u64),
    samples: usize,
) -> f64 {
    let mut times = Vec::with_capacity(samples);
    // Warm-up iterations (code paths, allocator) are discarded.
    for i in 0..samples + 2 {
        let mut s = template.clone();
        let t = Instant::now();
        edit(&mut s, sel);
        black_box(s.view().expect("edited sheet evaluates"));
        if i >= 2 {
            times.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

struct Row {
    rows: usize,
    scenario: &'static str,
    full_ms: f64,
    incremental_ms: f64,
}

fn main() {
    let fast = std::env::var_os("SSA_BENCH_FAST").is_some();
    let sizes: &[usize] = if fast {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let samples = if fast { 5 } else { 25 };

    let mut rows = Vec::new();
    for &n in sizes {
        let (warm, sel) = template(n);
        let mut full = warm.clone();
        full.set_incremental(false);
        full.set_fast_reorganize(false);

        for sc in SCENARIOS {
            // The delta path must agree with a fresh full evaluation and
            // with the naive oracle before its timing means anything.
            let mut a = warm.clone();
            (sc.edit)(&mut a, sel);
            let naive = evaluate_with(
                a.base(),
                a.state(),
                spreadsheet_algebra::EvalOptions {
                    naive: true,
                    ..spreadsheet_algebra::EvalOptions::default()
                },
            )
            .expect("naive oracle");
            let incremental = a.view().expect("incremental view");
            assert_eq!(
                incremental, &naive,
                "incremental != oracle for {} at {n} rows — bench aborted",
                sc.name
            );

            let full_ms = time_edit(&full, sel, sc.edit, samples);
            let incremental_ms = time_edit(&warm, sel, sc.edit, samples);
            println!(
                "incremental/{:>6} rows/{:18}  full {:8.3} ms  incremental {:8.3} ms  speedup {:5.2}x",
                n,
                sc.name,
                full_ms,
                incremental_ms,
                full_ms / incremental_ms,
            );
            rows.push(Row {
                rows: n,
                scenario: sc.name,
                full_ms,
                incremental_ms,
            });
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"incremental\",\n");
    json.push_str(
        "  \"workload\": \"warm 2-level grouped sheet + Avg aggregate + selection; one edit then view()\",\n",
    );
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str("  \"edits\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"scenario\": \"{}\", \"full_ms\": {:.3}, \"incremental_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.rows,
            r.scenario,
            r.full_ms,
            r.incremental_ms,
            r.full_ms / r.incremental_ms,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    std::fs::write(path, &json).expect("write BENCH_incremental.json at repo root");
    println!("wrote {path}");
}
