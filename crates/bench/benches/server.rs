//! Server load bench: concurrent shared-snapshot reads vs the unshared
//! single-site baseline, with and without a writer streaming appends
//! (DESIGN.md §15).
//!
//! One read request models an ad-hoc querier hitting the server: open a
//! session over the sheet's published snapshot, apply a selective query
//! (selection + grouping + aggregate) through the undoable engine,
//! evaluate the view, close. Under the shared-snapshot architecture the
//! session forks the base `Arc` in O(1) and every history snapshot the
//! engine takes is likewise an O(1) `Arc` clone. The baseline
//! re-creates the pre-refactor world this crate actually shipped: the
//! base was held by value, so opening a session deep-copied it AND each
//! gesture's undo snapshot deep-copied it again (`Engine` snapshots
//! were `(Relation, QueryState, u64)` by value — see the git history of
//! `crates/core/src/history.rs`). The reported `speedup` is that
//! architectural ratio — shared-read throughput (at the entry's thread
//! count) over the single-thread deep-copy baseline — which transfers
//! across machines, unlike raw thread scaling on whatever CPU count CI
//! happens to have.
//!
//! The `read_shared_4_writer` entry re-runs the 4-thread read workload
//! while a writer commits paced 100-row appends through the host
//! (publishing a snapshot each time); its `p99_ratio` is read-tail
//! latency versus the quiet 4-thread run — the "reads are unaffected by
//! writes" claim, with < 2x as the acceptance ceiling.
//!
//! Results go to console and `BENCH_server.json` at the repository
//! root. `SSA_BENCH_FAST=1` runs a smoke configuration (the JSON is
//! then marked `"fast": true`).

use spreadsheet_algebra::prelude::*;
use ssa_relation::Relation;
use ssa_server::SheetHost;
use ssa_tpch::{schema, FeedConfig, OrderFeed};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn orders_host(n: usize) -> (SheetHost, OrderFeed) {
    let mut feed = OrderFeed::new(
        FeedConfig {
            customers: (n / 100).max(10),
            ..FeedConfig::default()
        },
        0x005E_4E44,
    );
    let mut rel = Relation::new("orders", schema::orders());
    rel.append_rows(feed.batch(n))
        .expect("feed rows fit schema");
    (SheetHost::new(rel), feed)
}

/// The per-request query, applied through the undoable engine, varied
/// by request index so successive requests never hit an identical
/// predicate. The selection passes ~1-3% of rows (feed prices are
/// uniform in 900..180k): an ad-hoc drill-down whose cost is the O(n)
/// predicate scan, not an O(n) re-materialization of the whole table.
/// `old_snapshots` charges each gesture the pre-refactor undo-snapshot
/// cost: a deep copy of the base, exactly what `Engine` paid before the
/// base moved behind an `Arc`.
fn query(e: &mut Engine, i: usize, old_snapshots: bool) {
    let threshold = 2_000.0 + (i % 7) as f64 * 500.0;
    let charge = |e: &mut Engine| {
        if old_snapshots {
            black_box(e.sheet().base().clone());
        }
    };
    charge(e);
    e.select(Expr::col("o_totalprice").lt(Expr::lit(threshold)))
        .expect("selection applies");
    charge(e);
    e.group(&["o_orderstatus"], Direction::Asc)
        .expect("grouping applies");
    charge(e);
    e.aggregate(AggFunc::Avg, "o_totalprice", 2)
        .expect("aggregate applies");
    black_box(e.view().expect("request view evaluates"));
}

/// One shared-architecture read request: O(1) snapshot fork, O(1)
/// history snapshots, then the query.
fn read_shared(host: &SheetHost, i: usize) {
    let snapshot = host.snapshot();
    let mut e = Engine::over_shared(Arc::clone(&snapshot.base));
    query(&mut e, i, false);
}

/// One baseline read request: the pre-refactor world, where opening a
/// session deep-copies the base and every gesture's undo snapshot
/// deep-copies it again.
fn read_unshared(host: &SheetHost, i: usize) {
    let snapshot = host.snapshot();
    let mut e = Engine::over((*snapshot.base).clone());
    query(&mut e, i, true);
}

/// Run `requests` reads per thread across `threads` threads; returns
/// (wall seconds, all per-request latencies in µs).
fn run_reads(
    host: &SheetHost,
    threads: usize,
    requests: usize,
    read: fn(&SheetHost, usize),
) -> (f64, Vec<f64>) {
    let wall = Instant::now();
    let mut latencies = Vec::with_capacity(threads * requests);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut times = Vec::with_capacity(requests);
                    for i in 0..requests {
                        let start = Instant::now();
                        read(host, t * requests + i);
                        times.push(start.elapsed().as_secs_f64() * 1e6);
                    }
                    times
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("reader thread"));
        }
    });
    (wall.elapsed().as_secs_f64(), latencies)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct ReadRow {
    rows: usize,
    scenario: String,
    threads: usize,
    requests: usize,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    speedup: f64,
    p99_ratio: Option<f64>,
}

#[allow(clippy::too_many_arguments)]
fn read_row(
    rows: usize,
    scenario: &str,
    threads: usize,
    wall: f64,
    mut latencies: Vec<f64>,
    baseline_rps: f64,
    quiet_p99: Option<f64>,
) -> ReadRow {
    latencies.sort_by(|a, b| a.total_cmp(b));
    let throughput_rps = latencies.len() as f64 / wall;
    let p99 = percentile(&latencies, 0.99);
    ReadRow {
        rows,
        scenario: scenario.to_string(),
        threads,
        requests: latencies.len(),
        throughput_rps,
        p50_us: percentile(&latencies, 0.50),
        p99_us: p99,
        speedup: if baseline_rps > 0.0 {
            throughput_rps / baseline_rps
        } else {
            1.0
        },
        p99_ratio: quiet_p99.map(|q| p99 / q),
    }
}

fn main() {
    let fast = std::env::var_os("SSA_BENCH_FAST").is_some();
    let sizes: &[usize] = if fast { &[5_000] } else { &[5_000, 100_000] };
    let requests = if fast { 30 } else { 120 };
    let threads = 4;

    let mut reads: Vec<ReadRow> = Vec::new();
    let mut writes: Vec<(usize, usize, f64, f64, f64)> = Vec::new();

    for &n in sizes {
        let (host, mut feed) = orders_host(n);

        // The shared read must agree with the deep-copy baseline —
        // bitwise, including presentation order — before timing.
        {
            let snapshot = host.snapshot();
            let mut shared = Engine::over_shared(Arc::clone(&snapshot.base));
            let mut copied = Engine::over((*snapshot.base).clone());
            query(&mut shared, 3, false);
            query(&mut copied, 3, true);
            assert_eq!(
                shared.view().expect("shared view"),
                copied.view().expect("copied view"),
                "shared read != deep-copy oracle at {n} rows — bench aborted"
            );
        }

        let (wall, lat) = run_reads(&host, 1, requests, read_unshared);
        let baseline = read_row(n, "read_unshared", 1, wall, lat, 0.0, None);
        let baseline_rps = baseline.throughput_rps;

        let (wall, lat) = run_reads(&host, 1, requests, read_shared);
        let shared1 = read_row(n, "read_shared", 1, wall, lat, baseline_rps, None);

        let (wall, lat) = run_reads(&host, threads, requests, read_shared);
        let shared4 = read_row(n, "read_shared_4", threads, wall, lat, baseline_rps, None);
        let quiet_p99 = shared4.p99_us;

        // Same 4-thread read workload with a writer streaming paced
        // 100-row appends (each commit publishes a fresh snapshot).
        let stop = AtomicBool::new(false);
        let (wall, lat, mut commit_ms) = std::thread::scope(|scope| {
            let host_ref = &host;
            let stop_ref = &stop;
            let batches: Vec<Vec<ssa_relation::Tuple>> =
                (0..200).map(|_| feed.batch(100)).collect();
            let writer = scope.spawn(move || {
                let mut times = Vec::new();
                for batch in batches {
                    if stop_ref.load(Ordering::Relaxed) {
                        break;
                    }
                    let start = Instant::now();
                    host_ref.append_rows(batch).expect("writer append commits");
                    times.push(start.elapsed().as_secs_f64() * 1e3);
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                times
            });
            let (wall, lat) = run_reads(host_ref, threads, requests, read_shared);
            stop.store(true, Ordering::Relaxed);
            let times = writer.join().expect("writer thread");
            (wall, lat, times)
        });
        let withwriter = read_row(
            n,
            "read_shared_4_writer",
            threads,
            wall,
            lat,
            baseline_rps,
            Some(quiet_p99),
        );

        commit_ms.sort_by(|a, b| a.total_cmp(b));
        let commits = commit_ms.len();
        if commits > 0 {
            writes.push((
                n,
                commits,
                percentile(&commit_ms, 0.50),
                percentile(&commit_ms, 0.99),
                host.snapshot().version as f64,
            ));
        }

        // Session fork cost: O(1) Arc fork vs the baseline deep copy.
        let snapshot = host.snapshot();
        let samples = if fast { 20 } else { 100 };
        let fork_us = {
            let start = Instant::now();
            for _ in 0..samples {
                black_box(Spreadsheet::over_shared(Arc::clone(&snapshot.base)));
            }
            start.elapsed().as_secs_f64() * 1e6 / samples as f64
        };
        let copy_us = {
            let start = Instant::now();
            for _ in 0..samples {
                black_box(Spreadsheet::over((*snapshot.base).clone()));
            }
            start.elapsed().as_secs_f64() * 1e6 / samples as f64
        };
        reads.push(baseline);
        reads.push(shared1);
        reads.push(shared4);
        reads.push(withwriter);
        reads.push(ReadRow {
            rows: n,
            scenario: "session_fork".to_string(),
            threads: 1,
            requests: samples,
            throughput_rps: 1e6 / fork_us,
            p50_us: fork_us,
            p99_us: fork_us,
            speedup: copy_us / fork_us,
            p99_ratio: None,
        });

        for r in reads.iter().filter(|r| r.rows == n) {
            println!(
                "server/{:>6} rows/{:22} x{} {:9.1} req/s  p50 {:9.1} µs  p99 {:9.1} µs  speedup {:6.2}x{}",
                r.rows,
                r.scenario,
                r.threads,
                r.throughput_rps,
                r.p50_us,
                r.p99_us,
                r.speedup,
                r.p99_ratio
                    .map(|x| format!("  p99_ratio {x:.2}"))
                    .unwrap_or_default(),
            );
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"server\",\n");
    json.push_str(
        "  \"workload\": \"one read = engine session over the published snapshot + selection + \
         group + avg + view on TPC-H orders; speedup = read throughput at the entry's \
         thread count vs the 1-thread pre-refactor baseline (session open deep-copies the \
         base and each gesture's undo snapshot deep-copies it again); p99_ratio = \
         4-thread read p99 with a writer streaming paced 100-row appends vs quiet\",\n",
    );
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str("  \"reads\": [\n");
    for (i, r) in reads.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"scenario\": \"{}\", \"threads\": {}, \"requests\": {}, \
             \"throughput_rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"speedup\": {:.2}{}}}{}\n",
            r.rows,
            r.scenario,
            r.threads,
            r.requests,
            r.throughput_rps,
            r.p50_us,
            r.p99_us,
            r.speedup,
            r.p99_ratio
                .map(|x| format!(", \"p99_ratio\": {x:.2}"))
                .unwrap_or_default(),
            if i + 1 < reads.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"writes\": [\n");
    for (i, (rows, commits, p50, p99, version)) in writes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {rows}, \"scenario\": \"append_100_commit\", \"commits\": {commits}, \
             \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \"final_version\": {version}}}{}\n",
            if i + 1 < writes.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, &json).expect("write BENCH_server.json at repo root");
    println!("wrote {path}");
}
