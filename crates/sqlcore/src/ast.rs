//! AST for *core single-block SQL* (Sec. IV-A):
//!
//! ```text
//! SELECT <projection-list> <aggregation-list>
//! FROM <relation-list>
//! WHERE <selection-predicate>
//! GROUP BY <grouping-list>
//! HAVING <group-selection-predicate>
//! ORDER BY <ordering-list>
//! ```
//!
//! with the projection-list a subset of the grouping-list and the
//! ordering-list a subset of projection ∪ aggregation.

use spreadsheet_algebra::Direction;
use ssa_relation::{AggFunc, Expr, RelationError, Result};
use std::fmt;

/// An aggregate invocation. `column = None` is `COUNT(*)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggCall {
    pub func: AggFunc,
    pub column: Option<String>,
    /// Canonical output name — matches the name the spreadsheet algebra
    /// generates for the same aggregate (`Avg_Price` style), so the
    /// Theorem-1 translation lines up column-for-column.
    pub output: String,
}

impl AggCall {
    pub fn new(func: AggFunc, column: Option<&str>) -> AggCall {
        let output = match column {
            Some(c) => format!("{}_{}", func.short_name(), c),
            None => func.short_name().to_string(),
        };
        AggCall {
            func,
            column: column.map(|c| c.to_string()),
            output,
        }
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.column {
            Some(c) => write!(f, "{}({c})", self.func.short_name().to_uppercase()),
            None => write!(f, "{}(*)", self.func.short_name().to_uppercase()),
        }
    }
}

/// One item of the SELECT clause, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputItem {
    Column(String),
    Agg(AggCall),
}

impl OutputItem {
    /// The column name this item contributes to the result schema.
    pub fn output_name(&self) -> &str {
        match self {
            OutputItem::Column(c) => c,
            OutputItem::Agg(a) => &a.output,
        }
    }
}

/// A core single-block SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// SELECT DISTINCT (extension beyond the paper's core form; maps to
    /// the algebra's duplicate-elimination operator).
    pub distinct: bool,
    /// SELECT items in order (columns and aggregates interleaved).
    pub items: Vec<OutputItem>,
    /// FROM relation names, in order.
    pub from: Vec<String>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<String>,
    /// HAVING predicate with aggregate calls rewritten to their canonical
    /// output columns (`Avg_Price > 100`).
    pub having: Option<Expr>,
    /// Every aggregate the statement mentions (SELECT ∪ HAVING ∪ ORDER
    /// BY), deduplicated, in first-mention order.
    pub aggregates: Vec<AggCall>,
    /// ORDER BY over output names (plain columns or canonical aggregate
    /// names).
    pub order_by: Vec<(String, Direction)>,
}

impl SelectStmt {
    /// Plain (non-aggregate) columns of the SELECT clause, in order.
    pub fn projection_columns(&self) -> Vec<&str> {
        self.items
            .iter()
            .filter_map(|i| match i {
                OutputItem::Column(c) => Some(c.as_str()),
                OutputItem::Agg(_) => None,
            })
            .collect()
    }

    /// Result-schema column names in SELECT order.
    pub fn output_names(&self) -> Vec<&str> {
        self.items.iter().map(|i| i.output_name()).collect()
    }

    /// Whether the statement groups/aggregates (and therefore produces one
    /// row per group under SQL semantics).
    pub fn is_grouped(&self) -> bool {
        !self.group_by.is_empty() || !self.aggregates.is_empty()
    }

    /// Enforce the core-SQL constraints of Sec. IV-A.
    pub fn validate(&self) -> Result<()> {
        if self.from.is_empty() {
            return Err(RelationError::ParseValue {
                text: "FROM".into(),
                wanted: "at least one relation",
            });
        }
        if self.items.is_empty() {
            return Err(RelationError::ParseValue {
                text: "SELECT".into(),
                wanted: "at least one item",
            });
        }
        if self.is_grouped() {
            // projection-list ⊆ grouping-list
            for c in self.projection_columns() {
                if !self.group_by.iter().any(|g| g == c) {
                    return Err(RelationError::ParseValue {
                        text: c.to_string(),
                        wanted: "projected column to appear in GROUP BY",
                    });
                }
            }
        }
        // ordering-list ⊆ projection ∪ aggregation outputs
        let outputs = self.output_names();
        for (o, _) in &self.order_by {
            if !outputs.iter().any(|n| n == o) {
                return Err(RelationError::ParseValue {
                    text: o.clone(),
                    wanted: "ORDER BY target to appear in SELECT",
                });
            }
        }
        // HAVING only with grouping
        if self.having.is_some() && !self.is_grouped() {
            return Err(RelationError::ParseValue {
                text: "HAVING".into(),
                wanted: "a GROUP BY (or aggregation) to qualify",
            });
        }
        Ok(())
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                OutputItem::Column(c) => write!(f, "{c}")?,
                OutputItem::Agg(a) => write!(f, "{a}")?,
            }
        }
        write!(f, " FROM {}", self.from.join(", "))?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY {}", self.group_by.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, (c, d)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c} {d}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grouped_stmt() -> SelectStmt {
        SelectStmt {
            distinct: false,
            items: vec![
                OutputItem::Column("model".into()),
                OutputItem::Agg(AggCall::new(AggFunc::Avg, Some("price"))),
            ],
            from: vec!["cars".into()],
            where_clause: Some(Expr::col("year").ge(Expr::lit(2005))),
            group_by: vec!["model".into()],
            having: Some(Expr::col("Avg_price").gt(Expr::lit(14000))),
            aggregates: vec![AggCall::new(AggFunc::Avg, Some("price"))],
            order_by: vec![("Avg_price".into(), Direction::Desc)],
        }
    }

    #[test]
    fn agg_call_canonical_names() {
        assert_eq!(
            AggCall::new(AggFunc::Avg, Some("price")).output,
            "Avg_price"
        );
        assert_eq!(AggCall::new(AggFunc::Count, None).output, "Count");
    }

    #[test]
    fn output_names_in_select_order() {
        let s = grouped_stmt();
        assert_eq!(s.output_names(), vec!["model", "Avg_price"]);
        assert_eq!(s.projection_columns(), vec!["model"]);
        assert!(s.is_grouped());
    }

    #[test]
    fn validate_accepts_core_form() {
        grouped_stmt().validate().unwrap();
    }

    #[test]
    fn validate_rejects_projection_outside_grouping() {
        let mut s = grouped_stmt();
        s.items.push(OutputItem::Column("year".into()));
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_order_by_outside_select() {
        let mut s = grouped_stmt();
        s.order_by.push(("price".into(), Direction::Asc));
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_having_without_grouping() {
        let s = SelectStmt {
            distinct: false,
            items: vec![OutputItem::Column("x".into())],
            from: vec!["t".into()],
            where_clause: None,
            group_by: vec![],
            having: Some(Expr::col("x").gt(Expr::lit(1))),
            aggregates: vec![],
            order_by: vec![],
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_from_and_select() {
        let mut s = grouped_stmt();
        s.from.clear();
        assert!(s.validate().is_err());
        let mut s = grouped_stmt();
        s.items.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn display_reads_like_sql() {
        let text = grouped_stmt().to_string();
        assert!(text.starts_with("SELECT model, AVG(price) FROM cars"));
        assert!(text.contains("GROUP BY model"));
        assert!(text.contains("HAVING"));
        assert!(text.contains("ORDER BY Avg_price DESC"));
    }
}
