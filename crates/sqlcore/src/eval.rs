//! Reference evaluator: core single-block SQL executed with classical
//! relational semantics over the `ssa-relation` substrate.
//!
//! This is the ground truth the Theorem-1 translation is checked against
//! (the paper's equivalence claim): GROUP BY produces **one row per
//! group**, aggregates are computed over the finest grouping, HAVING
//! filters groups, ORDER BY sorts the result.

use crate::ast::{OutputItem, SelectStmt};
use spreadsheet_algebra::plan::plan_tables;
use spreadsheet_algebra::Direction;
use ssa_relation::ops::{self, AggSpec, SortKey};
use ssa_relation::{Catalog, Relation, Result};

/// Evaluate a statement against a catalog of base relations.
pub fn eval_select(stmt: &SelectStmt, catalog: &Catalog) -> Result<Relation> {
    stmt.validate()?;

    // FROM: left-deep product of the named relations.
    let mut data = catalog.get(&stmt.from[0])?.clone();
    for name in &stmt.from[1..] {
        data = ops::product(&data, catalog.get(name)?)?;
    }

    // WHERE.
    if let Some(w) = &stmt.where_clause {
        data = ops::select(&data, w)?;
    }

    finish_select(stmt, data)
}

/// Evaluate through the algebraic planner: single-table WHERE conjuncts
/// are pushed below the joins into their relation, multi-table equi
/// conjuncts become hash joins ordered by estimated selectivity, and the
/// provenance sort restores the exact nested-loop row order — so the
/// result is bitwise-identical to [`eval_select`] (rows *and* order),
/// only faster on selective multi-join workloads.
pub fn eval_select_planned(stmt: &SelectStmt, catalog: &Catalog) -> Result<Relation> {
    stmt.validate()?;
    let inputs: Vec<&Relation> = stmt
        .from
        .iter()
        .map(|n| catalog.get(n))
        .collect::<Result<_>>()?;
    let plan = plan_tables(&inputs, stmt.where_clause.as_ref())?;
    let data = plan.execute(ssa_relation::par::DEFAULT_PARALLEL_THRESHOLD)?;
    finish_select(stmt, data)
}

/// `EXPLAIN` — render the planned FROM/WHERE operator tree for a
/// statement without executing it.
pub fn explain_select(stmt: &SelectStmt, catalog: &Catalog) -> Result<String> {
    stmt.validate()?;
    let inputs: Vec<&Relation> = stmt
        .from
        .iter()
        .map(|n| catalog.get(n))
        .collect::<Result<_>>()?;
    Ok(plan_tables(&inputs, stmt.where_clause.as_ref())?.render())
}

/// The shared back half: grouping, HAVING, ORDER BY, projection and
/// DISTINCT over the already-filtered FROM data.
fn finish_select(stmt: &SelectStmt, mut data: Relation) -> Result<Relation> {
    // GROUP BY + aggregation: one row per group.
    if stmt.is_grouped() {
        let group_cols: Vec<&str> = stmt.group_by.iter().map(|s| s.as_str()).collect();
        let aggs: Vec<AggSpec> = stmt
            .aggregates
            .iter()
            .map(|a| AggSpec::new(a.func, a.column.as_deref(), a.output.clone()))
            .collect();
        data = ops::group_aggregate(&data, &group_cols, &aggs)?;
        if let Some(h) = &stmt.having {
            data = ops::select(&data, h)?;
        }
    }

    // ORDER BY before projection (targets are all in the SELECT list, so
    // they survive projection; sorting first keeps this simple).
    if !stmt.order_by.is_empty() {
        let keys: Vec<SortKey> = stmt
            .order_by
            .iter()
            .map(|(c, d)| match d {
                Direction::Asc => SortKey::asc(c.clone()),
                Direction::Desc => SortKey::desc(c.clone()),
            })
            .collect();
        data = ops::sort(&data, &keys)?;
    }

    // Projection onto the SELECT items, in order.
    let outputs: Vec<&str> = stmt
        .items
        .iter()
        .map(|i| match i {
            OutputItem::Column(c) => c.as_str(),
            OutputItem::Agg(a) => a.output.as_str(),
        })
        .collect();
    let mut result = ops::project(&data, &outputs)?;
    if stmt.distinct {
        result = ops::distinct(&result)?;
    }
    result.set_name("result");
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use spreadsheet_algebra::fixtures::{dealers, used_cars};
    use ssa_relation::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(used_cars()).unwrap();
        c.register(dealers()).unwrap();
        c
    }

    fn run(sql: &str) -> Relation {
        eval_select(&parse_select(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn plain_selection_projection() {
        let r = run("SELECT Model, Price FROM cars WHERE Year = 2005");
        assert_eq!(r.len(), 4);
        assert_eq!(r.schema().names(), vec!["Model", "Price"]);
    }

    #[test]
    fn grouped_aggregate_one_row_per_group() {
        let r = run("SELECT Model, AVG(Price) FROM cars GROUP BY Model");
        assert_eq!(r.len(), 2);
        let jetta = r
            .rows()
            .iter()
            .find(|t| t.get(0) == &Value::str("Jetta"))
            .unwrap();
        assert_eq!(jetta.get(1), &Value::Float(16333.333333333334));
    }

    #[test]
    fn having_filters_groups() {
        let r = run("SELECT Model, COUNT(*) FROM cars GROUP BY Model HAVING COUNT(*) > 3");
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0].get(0), &Value::str("Jetta"));
        assert_eq!(r.rows()[0].get(1), &Value::Int(6));
    }

    #[test]
    fn order_by_descending_aggregate() {
        let r = run("SELECT Model, MAX(Price) FROM cars GROUP BY Model ORDER BY MAX(Price) DESC");
        assert_eq!(r.rows()[0].get(0), &Value::str("Jetta"));
        assert_eq!(r.rows()[1].get(0), &Value::str("Civic"));
    }

    #[test]
    fn multi_relation_product_with_join_predicate_in_where() {
        let r =
            run("SELECT City FROM cars, dealers WHERE Model = \"dealers.Model\" AND Year = 2006");
        // 2006 cars: 3 Jettas (1 dealer) + 2 Civics (2 dealers) = 7
        assert_eq!(r.len(), 7);
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let r = run("SELECT COUNT(*), MIN(Price) FROM cars");
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0].get(0), &Value::Int(9));
        assert_eq!(r.rows()[0].get(1), &Value::Int(13500));
    }

    #[test]
    fn multi_level_grouping() {
        let r = run(
            "SELECT Model, Year, AVG(Price) FROM cars GROUP BY Model, Year \
             ORDER BY Model, Year",
        );
        assert_eq!(r.len(), 4);
        assert_eq!(r.rows()[0].get(0), &Value::str("Civic"));
        assert_eq!(r.rows()[0].get(1), &Value::Int(2005));
        assert_eq!(r.rows()[3].get(2), &Value::Float(17500.0));
    }

    #[test]
    fn unknown_relation_errors() {
        assert!(eval_select(&parse_select("SELECT x FROM ghost").unwrap(), &catalog()).is_err());
    }

    /// The planned evaluator must be bitwise-identical to the reference
    /// evaluator — same rows in the same order — on every statement
    /// shape, including the multi-relation product where the planner
    /// actually rewrites (pushdown + hash join + provenance re-order).
    #[test]
    fn planned_matches_reference_bitwise() {
        let c = catalog();
        for sql in [
            "SELECT Model, Price FROM cars WHERE Year = 2005",
            "SELECT Model, AVG(Price) FROM cars GROUP BY Model ORDER BY Model",
            "SELECT City FROM cars, dealers WHERE Model = \"dealers.Model\" AND Year = 2006",
            "SELECT City FROM cars, dealers WHERE Model = \"dealers.Model\" AND Price < 17000 \
             AND City = 'Ann Arbor'",
            "SELECT Model, City FROM cars, dealers",
            "SELECT DISTINCT Model FROM cars, dealers WHERE Model = \"dealers.Model\"",
        ] {
            let stmt = parse_select(sql).unwrap();
            let reference = eval_select(&stmt, &c).unwrap();
            let planned = eval_select_planned(&stmt, &c).unwrap();
            assert_eq!(reference.schema(), planned.schema(), "{sql}");
            assert_eq!(reference.rows(), planned.rows(), "{sql}");
        }
    }

    #[test]
    fn explain_renders_pushdown_and_join() {
        let stmt = parse_select(
            "SELECT City FROM cars, dealers WHERE Model = \"dealers.Model\" AND Year = 2006",
        )
        .unwrap();
        let text = explain_select(&stmt, &catalog()).unwrap();
        assert!(text.contains("Join"), "join node rendered: {text}");
        assert!(
            text.contains("Filter Year = 2006"),
            "single-table conjunct pushed below the join: {text}"
        );
        assert!(text.contains("Scan cars"), "{text}");
        assert!(text.contains("Scan dealers"), "{text}");
    }
}
