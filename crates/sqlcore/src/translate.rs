//! The Theorem-1 construction: compile a core single-block SQL statement
//! into a sequence of spreadsheet-algebra operations.
//!
//! The seven steps of the paper's proof, verbatim:
//!
//! 1. product the FROM relations one at a time;
//! 2. specify the WHERE clause with the selection operator (one selection
//!    per conjunct — small direct-manipulation steps);
//! 3. one grouping operator per GROUP BY item, left to right;
//! 4. one aggregation operator per aggregate, at the finest level;
//! 5. the HAVING clause as a selection over the aggregate columns;
//! 6. the ORDER BY clause with the ordering operator at the finest level
//!    (a target that is a grouping attribute flips its group level's
//!    direction instead — Def. 4 case 2);
//! 7. project out every column not in the output, one at a time.
//!
//! ## Equivalence, precisely
//!
//! Under SQL semantics a grouped query returns **one row per group**; the
//! spreadsheet keeps *all* tuples with aggregate values repeated within
//! each group (Def. 11), and projection never removes tuples (Def. 6
//! leaves `R` intact). The two results are therefore equal only after
//! collapsing the spreadsheet's identical visible rows — which is exactly
//! what [`equivalent`] checks (and what a user sees after an explicit DE).
//! For ungrouped queries the results are equal as multisets outright.
//! This makes the gap in the paper's proof sketch explicit instead of
//! hiding it.

use crate::ast::{OutputItem, SelectStmt};
use spreadsheet_algebra::{Direction, SheetError, Spreadsheet};
use ssa_relation::{ops, Catalog, Relation};

/// The result of translating a statement: the driven spreadsheet and the
/// mapping from SQL output names to spreadsheet column names.
#[derive(Debug)]
pub struct Translated {
    pub sheet: Spreadsheet,
    /// `(sql_output_name, sheet_column_name)` in SELECT order.
    pub outputs: Vec<(String, String)>,
}

impl Translated {
    /// The spreadsheet's answer projected onto the SQL output columns, in
    /// presentation order.
    pub fn result(&self) -> Result<Relation, SheetError> {
        let derived = self.sheet.evaluate_now()?;
        let cols: Vec<&str> = self.outputs.iter().map(|(_, c)| c.as_str()).collect();
        let mut rel = ops::project(&derived.data, &cols)?;
        // Rename to the SQL-side output names so schemas align.
        for (sql, sheet_col) in &self.outputs {
            if sql != sheet_col {
                rel.schema_mut().rename(sheet_col, sql)?;
            }
        }
        rel.set_name("result");
        Ok(rel)
    }
}

/// Run the seven-step construction.
pub fn translate(stmt: &SelectStmt, catalog: &Catalog) -> Result<Translated, SheetError> {
    stmt.validate()?;

    // Step 1: product of the FROM relations.
    let mut sheet = Spreadsheet::over(catalog.get(&stmt.from[0])?.clone());
    for name in &stmt.from[1..] {
        let stored = Spreadsheet::over(catalog.get(name)?.clone()).save(name.clone())?;
        sheet.product(&stored)?;
    }

    // Step 2: WHERE as selections, one conjunct at a time.
    if let Some(w) = &stmt.where_clause {
        for conjunct in w.conjuncts() {
            sheet.select(conjunct)?;
        }
    }

    // Step 3: grouping, one GROUP BY item at a time, left to right.
    for item in &stmt.group_by {
        sheet.group_add(&[item.as_str()], Direction::Asc)?;
    }

    // Step 4: aggregations at the finest level.
    let finest = sheet.state().spec.level_count();
    let mut outputs: Vec<(String, String)> = Vec::new();
    let mut agg_names: Vec<(String, String)> = Vec::new(); // canonical → sheet
    for agg in &stmt.aggregates {
        // COUNT(*) counts tuples; any column works under AggFunc::Count
        // (NULLs included). Use the first base column.
        let input = match &agg.column {
            Some(c) => c.clone(),
            None => sheet
                .base()
                .schema()
                .names()
                .first()
                .expect("relations have at least one column")
                .to_string(),
        };
        let name = sheet.aggregate(agg.func, &input, finest)?;
        agg_names.push((agg.output.clone(), name));
    }
    let sheet_name_of = |canonical: &str| -> String {
        agg_names
            .iter()
            .find(|(c, _)| c == canonical)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| canonical.to_string())
    };

    // Step 5: HAVING as a selection over the aggregate columns.
    if let Some(h) = &stmt.having {
        let rewritten = h.map_columns(&|c| sheet_name_of(c));
        for conjunct in rewritten.conjuncts() {
            sheet.select(conjunct)?;
        }
    }

    // Step 6: ORDER BY. A plain attribute (or aggregate column) orders the
    // finest level; a grouping attribute flips the direction of the level
    // it defines (Def. 4 case 2 — ordering level i−1 groups by the
    // relative basis of level i).
    for (target, dir) in &stmt.order_by {
        let sheet_col = sheet_name_of(target);
        let spec = &sheet.state().spec;
        let mut handled = false;
        for level in 2..=spec.level_count() {
            if spec.in_relative_basis(&sheet_col, level) {
                sheet.order(&sheet_col, *dir, level - 1)?;
                handled = true;
                break;
            }
        }
        if !handled {
            let finest = sheet.state().spec.level_count();
            sheet.order(&sheet_col, *dir, finest)?;
        }
    }

    // Step 7: project out everything not in the output, one at a time.
    let mut keep: Vec<String> = Vec::new();
    for item in &stmt.items {
        let col = match item {
            OutputItem::Column(c) => c.clone(),
            OutputItem::Agg(a) => sheet_name_of(&a.output),
        };
        outputs.push((item.output_name().to_string(), col.clone()));
        keep.push(col);
    }
    for col in sheet.visible() {
        if keep.contains(&col) {
            continue;
        }
        match sheet.project_out(&col) {
            Ok(()) => {}
            // A computed column the HAVING clause depends on cannot be
            // removed (precedence); leaving it visible does not affect
            // the projected result.
            Err(SheetError::ColumnInUse { .. }) => {}
            Err(e) => return Err(e),
        }
    }

    // Extension: SELECT DISTINCT maps to the algebra's DE operator. Note
    // DE removes duplicate *R-tuples* (Def. 13); the projected visible
    // rows may still repeat when hidden columns differ — `equivalent`
    // collapses both sides, the same gloss as for grouped queries.
    if stmt.distinct {
        sheet.dedup()?;
    }

    Ok(Translated { sheet, outputs })
}

/// Theorem-1 equivalence check between the SQL reference result and the
/// spreadsheet result (see module docs for the duplicate-collapse rule).
pub fn equivalent(stmt: &SelectStmt, sql_result: &Relation, sheet_result: &Relation) -> bool {
    if stmt.is_grouped() || stmt.distinct {
        let a = ops::distinct(sql_result).expect("distinct cannot fail");
        let b = ops::distinct(sheet_result).expect("distinct cannot fail");
        a.multiset_eq_unordered_columns(&b)
    } else {
        sql_result.multiset_eq_unordered_columns(sheet_result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_select;
    use crate::parser::parse_select;
    use spreadsheet_algebra::fixtures::{dealers, used_cars};
    use ssa_relation::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(used_cars()).unwrap();
        c.register(dealers()).unwrap();
        c
    }

    fn check(sql: &str) {
        let stmt = parse_select(sql).unwrap();
        let cat = catalog();
        let reference = eval_select(&stmt, &cat).unwrap();
        let translated = translate(&stmt, &cat).unwrap();
        let sheet_result = translated.result().unwrap();
        assert!(
            equivalent(&stmt, &reference, &sheet_result),
            "not equivalent for `{sql}`\nSQL: {reference:?}\nsheet: {sheet_result:?}"
        );
    }

    #[test]
    fn theorem1_plain_selection() {
        check("SELECT Model, Price FROM cars WHERE Year = 2005 AND Price < 16000");
    }

    #[test]
    fn theorem1_projection_only() {
        check("SELECT Model FROM cars");
    }

    #[test]
    fn theorem1_distinct_and_between_in() {
        check("SELECT DISTINCT Model FROM cars");
        check("SELECT DISTINCT Model, Year FROM cars WHERE Price BETWEEN 14000 AND 17000");
        check("SELECT ID, Model FROM cars WHERE Model IN ('Jetta', 'Civic') AND Year IN (2006)");
    }

    #[test]
    fn theorem1_grouped_aggregate() {
        check("SELECT Model, AVG(Price) FROM cars GROUP BY Model");
    }

    #[test]
    fn theorem1_having() {
        check("SELECT Model, COUNT(*) FROM cars GROUP BY Model HAVING COUNT(*) > 3");
    }

    #[test]
    fn theorem1_multi_level_grouping_with_order() {
        check(
            "SELECT Model, Year, AVG(Price) FROM cars GROUP BY Model, Year \
             ORDER BY Model DESC, Year",
        );
    }

    #[test]
    fn theorem1_multi_relation_join_in_where() {
        check("SELECT City FROM cars, dealers WHERE Model = \"dealers.Model\" AND Year = 2006");
    }

    #[test]
    fn theorem1_global_aggregate() {
        check("SELECT COUNT(*), MAX(Price) FROM cars");
    }

    #[test]
    fn translated_presentation_respects_grouping_direction() {
        // ORDER BY Model DESC flips the Model grouping level.
        let stmt =
            parse_select("SELECT Model, AVG(Price) FROM cars GROUP BY Model ORDER BY Model DESC")
                .unwrap();
        let t = translate(&stmt, &catalog()).unwrap();
        let r = t.result().unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::str("Jetta"));
        assert_eq!(r.rows()[r.len() - 1].get(0), &Value::str("Civic"));
    }

    #[test]
    fn having_only_aggregate_stays_but_projected_result_matches() {
        // MIN(Price) is used only in HAVING; the sheet cannot drop the
        // computed column (the selection depends on it) but the projected
        // result still matches SQL.
        check("SELECT Model FROM cars GROUP BY Model HAVING MIN(Price) < 14000");
    }

    #[test]
    fn outputs_mapping_aligns_names() {
        let stmt = parse_select("SELECT Model, COUNT(*) FROM cars GROUP BY Model").unwrap();
        let t = translate(&stmt, &catalog()).unwrap();
        assert_eq!(t.outputs[0], ("Model".to_string(), "Model".into()));
        assert_eq!(t.outputs[1].0, "Count");
        let r = t.result().unwrap();
        assert_eq!(r.schema().names(), vec!["Model", "Count"]);
    }
}
