//! # ssa-sql — core single-block SQL over the spreadsheet algebra
//!
//! Three pieces, all in service of the paper's Theorem 1 ("for every core
//! SQL single-block query expression there exists an equivalent expression
//! in the spreadsheet algebra"):
//!
//! * [`ast`] / [`parser`] — the core single-block statement form of
//!   Sec. IV-A, with its constraints (projection ⊆ grouping, ordering ⊆
//!   projection ∪ aggregation) enforced;
//! * [`eval`] — a reference evaluator with classical SQL semantics (one
//!   row per group), used as ground truth;
//! * [`translate`](mod@translate) — the paper's seven-step construction,
//!   driving a [`spreadsheet_algebra::Spreadsheet`] and checking
//!   equivalence.

pub mod ast;
pub mod eval;
pub mod parser;
pub mod translate;

pub use ast::{AggCall, OutputItem, SelectStmt};
pub use eval::{eval_select, eval_select_planned, explain_select};
pub use parser::parse_select;
pub use translate::{equivalent, translate, Translated};
