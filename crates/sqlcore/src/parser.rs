//! Parser for core single-block SQL, built on the shared expression
//! lexer/parser of `ssa-relation`.
//!
//! Aggregate calls (`AVG(price)`, `COUNT(*)`) may appear in the SELECT
//! list, the HAVING clause and the ORDER BY list; inside expressions they
//! are rewritten to their canonical output column (`Avg_price`) and
//! collected on the statement, which is exactly how the spreadsheet
//! algebra treats aggregation — as a computed column that predicates and
//! orderings then reference.

use crate::ast::{AggCall, OutputItem, SelectStmt};
use spreadsheet_algebra::Direction;
use ssa_relation::agg::parse_agg_func;
use ssa_relation::expr_parse::{tokenize, ExprParser, Token};
use ssa_relation::{Expr, RelationError, Result};

/// Parse one core single-block SQL statement (and validate it).
pub fn parse_select(input: &str) -> Result<SelectStmt> {
    let tokens = tokenize(input)?;
    let mut p = ExprParser::new(&tokens);
    if !p.eat_kw("SELECT") {
        return Err(err_expected("SELECT"));
    }
    let distinct = p.eat_kw("DISTINCT");
    let mut items = Vec::new();
    let mut aggregates: Vec<AggCall> = Vec::new();
    loop {
        if let Some(agg) = try_parse_agg(&mut p)? {
            record_agg(&mut aggregates, &agg);
            items.push(OutputItem::Agg(agg));
        } else {
            let col = p.expect_ident()?;
            items.push(OutputItem::Column(col));
        }
        if !p.eat_symbol(",") {
            break;
        }
    }
    if !p.eat_kw("FROM") {
        return Err(err_expected("FROM"));
    }
    let mut from = vec![p.expect_ident()?];
    while p.eat_symbol(",") {
        from.push(p.expect_ident()?);
    }
    let where_clause = if p.eat_kw("WHERE") {
        Some(p.expr()?)
    } else {
        None
    };
    let mut group_by = Vec::new();
    if p.eat_kw("GROUP") {
        if !p.eat_kw("BY") {
            return Err(err_expected("BY after GROUP"));
        }
        group_by.push(p.expect_ident()?);
        while p.eat_symbol(",") {
            group_by.push(p.expect_ident()?);
        }
    }
    let having = if p.eat_kw("HAVING") {
        Some(parse_agg_expr(&mut p, &mut aggregates)?)
    } else {
        None
    };
    let mut order_by = Vec::new();
    if p.eat_kw("ORDER") {
        if !p.eat_kw("BY") {
            return Err(err_expected("BY after ORDER"));
        }
        loop {
            let target = if let Some(agg) = try_parse_agg(&mut p)? {
                let name = agg.output.clone();
                record_agg(&mut aggregates, &agg);
                name
            } else {
                p.expect_ident()?
            };
            let dir = if p.eat_kw("DESC") {
                Direction::Desc
            } else {
                // ASC is the default and may be written explicitly.
                p.eat_kw("ASC");
                Direction::Asc
            };
            order_by.push((target, dir));
            if !p.eat_symbol(",") {
                break;
            }
        }
    }
    if !p.at_end() {
        return Err(RelationError::ParseValue {
            text: format!("{:?}", p.peek()),
            wanted: "end of statement",
        });
    }
    let stmt = SelectStmt {
        distinct,
        items,
        from,
        where_clause,
        group_by,
        having,
        aggregates,
        order_by,
    };
    stmt.validate()?;
    Ok(stmt)
}

fn err_expected(what: &'static str) -> RelationError {
    RelationError::ParseValue {
        text: String::new(),
        wanted: what,
    }
}

fn record_agg(aggregates: &mut Vec<AggCall>, agg: &AggCall) {
    if !aggregates.iter().any(|a| a == agg) {
        aggregates.push(agg.clone());
    }
}

/// Try to parse `FUNC ( column | * )` at the cursor; rolls back if the
/// next tokens are not an aggregate call.
fn try_parse_agg(p: &mut ExprParser<'_>) -> Result<Option<AggCall>> {
    let save = p.pos();
    let func = match p.peek() {
        Some(Token::Ident(name)) => match parse_agg_func(name) {
            Ok(f) => f,
            Err(_) => return Ok(None),
        },
        _ => return Ok(None),
    };
    p.bump();
    if !p.eat_symbol("(") {
        // `avg` used as a plain column name.
        p.seek(save);
        return Ok(None);
    }
    let column = if p.eat_symbol("*") {
        None
    } else {
        Some(p.expect_ident()?)
    };
    p.expect_symbol(")")?;
    Ok(Some(AggCall::new(func, column.as_deref())))
}

/// Parse an expression that may contain aggregate calls (the HAVING
/// clause): aggregates are parsed greedily wherever an atom may start and
/// replaced with their canonical column reference.
fn parse_agg_expr(p: &mut ExprParser<'_>, aggregates: &mut Vec<AggCall>) -> Result<Expr> {
    // Strategy: textually rewrite the remaining tokens is intrusive; since
    // HAVING predicates in core SQL compare aggregate results with
    // constants or other aggregates, we parse with a small shim: try an
    // aggregate at each atom position by scanning the token stream.
    //
    // The shared ExprParser cannot call back into us, so we rewrite the
    // remaining tokens: every `FUNC ( col )` triple becomes the canonical
    // identifier, then we parse normally.
    let mut rewritten: Vec<Token> = Vec::new();
    while let Some(tok) = p.peek().cloned() {
        // Stop at clause keywords that can follow HAVING.
        if tok.is_kw("ORDER") {
            break;
        }
        if let Some(agg) = try_parse_agg(p)? {
            rewritten.push(Token::Ident(agg.output.clone()));
            record_agg(aggregates, &agg);
        } else {
            rewritten.push(tok);
            p.bump();
        }
    }
    let mut inner = ExprParser::new(&rewritten);
    let e = inner.expr()?;
    if !inner.at_end() {
        return Err(RelationError::ParseValue {
            text: format!("{:?}", inner.peek()),
            wanted: "end of HAVING predicate",
        });
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_relation::AggFunc;

    #[test]
    fn parses_simple_select() {
        let s = parse_select("SELECT model, price FROM cars WHERE year >= 2005").unwrap();
        assert_eq!(s.output_names(), vec!["model", "price"]);
        assert_eq!(s.from, vec!["cars"]);
        assert!(s.where_clause.is_some());
        assert!(!s.is_grouped());
    }

    #[test]
    fn parses_grouped_aggregate_query() {
        let s = parse_select(
            "SELECT model, AVG(price) FROM cars WHERE year >= 2005 \
             GROUP BY model HAVING AVG(price) > 14000 ORDER BY AVG(price) DESC",
        )
        .unwrap();
        assert_eq!(s.group_by, vec!["model"]);
        assert_eq!(s.aggregates.len(), 1);
        assert_eq!(s.aggregates[0].func, AggFunc::Avg);
        assert_eq!(s.having.as_ref().unwrap().to_string(), "Avg_price > 14000");
        assert_eq!(s.order_by, vec![("Avg_price".into(), Direction::Desc)]);
    }

    #[test]
    fn parses_count_star() {
        let s = parse_select("SELECT model, COUNT(*) FROM cars GROUP BY model").unwrap();
        assert_eq!(s.aggregates[0].column, None);
        assert_eq!(s.output_names(), vec!["model", "Count"]);
    }

    #[test]
    fn multiple_relations_and_order_defaults() {
        let s = parse_select(
            "SELECT model FROM cars, dealers WHERE year = 2005 GROUP BY model ORDER BY model",
        )
        .unwrap();
        assert_eq!(s.from, vec!["cars", "dealers"]);
        assert_eq!(s.order_by[0].1, Direction::Asc);
    }

    #[test]
    fn explicit_asc_and_multiple_order_keys() {
        let s = parse_select("SELECT a, b FROM t GROUP BY a, b ORDER BY a ASC, b DESC").unwrap();
        assert_eq!(
            s.order_by,
            vec![("a".into(), Direction::Asc), ("b".into(), Direction::Desc)]
        );
    }

    #[test]
    fn having_with_mixed_predicate() {
        let s = parse_select(
            "SELECT model FROM cars GROUP BY model \
             HAVING COUNT(*) > 2 AND model <> 'Jetta'",
        )
        .unwrap();
        let h = s.having.unwrap().to_string();
        assert!(h.contains("Count > 2"));
        assert!(h.contains("model <> 'Jetta'"));
    }

    #[test]
    fn same_aggregate_mentioned_twice_recorded_once() {
        let s =
            parse_select("SELECT model, AVG(price) FROM cars GROUP BY model HAVING AVG(price) > 1")
                .unwrap();
        assert_eq!(s.aggregates.len(), 1);
    }

    #[test]
    fn rejects_malformed_statements() {
        assert!(parse_select("SELEC x FROM t").is_err());
        assert!(parse_select("SELECT x t").is_err());
        assert!(parse_select("SELECT x FROM t GROUP x").is_err());
        assert!(parse_select("SELECT x FROM t ORDER x").is_err());
        assert!(parse_select("SELECT x FROM t WHERE").is_err());
        assert!(parse_select("SELECT AVG( FROM t").is_err());
        assert!(parse_select("SELECT x FROM t extra").is_err());
    }

    #[test]
    fn rejects_core_sql_violations() {
        // projection not in grouping list
        assert!(parse_select("SELECT model, year FROM cars GROUP BY model").is_err());
        // order target not in select
        assert!(parse_select("SELECT model FROM cars GROUP BY model ORDER BY year").is_err());
    }

    #[test]
    fn agg_name_as_plain_column_is_allowed() {
        // `avg` not followed by `(` parses as a column name.
        let s = parse_select("SELECT avg FROM t").unwrap();
        assert_eq!(s.output_names(), vec!["avg"]);
    }

    #[test]
    fn parses_distinct_between_in() {
        let s = parse_select(
            "SELECT DISTINCT model FROM cars WHERE price BETWEEN 14000 AND 16000              AND model IN ('Jetta', 'Civic')",
        )
        .unwrap();
        assert!(s.distinct);
        let w = s.where_clause.unwrap().to_string();
        assert!(w.contains("price >= 14000"));
        assert!(w.contains("model = 'Jetta'"));
    }

    #[test]
    fn display_round_trips() {
        let text = "SELECT model, AVG(price) FROM cars WHERE year >= 2005 \
                    GROUP BY model HAVING Avg_price > 14000 ORDER BY Avg_price DESC";
        let s1 = parse_select(text).unwrap();
        let s2 = parse_select(&s1.to_string()).unwrap();
        assert_eq!(s1.items, s2.items);
        assert_eq!(s1.group_by, s2.group_by);
        assert_eq!(s1.order_by, s2.order_by);
    }
}
