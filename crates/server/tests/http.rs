//! End-to-end tests over real TCP: boot the server on an ephemeral
//! port, drive the wire protocol with a minimal HTTP/1.1 client, and
//! check the session model — shared-snapshot reads, serialized writes,
//! refresh, and the error→status mapping of DESIGN.md §15.

use ssa_server::{serve, ServerHandle, ServerState};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

const CARS_CSV: &str = "\
Id,Model,Price,Year
1,Jetta,15500,2005
2,Golf,13990,2004
3,Jetta,16990,2006
4,Passat,22400,2006
";

/// Read one HTTP response off a (possibly keep-alive) connection.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .expect("read status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code present")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("read header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn send_request(stream: &mut TcpStream, method: &str, path: &str, body: &str, close: bool) {
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if close { "close" } else { "keep-alive" },
    )
    .expect("write request");
}

/// One-shot request on a fresh connection.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    send_request(&mut stream, method, path, body, true);
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

fn boot() -> (Arc<ServerState>, ServerHandle) {
    let state = Arc::new(ServerState::new());
    let handle = serve(Arc::clone(&state), ("127.0.0.1", 0), 4).expect("bind ephemeral port");
    (state, handle)
}

#[test]
fn sheet_lifecycle_and_error_mapping() {
    let (_state, handle) = boot();
    let addr = handle.addr();

    let (status, body) = request(addr, "GET", "/health", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\": true"), "health body: {body}");

    let (status, body) = request(addr, "PUT", "/sheets/cars", CARS_CSV);
    assert_eq!(status, 201, "create: {body}");
    assert!(body.contains("\"rows\": 4"), "create body: {body}");

    let (status, body) = request(addr, "PUT", "/sheets/cars", CARS_CSV);
    assert_eq!(status, 409, "duplicate create: {body}");

    let (status, body) = request(addr, "GET", "/sheets/cars", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"version\": 0"), "meta body: {body}");

    let (status, body) = request(addr, "GET", "/sheets/nope", "");
    assert_eq!(status, 404, "unknown sheet: {body}");

    let (status, body) = request(addr, "GET", "/sheets/cars/csv", "");
    assert_eq!(status, 200);
    assert!(body.starts_with("Id,Model,Price,Year"), "csv body: {body}");

    // Writer endpoints bump the published version each commit.
    let (status, body) = request(addr, "POST", "/sheets/cars/rows", "5,Beetle,9900,2001\n");
    assert_eq!(status, 200, "append: {body}");
    assert!(body.contains("\"version\": 1"), "append body: {body}");

    let (status, body) = request(addr, "POST", "/sheets/cars/cells", "0 Price 14999");
    assert_eq!(status, 200, "update: {body}");
    assert!(body.contains("\"version\": 2"), "update body: {body}");

    let (status, body) = request(addr, "POST", "/sheets/cars/delete", "4");
    assert_eq!(status, 200, "delete: {body}");
    assert!(body.contains("\"version\": 3"), "delete body: {body}");

    // Client mistakes map to 400/404, not 500.
    let (status, _) = request(addr, "POST", "/sheets/cars/rows", "not,enough\n");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/sheets/cars/cells", "0 NoSuchCol 1");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/no/such/route", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "PATCH", "/sheets/cars", "");
    assert_eq!(status, 405);

    handle.shutdown();
}

#[test]
fn session_flow_reads_pinned_snapshot_until_refresh() {
    let (_state, handle) = boot();
    let addr = handle.addr();
    request(addr, "PUT", "/sheets/cars", CARS_CSV);

    let (status, body) = request(addr, "POST", "/sessions?sheet=cars", "");
    assert_eq!(status, 201, "session: {body}");
    assert!(body.contains("\"session\": 1"), "session body: {body}");

    // Query-state ops work and the view reflects them.
    let (status, body) = request(
        addr,
        "POST",
        "/sessions/1/apply",
        "select Price < 20000\ngroup Model asc\nagg avg Price\n",
    );
    assert_eq!(status, 200, "apply: {body}");
    let (status, view) = request(addr, "GET", "/sessions/1/view", "");
    assert_eq!(status, 200);
    assert!(view.contains("Jetta"), "view: {view}");
    assert!(!view.contains("Passat"), "filtered out: {view}");

    let (status, explain) = request(addr, "GET", "/sessions/1/explain", "");
    assert_eq!(status, 200);
    assert!(!explain.is_empty());

    // A writer appends; the session still reads its pinned snapshot.
    request(addr, "POST", "/sheets/cars/rows", "6,Jetta,12000,2003\n");
    let (_, view_before) = request(addr, "GET", "/sessions/1/view", "");
    assert_eq!(view_before, view, "pinned snapshot must not move");

    // Refresh re-pins to the latest snapshot, keeping query state.
    let (status, body) = request(addr, "POST", "/sessions/1/refresh", "");
    assert_eq!(status, 200, "refresh: {body}");
    assert!(body.contains("\"version\": 1"), "refresh body: {body}");
    let (_, view_after) = request(addr, "GET", "/sessions/1/view", "");
    assert!(view_after.contains("12000"), "refreshed view: {view_after}");
    assert!(
        !view_after.contains("Passat"),
        "selection kept: {view_after}"
    );

    // Base edits through a session are refused with 409.
    let (status, body) = request(addr, "POST", "/sessions/1/apply", "feed 7, 'X', 1, 2000");
    assert_eq!(status, 409, "write via session: {body}");
    for cmd in [
        "setcell 0 Price 1",
        "delrows 0",
        "load cars",
        "sql SELECT * FROM cars",
    ] {
        let (status, _) = request(addr, "POST", "/sessions/1/apply", cmd);
        assert_eq!(status, 409, "write command not refused: {cmd}");
    }

    // Bad script input is the client's 400; unknown session is 404.
    let (status, _) = request(addr, "POST", "/sessions/1/apply", "select NoSuchCol > 1");
    assert_eq!(status, 404, "unknown column");
    let (status, _) = request(addr, "POST", "/sessions/1/apply", "bogus");
    assert_eq!(status, 400, "unknown command");
    let (status, _) = request(addr, "GET", "/sessions/99/view", "");
    assert_eq!(status, 404);

    let (status, _) = request(addr, "DELETE", "/sessions/1", "");
    assert_eq!(status, 200);
    let (status, _) = request(addr, "GET", "/sessions/1/view", "");
    assert_eq!(status, 404, "closed session is gone");

    handle.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_per_connection() {
    let (_state, handle) = boot();
    let addr = handle.addr();
    request(addr, "PUT", "/sheets/cars", CARS_CSV);

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    for i in 0..5 {
        send_request(&mut writer, "GET", "/sheets/cars", "", false);
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200, "request {i} on one connection");
        assert!(body.contains("\"sheet\": \"cars\""), "body {i}: {body}");
    }
    // Shutdown must complete even though this keep-alive connection is
    // still open and idle (the worker's read timeout checks the stop
    // flag); the streams are dropped only after the join.
    handle.shutdown();
    drop(writer);
    drop(reader);
}

#[test]
fn concurrent_sessions_see_consistent_views() {
    let (_state, handle) = boot();
    let addr = handle.addr();
    request(addr, "PUT", "/sheets/cars", CARS_CSV);

    // Several client threads each open a session and read repeatedly
    // while a writer streams appends; every view a session sees must be
    // one of its own pinned states, never a torn intermediate.
    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let (status, body) = request(addr, "POST", "/sessions?sheet=cars", "");
                assert_eq!(status, 201, "session: {body}");
                let id: u64 = body
                    .split("\"session\": ")
                    .nth(1)
                    .and_then(|r| r.split(',').next())
                    .and_then(|n| n.trim().parse().ok())
                    .expect("session id in body");
                let (_, baseline) = request(addr, "GET", &format!("/sessions/{id}/view"), "");
                for _ in 0..10 {
                    let (status, view) = request(addr, "GET", &format!("/sessions/{id}/view"), "");
                    assert_eq!(status, 200);
                    assert_eq!(view, baseline, "pinned view drifted");
                }
            })
        })
        .collect();
    let writer = std::thread::spawn(move || {
        for i in 0..10 {
            let (status, body) = request(
                addr,
                "POST",
                "/sheets/cars/rows",
                &format!("{},Filler,{},2000\n", 100 + i, 1000 + i),
            );
            assert_eq!(status, 200, "append {i}: {body}");
        }
    });
    for r in readers {
        r.join().expect("reader thread");
    }
    writer.join().expect("writer thread");

    let (_, body) = request(addr, "GET", "/sheets/cars", "");
    assert!(body.contains("\"rows\": 14"), "final rows: {body}");
    assert!(body.contains("\"version\": 10"), "final version: {body}");
    handle.shutdown();
}
