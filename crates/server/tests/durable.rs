//! Durability and replication over real TCP (DESIGN.md §17): the WAL-
//! backed writer behind the HTTP API, crash-free recovery via `--open`
//! semantics (`ServerState::open_durable_sheet`), two-replica sync
//! convergence through `/sheets/{name}/sync`, and bounded-backlog load
//! shedding. The fault-gated tests at the bottom pin the ack-ordering
//! contract: an op that was never acked is never in the log.

#[cfg(feature = "fault-injection")]
use spreadsheet_algebra::DurableSheet;
use spreadsheet_algebra::FsyncPolicy;
use ssa_server::{serve, serve_with, DurabilityConfig, ServerHandle, ServerState};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

const CARS_CSV: &str = "\
Id,Model,Price,Year
1,Jetta,15500,2005
2,Golf,13990,2004
3,Jetta,16990,2006
4,Passat,22400,2006
";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ssa-durable-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn durable_state(dir: &std::path::Path, replica: u64) -> Arc<ServerState> {
    Arc::new(ServerState::durable(DurabilityConfig {
        dir: dir.to_path_buf(),
        policy: FsyncPolicy::Always,
        replica,
    }))
}

/// Read one HTTP response, returning status, headers, and body.
fn read_response_full(reader: &mut BufReader<TcpStream>) -> (u16, Vec<String>, String) {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .expect("read status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code present")
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("read header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric content-length");
            }
        }
        headers.push(header.to_string());
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (
        status,
        headers,
        String::from_utf8(body).expect("utf-8 body"),
    )
}

fn send_request(stream: &mut TcpStream, method: &str, path: &str, body: &str, close: bool) {
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if close { "close" } else { "keep-alive" },
    )
    .expect("write request");
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    send_request(&mut stream, method, path, body, true);
    let mut reader = BufReader::new(stream);
    let (status, _, body) = read_response_full(&mut reader);
    (status, body)
}

fn boot(state: &Arc<ServerState>) -> ServerHandle {
    serve(Arc::clone(state), ("127.0.0.1", 0), 2).expect("bind ephemeral port")
}

#[test]
fn durable_lifecycle_ops_and_reopen_recovery() {
    let dir = tmp_dir("lifecycle");
    let fingerprint = {
        let state = durable_state(&dir, 1);
        let handle = boot(&state);
        let addr = handle.addr();

        let (status, body) = request(addr, "PUT", "/sheets/cars", CARS_CSV);
        assert_eq!(status, 201, "create: {body}");
        assert!(dir.join("cars.sheet").exists(), "snapshot file created");
        assert!(dir.join("cars.sheet.wal").exists(), "wal file created");

        // Base writes and query-state ops all flow through the log.
        let (status, body) = request(addr, "POST", "/sheets/cars/rows", "5,Beetle,9900,2001\n");
        assert_eq!(status, 200, "append: {body}");
        assert!(body.contains("\"version\": 1"), "append body: {body}");

        let (status, body) = request(
            addr,
            "POST",
            "/sheets/cars/ops",
            "select Price < 20000\ngroup Model asc\nagg avg Price 1\n",
        );
        assert_eq!(status, 200, "ops: {body}");
        assert!(body.contains("\"applied\": 3"), "ops body: {body}");
        assert!(body.contains("[1, 2]"), "events tagged replica 1: {body}");

        // A bad line rejects the whole batch: nothing is acked or logged.
        let (status, body) = request(
            addr,
            "POST",
            "/sheets/cars/ops",
            "select Price > 1\nbogus op here\n",
        );
        assert_eq!(status, 400, "bad batch: {body}");

        let (status, fp) = request(addr, "GET", "/sheets/cars/fingerprint", "");
        assert_eq!(status, 200);
        handle.shutdown();
        fp
    };

    // A fresh server recovers snapshot + WAL tail to the same state.
    let state = durable_state(&dir, 1);
    let (name, rows) = state
        .open_durable_sheet(dir.join("cars.sheet"))
        .expect("recover");
    assert_eq!(name, "cars");
    assert_eq!(rows, 5, "acked append survived the reopen");
    let handle = boot(&state);
    let (status, fp) = request(handle.addr(), "GET", "/sheets/cars/fingerprint", "");
    assert_eq!(status, 200);
    assert_eq!(fp, fingerprint, "recovered state is bitwise identical");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_truncates_wal_and_recovery_still_works() {
    let dir = tmp_dir("compact");
    let state = durable_state(&dir, 1);
    let handle = boot(&state);
    let addr = handle.addr();
    request(addr, "PUT", "/sheets/cars", CARS_CSV);
    request(addr, "POST", "/sheets/cars/ops", "select Price < 20000\n");
    request(addr, "POST", "/sheets/cars/rows", "5,Beetle,9900,2001\n");

    let (status, body) = request(addr, "POST", "/sheets/cars/compact", "");
    assert_eq!(status, 200, "compact: {body}");
    assert!(body.contains("\"compacted\": true"), "compact body: {body}");
    let (_, fp) = request(addr, "GET", "/sheets/cars/fingerprint", "");

    // After compaction a full pull is refused: the peer is behind the
    // compaction horizon and must bootstrap from the snapshot file.
    let (status, body) = request(addr, "GET", "/sheets/cars/sync", "");
    assert_eq!(status, 409, "stale pull after compaction: {body}");
    handle.shutdown();

    let state = durable_state(&dir, 1);
    state
        .open_durable_sheet(dir.join("cars.sheet"))
        .expect("recover compacted");
    let handle = boot(&state);
    let (_, fp2) = request(handle.addr(), "GET", "/sheets/cars/fingerprint", "");
    assert_eq!(fp2, fp, "compacted snapshot recovers the same state");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two durable replicas diverge, then converge bitwise through one
/// pull + two POST exchanges of `/sheets/{name}/sync` (the README
/// quick-start flow).
#[test]
fn two_replica_sync_converges_bitwise() {
    let dir_a = tmp_dir("sync-a");
    let dir_b = tmp_dir("sync-b");
    let state_a = durable_state(&dir_a, 1);
    let state_b = durable_state(&dir_b, 2);
    let handle_a = boot(&state_a);
    let handle_b = boot(&state_b);
    let (addr_a, addr_b) = (handle_a.addr(), handle_b.addr());

    // Same genesis on both; then they diverge independently.
    request(addr_a, "PUT", "/sheets/cars", CARS_CSV);
    request(addr_b, "PUT", "/sheets/cars", CARS_CSV);
    let (status, body) = request(
        addr_a,
        "POST",
        "/sheets/cars/ops",
        "select Price < 20000\nhide Year\n",
    );
    assert_eq!(status, 200, "ops on A: {body}");
    let (status, body) = request(
        addr_b,
        "POST",
        "/sheets/cars/ops",
        "group Model asc\nagg avg Price 1\n",
    );
    assert_eq!(status, 200, "ops on B: {body}");
    let (_, fp_a) = request(addr_a, "GET", "/sheets/cars/fingerprint", "");
    let (_, fp_b) = request(addr_b, "GET", "/sheets/cars/fingerprint", "");
    assert_ne!(fp_a, fp_b, "replicas diverged before sync");

    // Pull A's log, exchange it into B, feed B's reply back into A.
    let (status, pull_a) = request(addr_a, "GET", "/sheets/cars/sync", "");
    assert_eq!(status, 200, "pull A: {pull_a}");
    let (status, reply_b) = request(addr_b, "POST", "/sheets/cars/sync", &pull_a);
    assert_eq!(status, 200, "exchange into B: {reply_b}");
    let (status, reply_a) = request(addr_a, "POST", "/sheets/cars/sync", &reply_b);
    assert_eq!(status, 200, "exchange into A: {reply_a}");

    let (_, fp_a) = request(addr_a, "GET", "/sheets/cars/fingerprint", "");
    let (_, fp_b) = request(addr_b, "GET", "/sheets/cars/fingerprint", "");
    assert_eq!(fp_a, fp_b, "replicas converged bitwise after sync");

    // Sync is idempotent: replaying the same payload changes nothing.
    let (status, _) = request(addr_b, "POST", "/sheets/cars/sync", &pull_a);
    assert_eq!(status, 200, "duplicate delivery");
    let (_, fp_b2) = request(addr_b, "GET", "/sheets/cars/fingerprint", "");
    assert_eq!(fp_b2, fp_b, "duplicate delivery is a no-op");

    handle_a.shutdown();
    handle_b.shutdown();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Saturate a pool-of-one, backlog-of-one server: the first connection
/// parks on the only worker, the second fills the accept queue, and the
/// third is shed inline with 503 + Retry-After instead of queueing
/// without bound.
#[test]
fn saturated_accept_queue_sheds_with_503_retry_after() {
    let state = Arc::new(ServerState::new());
    let handle =
        serve_with(Arc::clone(&state), ("127.0.0.1", 0), 1, 1).expect("bind ephemeral port");
    let addr = handle.addr();

    // Pin the single worker to a keep-alive connection: after this
    // response the worker stays in the connection's read loop.
    let busy = TcpStream::connect(addr).expect("connect busy");
    let mut busy_writer = busy.try_clone().expect("clone stream");
    let mut busy_reader = BufReader::new(busy);
    send_request(&mut busy_writer, "GET", "/health", "", false);
    let (status, _, _) = read_response_full(&mut busy_reader);
    assert_eq!(status, 200, "worker pinned");

    // Fill the single backlog slot (never read — it just sits queued).
    let queued = TcpStream::connect(addr).expect("connect queued");

    // The next connection must be shed on the accept thread. Connects
    // race the accept loop's try_send, so allow a few attempts.
    let mut shed = None;
    for _ in 0..50 {
        let stream = TcpStream::connect(addr).expect("connect shed");
        let mut reader = BufReader::new(stream);
        let (status, headers, body) = read_response_full(&mut reader);
        if status == 503 {
            shed = Some((headers, body));
            break;
        }
        // Not shed: this connection consumed the freed backlog slot.
        // It is never served (worker still pinned), so drop it and let
        // the next connect find the queue full again.
    }
    let (headers, body) = shed.expect("a connection was shed with 503");
    assert!(body.contains("saturated"), "shed body: {body}");
    assert!(
        headers
            .iter()
            .any(|h| h.to_ascii_lowercase().starts_with("retry-after:")),
        "Retry-After header present: {headers:?}"
    );

    drop(queued);
    handle.shutdown();
    drop(busy_writer);
    drop(busy_reader);
}

/// §17 ack-ordering pin (fault-gated): a crash between the WAL append
/// and the snapshot publish must not ack — and the un-acked op must not
/// be replayed into recovered state.
#[cfg(feature = "fault-injection")]
#[test]
fn publish_failure_never_acks_and_leaves_no_trace() {
    use ssa_relation::fault;
    let dir = tmp_dir("publish-fault");
    let state = durable_state(&dir, 1);
    state
        .create_sheet(ssa_relation::csv::parse_csv("cars", CARS_CSV).expect("csv"))
        .expect("create");
    let host = state.host("cars").expect("host");
    let before = host.fingerprint();
    let version_before = host.snapshot().version;

    let _guard = fault::lock();
    fault::reset();
    fault::arm("server.publish", 1, fault::Behavior::Error);
    let err = host
        .append_rows(vec![ssa_relation::csv::parse_csv(
            "x",
            "Id,Model,Price,Year\n9,Ghost,1,1999\n",
        )
        .expect("csv")
        .rows()[0]
            .clone()])
        .expect_err("publish failure must not ack");
    fault::reset();
    assert!(err.to_string().contains("server.publish"), "{err}");

    // No trace anywhere: writer state, published snapshot, or log.
    assert_eq!(host.fingerprint(), before, "writer rolled back");
    assert_eq!(host.snapshot().version, version_before, "snapshot kept");
    let recovered =
        DurableSheet::open(dir.join("cars.sheet"), 1, FsyncPolicy::Always).expect("reopen");
    assert!(
        recovered.replica().log().is_empty(),
        "un-acked op is not in the log"
    );
    assert_eq!(recovered.replica().sheet().base_arc().len(), 4);

    // The host is healthy afterwards; the retried op acks and persists.
    let (_, version) = host
        .append_rows(vec![ssa_relation::csv::parse_csv(
            "x",
            "Id,Model,Price,Year\n9,Ghost,1,1999\n",
        )
        .expect("csv")
        .rows()[0]
            .clone()])
        .expect("retry");
    assert_eq!(version, version_before + 1);
    drop(host);
    drop(state);
    let recovered =
        DurableSheet::open(dir.join("cars.sheet"), 1, FsyncPolicy::Always).expect("reopen");
    assert_eq!(recovered.replica().log().len(), 1, "acked op is in the log");
    let _ = std::fs::remove_dir_all(&dir);
}

/// §17 ack-ordering pin (fault-gated): a failed WAL append surfaces as
/// a client error with the in-memory apply rolled back — version and
/// snapshot unchanged.
#[cfg(feature = "fault-injection")]
#[test]
fn wal_append_failure_rejects_without_applying() {
    use spreadsheet_algebra::SheetOp;
    use ssa_relation::fault;
    let dir = tmp_dir("append-fault");
    let state = durable_state(&dir, 1);
    state
        .create_sheet(ssa_relation::csv::parse_csv("cars", CARS_CSV).expect("csv"))
        .expect("create");
    let host = state.host("cars").expect("host");
    let before = host.fingerprint();

    let _guard = fault::lock();
    fault::reset();
    fault::arm("wal.append", 1, fault::Behavior::Error);
    let err = host
        .apply_op(SheetOp::parse_command("select Price < 20000").expect("parse"))
        .expect_err("append failure must reject");
    fault::reset();
    assert!(err.to_string().contains("wal.append"), "{err}");
    assert_eq!(host.fingerprint(), before, "apply rolled back");
    assert_eq!(host.snapshot().version, 0, "snapshot untouched");

    host.apply_op(SheetOp::parse_command("select Price < 20000").expect("parse"))
        .expect("retry succeeds");
    let _ = std::fs::remove_dir_all(&dir);
}
