//! Hard-kill recovery: spawn the real `ssa-server` binary, kill it —
//! SIGKILL mid-workload, or `std::process::abort` at an armed WAL
//! failpoint — restart it with `--open`, and assert the §17 durability
//! contract: **every op the client saw acked survives recovery** (with
//! `--fsync always`; recovery may additionally contain ops that were
//! logged but never acked, which is allowed).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};

const CARS_CSV: &str = "\
Id,Model,Price,Year
1,Jetta,15500,2005
2,Golf,13990,2004
";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ssa-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// Spawn the server binary on an ephemeral port and scrape the bound
/// address off its stdout. `faults` goes into `SSA_FAULTS` (armed only
/// when the binary was built with fault-injection).
fn spawn_server(args: &[&str], faults: Option<&str>) -> (Child, SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ssa-server"));
    cmd.args(["--port", "0", "--pool", "2"])
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    match faults {
        Some(spec) => cmd.env("SSA_FAULTS", spec),
        None => cmd.env_remove("SSA_FAULTS"),
    };
    let mut child = cmd.spawn().expect("spawn ssa-server");
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read child stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.trim().parse().expect("parse bound address");
        }
    };
    (child, addr)
}

/// One-shot request that tolerates a dying server: any I/O error (reset,
/// refused, torn response) is `Err`, which the workload treats as
/// "never acked".
fn try_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    try_request(addr, method, path, body).expect("request")
}

/// Restart from the snapshot + WAL in `dir` and assert every acked
/// marker row is present in the recovered CSV.
fn assert_recovered(dir: &Path, acked: &[u32]) {
    let open = dir.join("cars.sheet");
    let open = open.to_str().expect("utf-8 path");
    let dir_arg = dir.to_str().expect("utf-8 path");
    let (mut child, addr) = spawn_server(
        &["--durable", dir_arg, "--fsync", "always", "--open", open],
        None,
    );
    let (status, csv) = request(addr, "GET", "/sheets/cars/csv", "");
    assert_eq!(status, 200, "recovered csv: {csv}");
    for id in acked {
        assert!(
            csv.contains(&format!("{id},Marker{id},")),
            "acked row {id} lost after recovery (have {} acked)",
            acked.len()
        );
    }
    child.kill().ok();
    child.wait().ok();
}

/// Drive appends against a server until it dies (or `max` acks), and
/// return the ids the server actually acked with a 200.
fn append_until_dead(addr: SocketAddr, start: u32, max: u32) -> Vec<u32> {
    let mut acked = Vec::new();
    for i in 0..max {
        let id = start + i;
        let row = format!("{id},Marker{id},{},2000\n", 1000 + id);
        match try_request(addr, "POST", "/sheets/cars/rows", &row) {
            Ok((200, _)) => acked.push(id),
            Ok(_) | Err(_) => break,
        }
    }
    acked
}

#[test]
fn sigkill_mid_workload_loses_no_acked_op() {
    // Deterministic schedule variety without wall-clock dependence: a
    // seeded jitter decides how long the writer runs before the kill.
    let mut rng = ssa_relation::rng::Rng::seed_from_u64(0xC0FFEE);
    for round in 0..3u32 {
        let dir = tmp_dir(&format!("sigkill-{round}"));
        let dir_arg = dir.to_str().expect("utf-8 path").to_string();
        let (mut child, addr) = spawn_server(&["--durable", &dir_arg, "--fsync", "always"], None);
        let (status, body) = request(addr, "PUT", "/sheets/cars", CARS_CSV);
        assert_eq!(status, 201, "create: {body}");

        // Writer streams appends; the main thread SIGKILLs the server at
        // a random point while requests are in flight.
        let acked = Arc::new(Mutex::new(Vec::new()));
        let acked_writer = Arc::clone(&acked);
        let writer = std::thread::spawn(move || {
            let ids = append_until_dead(addr, 100, 10_000);
            acked_writer.lock().expect("acked lock").extend(ids);
        });
        std::thread::sleep(std::time::Duration::from_millis(rng.gen_range(5..120)));
        child.kill().expect("SIGKILL server");
        child.wait().expect("reap server");
        writer.join().expect("writer thread");

        let acked = acked.lock().expect("acked lock").clone();
        assert_recovered(&dir, &acked);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash-at-every-failpoint: abort the process *at* each WAL pipeline
/// site via `SSA_FAULTS` and check that recovery keeps every acked op.
/// Only meaningful when the binary has the failpoints compiled in.
#[cfg(feature = "fault-injection")]
#[test]
fn abort_at_each_wal_failpoint_loses_no_acked_op() {
    for (site, nth) in [
        ("wal.append", 4),
        ("wal.fsync", 4),
        ("server.publish", 4),
        ("wal.append", 1),
        ("wal.fsync", 7),
    ] {
        let dir = tmp_dir(&format!("abort-{}-{nth}", site.replace('.', "-")));
        let dir_arg = dir.to_str().expect("utf-8 path").to_string();
        let spec = format!("{site}={nth}:abort");
        let (mut child, addr) =
            spawn_server(&["--durable", &dir_arg, "--fsync", "always"], Some(&spec));
        let (status, body) = request(addr, "PUT", "/sheets/cars", CARS_CSV);
        assert_eq!(status, 201, "create under {spec}: {body}");

        // Run appends into the armed abort: the request that hits the
        // site never acks; everything acked before it must survive.
        let acked = append_until_dead(addr, 200, 50);
        assert!(
            acked.len() < 50,
            "failpoint {spec} never fired (all 50 appends acked)"
        );
        child.wait().expect("reap aborted server");

        assert_recovered(&dir, &acked);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A replay fault on restart is a typed startup failure (nonzero exit),
/// not a silent half-recovery — and a clean retry still recovers.
#[cfg(feature = "fault-injection")]
#[test]
fn replay_fault_fails_startup_then_clean_restart_recovers() {
    let dir = tmp_dir("replay-fault");
    let dir_arg = dir.to_str().expect("utf-8 path").to_string();
    let (mut child, addr) = spawn_server(&["--durable", &dir_arg, "--fsync", "always"], None);
    request(addr, "PUT", "/sheets/cars", CARS_CSV);
    let acked = append_until_dead(addr, 300, 5);
    assert_eq!(acked.len(), 5, "workload acked");
    child.kill().expect("kill server");
    child.wait().expect("reap server");

    // Restart with the replay failpoint armed: `--open` must fail the
    // whole process rather than serve a partially recovered sheet.
    let open = dir.join("cars.sheet");
    let open_arg = open.to_str().expect("utf-8 path");
    let status = Command::new(env!("CARGO_BIN_EXE_ssa-server"))
        .args(["--port", "0", "--durable", &dir_arg, "--fsync", "always"])
        .args(["--open", open_arg])
        .env("SSA_FAULTS", "wal.replay=1:error")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run ssa-server with replay fault");
    assert!(!status.success(), "replay fault must fail startup");

    assert_recovered(&dir, &acked);
    let _ = std::fs::remove_dir_all(&dir);
}
