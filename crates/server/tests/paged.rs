//! Paged sheet hosting: a binary sheet file registers with only its
//! header/footer read, serves listings without touching row data, and
//! materializes exactly once — on the first session that needs it.

use spreadsheet_algebra::{QueryState, StoredSheet};
use ssa_relation::{Relation, Schema, Tuple, Value, ValueType};
use ssa_server::ServerState;
use std::path::PathBuf;

fn sample_sheet(name: &str, rows: u32) -> StoredSheet {
    let relation = Relation::with_rows(
        name,
        Schema::of(&[
            ("Id", ValueType::Int),
            ("Model", ValueType::Str),
            ("Price", ValueType::Int),
        ]),
        (0..rows)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i64::from(i)),
                    Value::from(format!("model-{}", i % 7)),
                    Value::Int(10_000 + i64::from(i) * 13),
                ])
            })
            .collect(),
    )
    .expect("sample relation");
    StoredSheet {
        name: name.to_string(),
        relation,
        state: QueryState::new(),
    }
}

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ssa_paged_{tag}_{}.sheet", std::process::id()))
}

#[test]
fn paged_sheet_defers_materialization_until_first_session() {
    let path = temp_file("defer");
    sample_sheet("cars_paged", 500)
        .save_path(&path)
        .expect("save binary sheet");

    let state = ServerState::new();
    let (name, rows) = state.open_sheet_file(&path).expect("register paged sheet");
    assert_eq!(name, "cars_paged");
    assert_eq!(rows, 500);

    // Registered and listable, but no row data in memory yet.
    assert_eq!(state.sheet_names(), vec!["cars_paged".to_string()]);
    assert!(state.sheet_exists("cars_paged"));
    assert!(!state.sheet_loaded("cars_paged").expect("slot exists"));
    assert_eq!(state.sheet_rows("cars_paged").expect("slot exists"), 500);

    // First session forces materialization; the snapshot serves the data.
    let (session, version) = state.create_session("cars_paged").expect("open session");
    assert_eq!(version, 0);
    assert!(state.sheet_loaded("cars_paged").expect("slot exists"));
    let snapshot = state.host("cars_paged").expect("live host").snapshot();
    assert_eq!(snapshot.base.len(), 500);
    assert_eq!(
        snapshot.base.value_at(3, "Model").expect("cell"),
        &Value::str("model-3")
    );
    assert!(state.drop_session(session));

    // Writes work after lazy open: the host behaves like an eager one.
    let (appended, version) = state
        .host("cars_paged")
        .expect("live host")
        .append_rows(vec![Tuple::new(vec![
            Value::Int(500),
            Value::str("model-new"),
            Value::Int(9_999),
        ])])
        .expect("append");
    assert_eq!(appended, 1);
    assert!(version > 0);

    std::fs::remove_file(&path).ok();
}

#[test]
fn duplicate_and_missing_paged_registrations_error() {
    let path = temp_file("dup");
    sample_sheet("dup_sheet", 10)
        .save_path(&path)
        .expect("save binary sheet");

    let state = ServerState::new();
    state.open_sheet_file(&path).expect("first registration");
    let err = state.open_sheet_file(&path).expect_err("duplicate name");
    assert!(err.to_string().contains("already exists"), "{err}");

    assert!(state.open_sheet_file("/nonexistent/nope.sheet").is_err());
    std::fs::remove_file(&path).ok();
}
