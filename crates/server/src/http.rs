//! Hand-rolled HTTP/1.1 over `std::net` (the workspace is offline — no
//! hyper, no tokio). Just enough of RFC 7230 for the wire protocol in
//! DESIGN.md §15: request line, headers, `Content-Length` bodies,
//! keep-alive, and a bounded thread-per-connection pool fed by an
//! accept loop.
//!
//! The accept loop carries the `server.accept` failpoint: an injected
//! accept failure drops that one connection attempt and keeps serving —
//! robustness tests prove a transient accept error never kills the
//! server.
//!
//! Load shedding: accepted connections queue in a *bounded* channel
//! between the accept loop and the worker pool. When every worker is
//! busy and the backlog is full, the accept loop answers the overflow
//! connection inline with `503 Service Unavailable` + `Retry-After` and
//! closes it — bounded memory under overload, and clients get an
//! explicit retry signal instead of an unbounded queue or a silent
//! reset (`scripts/server_smoke.sh` retries on it with jittered
//! backoff).

use crate::api;
use crate::host::ServerState;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Largest request body accepted (64 MiB): bounds memory per connection.
const MAX_BODY: usize = 64 << 20;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string, e.g. `/sessions/3/view`.
    pub path: String,
    /// Decoded query parameters.
    pub query: HashMap<String, String>,
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// One response; `write_to` renders the status line + headers + body.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
    /// Seconds for a `Retry-After` header (load-shedding 503s).
    pub retry_after: Option<u32>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            retry_after: None,
        }
    }

    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
            retry_after: None,
        }
    }

    /// The load-shedding response: the worker pool and its bounded
    /// backlog are saturated, come back after `retry_after` seconds.
    pub fn unavailable(retry_after: u32) -> Response {
        let mut resp = Response::json(
            503,
            format!(
                "{{\"error\": \"server saturated, retry after {retry_after}s\", \"status\": 503}}\n"
            ),
        );
        resp.retry_after = Some(retry_after);
        resp
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    fn write_to(&self, out: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        if let Some(secs) = self.retry_after {
            write!(out, "Retry-After: {secs}\r\n")?;
        }
        out.write_all(b"\r\n")?;
        out.write_all(self.body.as_bytes())
    }
}

/// Percent-decode a query component (enough for `%20`/`+` style input).
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> HashMap<String, String> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Read one request off the connection. `Ok(None)` means the client
/// closed the connection cleanly between requests (keep-alive end).
fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed request line: {line:?}"),
            ))
        }
    };
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad Content-Length: {value:?}"),
                    )
                })?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target, HashMap::new()),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        keep_alive,
    }))
}

/// Serve one connection until the client closes it, asks to, or the
/// server is stopping. A short read timeout keeps idle keep-alive
/// connections from wedging shutdown: between requests the worker wakes
/// every 200 ms to check the stop flag.
fn serve_connection(stream: TcpStream, state: &ServerState, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(writer);
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                let keep = req.keep_alive;
                let resp = api::route(state, &req);
                if resp
                    .write_to(&mut writer, keep)
                    .and_then(|()| writer.flush())
                    .is_err()
                    || !keep
                {
                    return;
                }
            }
            Ok(None) => return,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle between keep-alive requests: wait more unless the
                // server is shutting down.
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) => {
                // Best-effort 400 for a malformed request, then close.
                let resp = Response::text(400, format!("bad request: {e}\n"));
                let _ = resp.write_to(&mut writer, false);
                let _ = writer.flush();
                return;
            }
        }
    }
}

/// A running server: accept loop + bounded worker pool, stoppable.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the pool, and join all threads. In-flight
    /// requests finish; queued connections are served before exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The `server.accept` failpoint: a transient fault on one accepted
/// connection. Returns true when the connection should be dropped.
fn accept_fault() -> bool {
    #[cfg(feature = "fault-injection")]
    {
        ssa_relation::fault::check("server.accept").is_err()
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        false
    }
}

/// Seconds a shed client is told to wait before retrying.
const SHED_RETRY_AFTER_SECS: u32 = 1;

/// Bind and serve `state` on `addr` with `pool` worker threads and a
/// default accept backlog of `pool * 16 + 16` queued connections.
/// Returns once the listener is live; use the handle to stop.
pub fn serve(
    state: Arc<ServerState>,
    addr: impl ToSocketAddrs,
    pool: usize,
) -> std::io::Result<ServerHandle> {
    let backlog = pool.max(1) * 16 + 16;
    serve_with(state, addr, pool, backlog)
}

/// [`serve`] with an explicit accept-backlog bound: at most `backlog`
/// accepted connections wait for a worker; the overflow connection is
/// answered inline with a 503 + `Retry-After` and closed.
pub fn serve_with(
    state: Arc<ServerState>,
    addr: impl ToSocketAddrs,
    pool: usize,
    backlog: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(backlog.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<JoinHandle<()>> = (0..pool.max(1))
        .map(|i| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("ssa-server-worker-{i}"))
                .spawn(move || loop {
                    let next = {
                        let guard = match rx.lock() {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        guard.recv()
                    };
                    match next {
                        Ok(stream) => serve_connection(stream, &state, &stop),
                        Err(_) => return, // sender dropped: shutdown
                    }
                })
                .expect("spawn worker thread")
        })
        .collect();

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("ssa-server-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                if accept_fault() {
                    continue; // transient fault: drop this connection only
                }
                match stream {
                    Ok(s) => match tx.try_send(s) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(s)) => {
                            // Pool + backlog saturated: shed this
                            // connection with an explicit retry signal
                            // instead of queueing without bound.
                            let mut s = s;
                            let _ = Response::unavailable(SHED_RETRY_AFTER_SECS)
                                .write_to(&mut s, false);
                            let _ = s.flush();
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => break,
                    },
                    Err(_) => continue, // transient OS-level accept error
                }
            }
            // Dropping `tx` here lets the workers drain and exit.
        })
        .expect("spawn accept thread");

    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        workers,
    })
}
