//! The `ssa-server` binary: host spreadsheets over HTTP.
//!
//! ```text
//! ssa-server [--port N] [--pool N] [--backlog N]
//!            [--preload tiny|scale:F] [--open FILE]...
//!            [--durable DIR] [--fsync always|batch:MS|never] [--replica N]
//! ```
//!
//! `--preload` hosts the deterministic TPC-H tables (seed 42) so the
//! server starts with data to query; new sheets can always be created
//! at runtime with `PUT /sheets/{name}` and a CSV body. `--open`
//! (repeatable) registers binary sheet files: on a durable server it
//! recovers snapshot + WAL tail (DESIGN.md §17); otherwise it uses the
//! paged store, reading only header/footer and loading rows lazily.
//!
//! `--durable DIR` makes every hosted sheet crash-safe: commits append
//! to a per-sheet write-ahead log under DIR before they are acked, with
//! the fsync policy from `--fsync` (default `batch:25`). `--replica`
//! sets the id stamped on committed events — give each server of a
//! replicated group a distinct one. `--backlog` bounds the accept
//! queue; overflow connections get 503 + Retry-After.

use ssa_server::{DurabilityConfig, ServerState};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ssa-server [--port N] [--pool N] [--backlog N] \
         [--preload tiny|scale:F] [--open FILE]... \
         [--durable DIR] [--fsync always|batch:MS|never] [--replica N]"
    );
    ExitCode::FAILURE
}

fn preload(state: &ServerState, spec: &str) -> Result<(), String> {
    let config = if spec == "tiny" {
        ssa_tpch::GenConfig::tiny()
    } else if let Some(f) = spec.strip_prefix("scale:") {
        let factor: f64 = f
            .parse()
            .map_err(|_| format!("bad scale factor {f:?} in --preload"))?;
        ssa_tpch::GenConfig::scale(factor)
    } else {
        return Err(format!("bad --preload spec {spec:?} (tiny|scale:F)"));
    };
    let data = ssa_tpch::generate(&config, 42);
    let catalog = data.catalog();
    let mut names: Vec<String> = catalog.names().iter().map(|n| n.to_string()).collect();
    names.sort();
    for name in names {
        let relation = catalog
            .get(&name)
            .map_err(|e| format!("preload {name}: {e}"))?
            .clone();
        let rows = relation.len();
        state
            .create_sheet(relation)
            .map_err(|e| format!("preload {name}: {e}"))?;
        eprintln!("preloaded {name} ({rows} rows)");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut port = 7878u16;
    let mut pool = 4usize;
    let mut backlog: Option<usize> = None;
    let mut preload_spec: Option<String> = None;
    let mut open_paths: Vec<String> = Vec::new();
    let mut durable_dir: Option<String> = None;
    let mut fsync_spec = "batch:25".to_string();
    let mut replica = 0u64;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let value = |argv: &mut dyn Iterator<Item = String>| {
            argv.next().ok_or_else(|| format!("{arg} needs a value"))
        };
        let parsed = match arg.as_str() {
            "--port" => value(&mut argv).and_then(|v| {
                v.parse::<u16>()
                    .map(|p| port = p)
                    .map_err(|_| format!("bad port {v:?}"))
            }),
            "--pool" => value(&mut argv).and_then(|v| {
                v.parse::<usize>()
                    .map(|p| pool = p.max(1))
                    .map_err(|_| format!("bad pool size {v:?}"))
            }),
            "--backlog" => value(&mut argv).and_then(|v| {
                v.parse::<usize>()
                    .map(|b| backlog = Some(b.max(1)))
                    .map_err(|_| format!("bad backlog size {v:?}"))
            }),
            "--preload" => value(&mut argv).map(|v| preload_spec = Some(v)),
            "--open" => value(&mut argv).map(|v| open_paths.push(v)),
            "--durable" => value(&mut argv).map(|v| durable_dir = Some(v)),
            "--fsync" => value(&mut argv).map(|v| fsync_spec = v),
            "--replica" => value(&mut argv).and_then(|v| {
                v.parse::<u64>()
                    .map(|r| replica = r)
                    .map_err(|_| format!("bad replica id {v:?}"))
            }),
            "--help" | "-h" => return usage(),
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("error: {e}");
            return usage();
        }
    }

    // Crash-schedule tests arm failpoints in the child through the
    // environment; a release build compiles this away entirely.
    #[cfg(feature = "fault-injection")]
    {
        let armed = ssa_relation::fault::arm_from_env();
        if armed > 0 {
            eprintln!("armed {armed} failpoint(s) from SSA_FAULTS");
        }
    }

    let policy = match spreadsheet_algebra::FsyncPolicy::parse(&fsync_spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };

    let state = match &durable_dir {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create durability dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
            Arc::new(ServerState::durable(DurabilityConfig {
                dir: dir.into(),
                policy,
                replica,
            }))
        }
        None => Arc::new(ServerState::new()),
    };

    if let Some(spec) = preload_spec {
        if let Err(e) = preload(&state, &spec) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    for path in open_paths {
        let opened = if durable_dir.is_some() {
            state.open_durable_sheet(&path)
        } else {
            state.open_sheet_file(&path)
        };
        match opened {
            Ok((name, rows)) => eprintln!("opened {name} ({rows} rows) from {path}"),
            Err(e) => {
                eprintln!("error: open {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Under `--fsync batch:MS` a background sweep flushes dirty WALs on
    // the batch interval, bounding the window in which an acked-but-
    // unsynced op can be lost to a power cut (a process crash alone
    // loses nothing: the OS has the appended bytes).
    if durable_dir.is_some() {
        if let spreadsheet_algebra::FsyncPolicy::Batch(interval) = policy {
            let flusher_state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("ssa-server-wal-flush".into())
                .spawn(move || loop {
                    std::thread::sleep(interval);
                    flusher_state.flush_wals();
                })
                .expect("spawn wal flusher thread");
        }
    }

    let backlog = backlog.unwrap_or(pool * 16 + 16);
    let handle =
        match ssa_server::serve_with(Arc::clone(&state), ("127.0.0.1", port), pool, backlog) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: cannot bind 127.0.0.1:{port}: {e}");
                return ExitCode::FAILURE;
            }
        };
    // The smoke script scrapes this exact line for the bound address.
    println!("listening on {}", handle.addr());

    // Serve until killed: the accept loop owns the process lifetime.
    loop {
        std::thread::park();
    }
}
