//! The `ssa-server` binary: host spreadsheets over HTTP.
//!
//! ```text
//! ssa-server [--port N] [--pool N] [--preload tiny|scale:F] [--open FILE]...
//! ```
//!
//! `--preload` hosts the deterministic TPC-H tables (seed 42) so the
//! server starts with data to query; new sheets can always be created
//! at runtime with `PUT /sheets/{name}` and a CSV body. `--open`
//! (repeatable) registers binary sheet files from the paged store:
//! startup reads only each file's header and footer, and row data loads
//! lazily when a session first touches the sheet.

use ssa_server::ServerState;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!("usage: ssa-server [--port N] [--pool N] [--preload tiny|scale:F] [--open FILE]...");
    ExitCode::FAILURE
}

fn preload(state: &ServerState, spec: &str) -> Result<(), String> {
    let config = if spec == "tiny" {
        ssa_tpch::GenConfig::tiny()
    } else if let Some(f) = spec.strip_prefix("scale:") {
        let factor: f64 = f
            .parse()
            .map_err(|_| format!("bad scale factor {f:?} in --preload"))?;
        ssa_tpch::GenConfig::scale(factor)
    } else {
        return Err(format!("bad --preload spec {spec:?} (tiny|scale:F)"));
    };
    let data = ssa_tpch::generate(&config, 42);
    let catalog = data.catalog();
    let mut names: Vec<String> = catalog.names().iter().map(|n| n.to_string()).collect();
    names.sort();
    for name in names {
        let relation = catalog
            .get(&name)
            .map_err(|e| format!("preload {name}: {e}"))?
            .clone();
        let rows = relation.len();
        state
            .create_sheet(relation)
            .map_err(|e| format!("preload {name}: {e}"))?;
        eprintln!("preloaded {name} ({rows} rows)");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut port = 7878u16;
    let mut pool = 4usize;
    let mut preload_spec: Option<String> = None;
    let mut open_paths: Vec<String> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let value = |argv: &mut dyn Iterator<Item = String>| {
            argv.next().ok_or_else(|| format!("{arg} needs a value"))
        };
        let parsed = match arg.as_str() {
            "--port" => value(&mut argv).and_then(|v| {
                v.parse::<u16>()
                    .map(|p| port = p)
                    .map_err(|_| format!("bad port {v:?}"))
            }),
            "--pool" => value(&mut argv).and_then(|v| {
                v.parse::<usize>()
                    .map(|p| pool = p.max(1))
                    .map_err(|_| format!("bad pool size {v:?}"))
            }),
            "--preload" => value(&mut argv).map(|v| preload_spec = Some(v)),
            "--open" => value(&mut argv).map(|v| open_paths.push(v)),
            "--help" | "-h" => return usage(),
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("error: {e}");
            return usage();
        }
    }

    let state = Arc::new(ServerState::new());
    if let Some(spec) = preload_spec {
        if let Err(e) = preload(&state, &spec) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    for path in open_paths {
        match state.open_sheet_file(&path) {
            Ok((name, rows)) => eprintln!("opened {name} ({rows} rows, paged) from {path}"),
            Err(e) => {
                eprintln!("error: open {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let handle = match ssa_server::serve(Arc::clone(&state), ("127.0.0.1", port), pool) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot bind 127.0.0.1:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The smoke script scrapes this exact line for the bound address.
    println!("listening on {}", handle.addr());

    // Serve until killed: the accept loop owns the process lifetime.
    loop {
        std::thread::park();
    }
}
