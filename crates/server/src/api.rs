//! Request routing and the error→status mapping (DESIGN.md §15).
//!
//! Endpoints:
//!
//! | Method | Path                    | Body               | Effect |
//! |--------|-------------------------|--------------------|--------|
//! | GET    | /health                 | —                  | liveness + counts |
//! | GET    | /sheets                 | —                  | hosted sheet names |
//! | PUT    | /sheets/{name}          | CSV (with header)  | host a new sheet |
//! | GET    | /sheets/{name}          | —                  | snapshot metadata |
//! | GET    | /sheets/{name}/csv      | —                  | snapshot as CSV |
//! | POST   | /sheets/{name}/rows     | CSV rows (no hdr)  | append via writer |
//! | POST   | /sheets/{name}/delete   | row ids            | delete via writer |
//! | POST   | /sheets/{name}/cells    | `row col literal`  | update via writer |
//! | POST   | /sheets/{name}/ops      | op lines           | replicated query-state ops |
//! | GET    | /sheets/{name}/sync     | —                  | full replication payload |
//! | POST   | /sheets/{name}/sync     | sync payload       | merge peer log, reply with ours |
//! | POST   | /sheets/{name}/compact  | —                  | snapshot + truncate the WAL |
//! | GET    | /sheets/{name}/fingerprint | —               | canonical (base, state) rendering |
//! | POST   | /sessions?sheet=name    | —                  | open a session |
//! | GET    | /sessions/{id}/view     | —                  | rendered view |
//! | GET    | /sessions/{id}/explain  | —                  | evaluation plan |
//! | POST   | /sessions/{id}/apply    | script lines       | run query-state ops |
//! | POST   | /sessions/{id}/refresh  | —                  | re-pin to latest snapshot |
//! | DELETE | /sessions/{id}          | —                  | close the session |
//!
//! Write commands (`feed`, `setcell`, …) inside `/apply` get 409: a
//! session reads a shared immutable snapshot, so base edits must go
//! through the sheet's serialized writer endpoints.
//!
//! `/sheets/{name}/ops` is the replicated counterpart of `/apply`: each
//! line becomes a tagged [`SheetOp`] event committed through the WAL on
//! the *shared* writer sheet (DESIGN.md §17), so it survives crashes
//! and flows to peers over `/sync`.

use crate::host::{ServerState, SessionSlot};
use crate::http::{Request, Response};
use crate::wire;
use sheetmusiq::is_write_command;
use spreadsheet_algebra::{Result, SheetError, SheetOp};
use ssa_relation::{csv, RelationError};
use std::sync::{Arc, Mutex, MutexGuard};

/// Map a sheet-level error onto an HTTP status: unknown names are 404,
/// injected faults are 503 (retryable), internal invariants and a
/// corrupt mid-log WAL frame are 500, a peer behind the compaction
/// frontier is 409 (it must re-bootstrap from the snapshot), and
/// everything else — bad literals, incompatible schemas, operations
/// the algebra rejects — is the client's 400.
pub fn status_for(err: &SheetError) -> u16 {
    match err {
        SheetError::UnknownSheet { .. }
        | SheetError::UnknownColumn { .. }
        | SheetError::UnknownSelection { .. }
        | SheetError::Relation(RelationError::UnknownRelation { .. })
        | SheetError::Relation(RelationError::RowOutOfRange { .. }) => 404,
        SheetError::Relation(RelationError::FaultInjected { .. }) => 503,
        SheetError::BehindCompaction { .. } => 409,
        SheetError::Relation(RelationError::WorkerPanicked { .. })
        | SheetError::Internal { .. }
        | SheetError::TornLog { .. }
        | SheetError::AuditDivergence { .. } => 500,
        _ => 400,
    }
}

fn error_response(err: &SheetError) -> Response {
    let status = status_for(err);
    Response::json(
        status,
        format!(
            "{{\"error\": {}, \"status\": {status}}}\n",
            wire::json_str(&err.to_string())
        ),
    )
}

fn not_found(what: &str) -> Response {
    Response::json(
        404,
        format!("{{\"error\": {}, \"status\": 404}}\n", wire::json_str(what)),
    )
}

fn lock_slot(slot: &Mutex<SessionSlot>) -> MutexGuard<'_, SessionSlot> {
    match slot.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn body_text(req: &Request) -> std::result::Result<&str, Response> {
    std::str::from_utf8(&req.body).map_err(|_| {
        Response::json(
            400,
            "{\"error\": \"body is not valid UTF-8\", \"status\": 400}\n".to_string(),
        )
    })
}

/// Run `f` and turn its sheet-level error into an HTTP error response.
fn respond(f: impl FnOnce() -> Result<Response>) -> Response {
    f().unwrap_or_else(|e| error_response(&e))
}

fn health(state: &ServerState) -> Response {
    Response::json(
        200,
        format!(
            "{{\"ok\": true, \"sheets\": {}, \"sessions\": {}}}\n",
            state.sheet_names().len(),
            state.session_count()
        ),
    )
}

fn list_sheets(state: &ServerState) -> Response {
    let names: Vec<String> = state
        .sheet_names()
        .iter()
        .map(|n| wire::json_str(n))
        .collect();
    Response::json(200, format!("{{\"sheets\": [{}]}}\n", names.join(", ")))
}

fn create_sheet(state: &ServerState, name: &str, req: &Request) -> Response {
    let body = match body_text(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    if state.sheet_exists(name) {
        return Response::json(
            409,
            format!(
                "{{\"error\": {}, \"status\": 409}}\n",
                wire::json_str(&format!("sheet `{name}` already exists"))
            ),
        );
    }
    respond(|| {
        let relation = csv::parse_csv(name, body).map_err(SheetError::from)?;
        let version = state.create_sheet(relation)?;
        let snapshot = state.host(name)?.snapshot();
        Ok(Response::json(
            201,
            wire::sheet_json(name, version, &snapshot.base),
        ))
    })
}

fn sheet_meta(state: &ServerState, name: &str) -> Response {
    respond(|| {
        let snapshot = state.host(name)?.snapshot();
        Ok(Response::json(
            200,
            wire::sheet_json(name, snapshot.version, &snapshot.base),
        ))
    })
}

fn sheet_csv(state: &ServerState, name: &str) -> Response {
    respond(|| {
        let snapshot = state.host(name)?.snapshot();
        Ok(Response::text(200, csv::to_csv(&snapshot.base)))
    })
}

fn append_rows(state: &ServerState, name: &str, req: &Request) -> Response {
    let body = match body_text(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    respond(|| {
        let host = state.host(name)?;
        let rows = wire::rows_from_csv(host.snapshot().base.schema(), body)?;
        let (appended, version) = host.append_rows(rows)?;
        Ok(Response::json(
            200,
            format!("{{\"appended\": {appended}, \"version\": {version}}}\n"),
        ))
    })
}

fn delete_rows(state: &ServerState, name: &str, req: &Request) -> Response {
    let body = match body_text(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    respond(|| {
        let ids = wire::parse_row_ids(body)?;
        let version = state.host(name)?.delete_rows(&ids)?;
        Ok(Response::json(
            200,
            format!("{{\"deleted\": {}, \"version\": {version}}}\n", ids.len()),
        ))
    })
}

fn update_cell(state: &ServerState, name: &str, req: &Request) -> Response {
    let body = match body_text(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    respond(|| {
        let parts: Vec<&str> = body.trim().splitn(3, char::is_whitespace).collect();
        let [row, column, literal] = parts.as_slice() else {
            return Err(SheetError::Persist {
                message: "cell body must be `<base-row-id> <column> <literal>`".to_string(),
            });
        };
        let row: u32 = row.parse().map_err(|_| SheetError::Persist {
            message: format!("bad base-row id {row:?}"),
        })?;
        let value = wire::parse_literal(literal)?;
        let version = state.host(name)?.update_cell(row, column, value)?;
        Ok(Response::json(200, format!("{{\"version\": {version}}}\n")))
    })
}

/// Replicated query-state (and base) ops: each non-empty line is parsed
/// as one [`SheetOp`] and committed through the durable pipeline —
/// apply, WAL append, publish — so the response acks logged events. The
/// whole body is parsed before anything commits, so a bad line rejects
/// the batch instead of acking half of it.
fn sheet_ops(state: &ServerState, name: &str, req: &Request) -> Response {
    let body = match body_text(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    respond(|| {
        let ops = body
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(SheetOp::parse_command)
            .collect::<Result<Vec<SheetOp>>>()?;
        if ops.is_empty() {
            return Err(SheetError::Persist {
                message: "empty op body".to_string(),
            });
        }
        let host = state.host(name)?;
        let mut version = 0;
        let mut events = Vec::with_capacity(ops.len());
        for op in ops {
            let (event, v) = host.apply_op(op)?;
            version = v;
            events.push(format!("[{}, {}]", event.replica, event.seq));
        }
        Ok(Response::json(
            200,
            format!(
                "{{\"applied\": {}, \"version\": {version}, \"events\": [{}]}}\n",
                events.len(),
                events.join(", ")
            ),
        ))
    })
}

/// GET: the full replication payload. POST: one sync exchange — merge
/// the peer's payload, reply with the events it is missing.
fn sheet_sync(state: &ServerState, name: &str, req: &Request) -> Response {
    respond(|| {
        let host = state.host(name)?;
        let payload = if req.method == "GET" {
            host.sync_pull()?
        } else {
            let body = match body_text(req) {
                Ok(b) => b,
                Err(_) => {
                    return Err(SheetError::Persist {
                        message: "sync body is not valid UTF-8".to_string(),
                    })
                }
            };
            host.sync_exchange(body)?
        };
        Ok(Response::json(200, payload))
    })
}

fn sheet_compact(state: &ServerState, name: &str) -> Response {
    respond(|| {
        let wal_len = state.host(name)?.compact()?;
        Ok(Response::json(
            200,
            format!("{{\"compacted\": true, \"wal_bytes\": {wal_len}}}\n"),
        ))
    })
}

fn sheet_fingerprint(state: &ServerState, name: &str) -> Response {
    respond(|| Ok(Response::json(200, state.host(name)?.fingerprint())))
}

fn create_session(state: &ServerState, req: &Request) -> Response {
    let Some(sheet) = req.query.get("sheet") else {
        return Response::json(
            400,
            "{\"error\": \"missing ?sheet= query parameter\", \"status\": 400}\n".to_string(),
        );
    };
    respond(|| {
        let (id, version) = state.create_session(sheet)?;
        Ok(Response::json(
            201,
            format!(
                "{{\"session\": {id}, \"sheet\": {}, \"version\": {version}}}\n",
                wire::json_str(sheet)
            ),
        ))
    })
}

fn with_session(
    state: &ServerState,
    id: &str,
    f: impl FnOnce(&mut SessionSlot) -> Response,
) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return not_found("session ids are numeric");
    };
    match state.session(id) {
        Ok(slot) => {
            let slot: Arc<Mutex<SessionSlot>> = slot;
            let mut guard = lock_slot(&slot);
            f(&mut guard)
        }
        Err(_) => not_found(&format!("no session {id}")),
    }
}

fn session_apply(state: &ServerState, id: &str, req: &Request) -> Response {
    let body = match body_text(req) {
        Ok(b) => b.to_string(),
        Err(resp) => return resp,
    };
    with_session(state, id, |slot| {
        let mut outputs = Vec::new();
        for line in body.lines().filter(|l| !l.trim().is_empty()) {
            if is_write_command(line) {
                return Response::json(
                    409,
                    format!(
                        "{{\"error\": {}, \"status\": 409}}\n",
                        wire::json_str(&format!(
                            "`{}` edits base data; use POST /sheets/{}/rows|cells|delete, \
                             then POST refresh on the session",
                            line.trim(),
                            slot.sheet
                        ))
                    ),
                );
            }
            match slot.script.execute(line) {
                Ok(out) => outputs.push(wire::json_str(&out)),
                Err(e) => return error_response(&e),
            }
        }
        Response::json(
            200,
            format!(
                "{{\"version\": {}, \"outputs\": [{}]}}\n",
                slot.version,
                outputs.join(", ")
            ),
        )
    })
}

fn session_view(state: &ServerState, id: &str) -> Response {
    with_session(state, id, |slot| match slot.script.execute("show") {
        Ok(out) => Response::text(200, out),
        Err(e) => error_response(&e),
    })
}

fn session_explain(state: &ServerState, id: &str) -> Response {
    with_session(state, id, |slot| match slot.script.execute("explain") {
        Ok(out) => Response::text(200, out),
        Err(e) => error_response(&e),
    })
}

fn session_refresh(state: &ServerState, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return not_found("session ids are numeric");
    };
    if state.session(id).is_err() {
        return not_found(&format!("no session {id}"));
    }
    respond(|| {
        let version = state.refresh_session(id)?;
        Ok(Response::json(200, format!("{{\"version\": {version}}}\n")))
    })
}

fn session_close(state: &ServerState, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return not_found("session ids are numeric");
    };
    if state.drop_session(id) {
        Response::json(200, "{\"closed\": true}\n".to_string())
    } else {
        not_found(&format!("no session {id}"))
    }
}

/// Dispatch one request against the server state.
pub fn route(state: &ServerState, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = req.method.as_str();
    match (method, segments.as_slice()) {
        ("GET", ["health"]) => health(state),
        ("GET", ["sheets"]) => list_sheets(state),
        ("PUT", ["sheets", name]) => create_sheet(state, name, req),
        ("GET", ["sheets", name]) => sheet_meta(state, name),
        ("GET", ["sheets", name, "csv"]) => sheet_csv(state, name),
        ("POST", ["sheets", name, "rows"]) => append_rows(state, name, req),
        ("POST", ["sheets", name, "delete"]) => delete_rows(state, name, req),
        ("POST", ["sheets", name, "cells"]) => update_cell(state, name, req),
        ("POST", ["sheets", name, "ops"]) => sheet_ops(state, name, req),
        ("GET" | "POST", ["sheets", name, "sync"]) => sheet_sync(state, name, req),
        ("POST", ["sheets", name, "compact"]) => sheet_compact(state, name),
        ("GET", ["sheets", name, "fingerprint"]) => sheet_fingerprint(state, name),
        ("POST", ["sessions"]) => create_session(state, req),
        ("POST", ["sessions", id, "apply"]) => session_apply(state, id, req),
        ("GET", ["sessions", id, "view"]) => session_view(state, id),
        ("GET", ["sessions", id, "explain"]) => session_explain(state, id),
        ("POST", ["sessions", id, "refresh"]) => session_refresh(state, id),
        ("DELETE", ["sessions", id]) => session_close(state, id),
        ("GET" | "POST" | "PUT" | "DELETE" | "HEAD", _) => {
            not_found(&format!("no route for {method} {}", req.path))
        }
        _ => Response::json(
            405,
            "{\"error\": \"method not allowed\", \"status\": 405}\n".to_string(),
        ),
    }
}
