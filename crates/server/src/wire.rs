//! Wire formats: hand-rolled JSON emission for responses and
//! schema-typed CSV row parsing for request bodies. The workspace is
//! offline, so there is no JSON parser to lean on — inputs that need
//! structure arrive as CSV (reusing `ssa_relation::csv` quoting rules)
//! or as the same literal syntax the `setcell` script command takes.

use spreadsheet_algebra::{Result, SheetError};
use ssa_relation::expr_parse::parse_expr;
use ssa_relation::{csv, Relation, Schema, Tuple, Value, ValueType};

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON string literal (quotes included).
pub fn json_str(text: &str) -> String {
    format!("\"{}\"", json_escape(text))
}

/// A value as a JSON literal: numbers and booleans stay bare, strings
/// are quoted, nulls (and non-finite floats, which JSON lacks) are null.
pub fn json_value(value: &Value) -> String {
    match value {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Float(f) if f.is_finite() => format!("{f}"),
        Value::Float(_) => "null".to_string(),
        Value::Str(s) => json_str(s.as_str()),
    }
}

fn bad(message: String) -> SheetError {
    SheetError::Persist { message }
}

/// Parse one field of text into a value of the column's type. Empty
/// text is NULL; type errors carry the column name for a precise 400.
fn parse_field(text: &str, ty: ValueType, column: &str) -> Result<Value> {
    let text = text.trim();
    if text.is_empty() {
        return Ok(Value::Null);
    }
    let fail = || {
        bad(format!(
            "column `{column}`: cannot parse {text:?} as {ty:?}"
        ))
    };
    match ty {
        ValueType::Str => Ok(Value::str(text)),
        ValueType::Bool => match text.to_ascii_lowercase().as_str() {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            _ => Err(fail()),
        },
        ValueType::Int => text.parse::<i64>().map(Value::Int).map_err(|_| fail()),
        ValueType::Float => text.parse::<f64>().map(Value::Float).map_err(|_| fail()),
        // An all-NULL column accepts whatever the text looks like.
        ValueType::Null => Ok(Value::infer_parse(text)),
    }
}

/// Parse a CSV body (no header — the schema is the sheet's own) into
/// rows typed against `schema`. Every line must have exactly one field
/// per column.
pub fn rows_from_csv(schema: &Schema, body: &str) -> Result<Vec<Tuple>> {
    let mut rows = Vec::new();
    for (lno, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = csv::split_line(line, lno + 1).map_err(SheetError::from)?;
        if fields.len() != schema.len() {
            return Err(bad(format!(
                "line {}: expected {} fields, found {}",
                lno + 1,
                schema.len(),
                fields.len()
            )));
        }
        let values = schema
            .columns()
            .iter()
            .zip(&fields)
            .map(|(col, f)| parse_field(f, col.ty, &col.name))
            .collect::<Result<Vec<Value>>>()?;
        rows.push(Tuple::new(values));
    }
    if rows.is_empty() {
        return Err(bad("empty row body".to_string()));
    }
    Ok(rows)
}

/// Parse one literal the way the `setcell` script command does: any
/// constant expression (`15500`, `'Jetta'`, `-3.5`, `null`).
pub fn parse_literal(text: &str) -> Result<Value> {
    let v = parse_expr(text)?.eval(&Schema::empty(), &Tuple::new(Vec::new()))?;
    Ok(v)
}

/// Whitespace/comma separated base-row ids.
pub fn parse_row_ids(body: &str) -> Result<Vec<u32>> {
    let ids = body
        .split(|c: char| c.is_whitespace() || c == ',')
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse::<u32>()
                .map_err(|_| bad(format!("bad base-row id {t:?}")))
        })
        .collect::<Result<Vec<u32>>>()?;
    if ids.is_empty() {
        return Err(bad("no row ids in body".to_string()));
    }
    Ok(ids)
}

/// Sheet metadata as JSON: name, version, shape, column names/types.
pub fn sheet_json(name: &str, version: u64, base: &Relation) -> String {
    let cols: Vec<String> = base
        .schema()
        .columns()
        .iter()
        .map(|c| {
            format!(
                "{{\"name\": {}, \"type\": {}}}",
                json_str(&c.name),
                json_str(&c.ty.to_string())
            )
        })
        .collect();
    format!(
        "{{\"sheet\": {}, \"version\": {}, \"rows\": {}, \"columns\": [{}]}}\n",
        json_str(name),
        version,
        base.len(),
        cols.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_relation::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ValueType::Int),
            Column::new("name", ValueType::Str),
            Column::new("price", ValueType::Float),
        ])
        .expect("test schema")
    }

    #[test]
    fn rows_parse_against_schema_types() {
        let rows = rows_from_csv(&schema(), "1,\"Jetta, GL\",15500\n2,Golf,\n").expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(*rows[0].get(0), Value::Int(1));
        assert_eq!(*rows[0].get(1), Value::str("Jetta, GL"));
        assert_eq!(*rows[0].get(2), Value::Float(15500.0));
        assert_eq!(*rows[1].get(2), Value::Null);
    }

    #[test]
    fn row_parse_errors_name_the_column() {
        let err = rows_from_csv(&schema(), "x,Jetta,1.0").expect_err("bad int");
        assert!(err.to_string().contains("id"), "got: {err}");
        let err = rows_from_csv(&schema(), "1,Jetta").expect_err("arity");
        assert!(err.to_string().contains("expected 3 fields"), "got: {err}");
    }

    #[test]
    fn json_escaping_and_values() {
        assert_eq!(json_str("a\"b\nc"), "\"a\\\"b\\nc\"");
        assert_eq!(json_value(&Value::Null), "null");
        assert_eq!(json_value(&Value::Int(-3)), "-3");
        assert_eq!(json_value(&Value::Float(f64::NAN)), "null");
        assert_eq!(json_value(&Value::str("hi")), "\"hi\"");
    }

    #[test]
    fn literals_and_ids() {
        assert_eq!(parse_literal("'Jetta'").expect("str"), Value::str("Jetta"));
        assert_eq!(parse_literal("-3.5").expect("float"), Value::Float(-3.5));
        assert_eq!(parse_row_ids("1, 2 7").expect("ids"), vec![1, 2, 7]);
        assert!(parse_row_ids("  ").is_err());
    }
}
