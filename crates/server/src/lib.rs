//! # ssa-server — the multi-session spreadsheet server
//!
//! Hosts many named spreadsheets behind a hand-rolled HTTP/1.1 server
//! (`std::net` only — the workspace is offline) and lets many concurrent
//! sessions drive `sheetmusiq` direct-manipulation actions over them.
//!
//! The concurrency model is the paper's Sec. V split made operational
//! (DESIGN.md §15): base data is immutable and `Arc`-shared, query state
//! is per-session. Reads never block on writes — each session evaluates
//! against a cheap versioned [`host::SheetSnapshot`]; writes serialize
//! per sheet behind a mutex and publish a new snapshot with one pointer
//! swap. Fault sites `server.publish` and `server.accept` (§12) prove a
//! failed publish never corrupts readers and a transient accept fault
//! never kills the server.
//!
//! With `--durable DIR` the writer is backed by a per-sheet write-ahead
//! log (DESIGN.md §17): every committed op is appended (fsync per
//! `--fsync always|batch:<ms>|never`) *before* the snapshot publish and
//! the client ack, `--open` recovers snapshot + WAL tail after a crash,
//! and `/sheets/{name}/sync` exchanges op-logs with peer replicas,
//! converging deterministically per the paper's Theorems 2–3.

pub mod api;
pub mod host;
pub mod http;
pub mod wire;

pub use api::{route, status_for};
pub use host::{
    session_over, DurabilityConfig, ServerState, SessionSlot, SheetHost, SheetSnapshot,
};
pub use http::{serve, serve_with, Request, Response, ServerHandle};
