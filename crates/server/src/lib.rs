//! # ssa-server — the multi-session spreadsheet server
//!
//! Hosts many named spreadsheets behind a hand-rolled HTTP/1.1 server
//! (`std::net` only — the workspace is offline) and lets many concurrent
//! sessions drive `sheetmusiq` direct-manipulation actions over them.
//!
//! The concurrency model is the paper's Sec. V split made operational
//! (DESIGN.md §15): base data is immutable and `Arc`-shared, query state
//! is per-session. Reads never block on writes — each session evaluates
//! against a cheap versioned [`host::SheetSnapshot`]; writes serialize
//! per sheet behind a mutex and publish a new snapshot with one pointer
//! swap. Fault sites `server.publish` and `server.accept` (§12) prove a
//! failed publish never corrupts readers and a transient accept fault
//! never kills the server.

pub mod api;
pub mod host;
pub mod http;
pub mod wire;

pub use api::{route, status_for};
pub use host::{session_over, ServerState, SessionSlot, SheetHost, SheetSnapshot};
pub use http::{serve, Request, Response, ServerHandle};
