//! Shared-snapshot sheet hosting (DESIGN.md §15) over a durable,
//! replicated writer (DESIGN.md §17).
//!
//! Each named sheet lives in a [`SheetHost`]: one writer
//! [`DurableSheet`] serialized behind a mutex, plus the currently
//! *published* [`SheetSnapshot`] — an `Arc` of the base relation tagged
//! with the sheet's data version (the §12 epoch counter extended to
//! count every committed base mutation). Reads never take the writer
//! lock: a session clones the snapshot `Arc` (two pointer bumps under a
//! short read lock) and evaluates its own query state against that
//! immutable base. Writes apply to the writer sheet — transactionally,
//! as per §12 — then append to the write-ahead log, and only then
//! publish a fresh snapshot with a single pointer swap, so readers
//! observe either the old base or the new one, never a torn state.
//!
//! Ack ordering is the durability contract (§17): a response leaves the
//! server only after apply → WAL append (+ fsync per policy) → publish
//! have all succeeded, in that order. An op is therefore never acked
//! before it is in the log, and a failure at any stage unwinds the
//! earlier ones: a failed WAL append rolls the in-memory apply back
//! inside [`DurableSheet::commit`], and a failed publish aborts the
//! receipt — memory pop + WAL truncate — so the unacked op leaves no
//! trace anywhere.
//!
//! Failure model: the `server.publish` failpoint sits between the
//! logged write and the snapshot swap. When it fires, the commit is
//! aborted as above, so writer, log, and readers all agree on the
//! pre-write state — the write reports an error and has no partial
//! effect anywhere.

use sheetmusiq::{ScriptHost, Session};
use spreadsheet_algebra::replica::{decode_sync, encode_sync};
use spreadsheet_algebra::{
    DurableSheet, Engine, FsyncPolicy, OpEvent, PagedSheet, Result, SheetError, SheetOp,
    VersionVector,
};
use ssa_relation::{Catalog, Relation, Tuple, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

/// An immutable, atomically published view of one sheet's base data.
#[derive(Debug, Clone)]
pub struct SheetSnapshot {
    /// Sheet (relation) name.
    pub name: String,
    /// The base relation; shared with the writer until its next edit.
    pub base: Arc<Relation>,
    /// Monotone data version at publish time (see `Spreadsheet::version`).
    pub version: u64,
}

/// One hosted sheet: serialized durable writer + published snapshot.
pub struct SheetHost {
    name: String,
    writer: Mutex<DurableSheet>,
    published: RwLock<Arc<SheetSnapshot>>,
}

impl std::fmt::Debug for SheetHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SheetHost")
            .field("name", &self.name)
            .finish()
    }
}

/// Poison-safe lock: the data under these locks is kept consistent by
/// the §12 transactional edits plus the §17 abort path, so a panicking
/// writer leaves a valid (pre- or post-publish) state behind and the
/// guard can be recovered.
fn lock_writer(m: &Mutex<DurableSheet>) -> MutexGuard<'_, DurableSheet> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl SheetHost {
    /// Host a relation in memory (no WAL), publishing its initial
    /// snapshot at version 0.
    pub fn new(relation: Relation) -> SheetHost {
        match DurableSheet::in_memory(0, relation) {
            Ok(d) => SheetHost::from_durable(d),
            // invariant: replica id 0 is always within range.
            Err(e) => unreachable!("in-memory replica 0 must construct: {e}"),
        }
    }

    /// Host an already-constructed durable writer (created or recovered
    /// elsewhere), publishing its current state as the first snapshot.
    pub fn from_durable(durable: DurableSheet) -> SheetHost {
        let sheet = durable.replica().sheet();
        let name = sheet.name().to_string();
        let snapshot = Arc::new(SheetSnapshot {
            name: name.clone(),
            base: sheet.base_arc(),
            version: sheet.version(),
        });
        SheetHost {
            name,
            writer: Mutex::new(durable),
            published: RwLock::new(snapshot),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// The currently published snapshot (lock-free for practical
    /// purposes: a short read lock around one `Arc` clone).
    pub fn snapshot(&self) -> Arc<SheetSnapshot> {
        match self.published.read() {
            Ok(g) => Arc::clone(&g),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Swap in a snapshot of the writer's current state; returns the
    /// published version. Infallible by design: it is only called after
    /// the op is applied and logged.
    fn publish(&self, writer: &DurableSheet) -> u64 {
        let sheet = writer.replica().sheet();
        let snapshot = Arc::new(SheetSnapshot {
            name: self.name.clone(),
            base: sheet.base_arc(),
            version: sheet.version(),
        });
        let version = snapshot.version;
        match self.published.write() {
            Ok(mut g) => *g = snapshot,
            Err(poisoned) => *poisoned.into_inner() = snapshot,
        }
        version
    }

    /// Commit one op through the full §17 pipeline: apply in memory,
    /// append to the WAL (fsync per policy), pass the `server.publish`
    /// failpoint, swap the snapshot — and only then return (the caller's
    /// ack). A failure at any stage unwinds the earlier ones, so an op
    /// the client never saw acked is never in the log or the snapshot.
    pub fn apply_op(&self, op: SheetOp) -> Result<(OpEvent, u64)> {
        let mut writer = lock_writer(&self.writer);
        let receipt = writer.commit(op)?;
        // A panicking publish (the failpoint's `Panic` behavior) must be
        // as harmless as an erroring one: catch it, abort the commit,
        // surface a typed error — the caller's connection reports 500,
        // everyone else keeps reading the old snapshot.
        let published = std::panic::catch_unwind(Self::publish_guard).unwrap_or_else(|payload| {
            let site = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "server.publish panicked".to_string());
            Err(SheetError::Relation(
                ssa_relation::RelationError::WorkerPanicked { site },
            ))
        });
        match published {
            Ok(()) => {
                let event = receipt.event.clone();
                let version = self.publish(&writer);
                Ok((event, version))
            }
            Err(e) => {
                // Never acked, so it must not survive: pop it from
                // memory and truncate it off the log. If even the abort
                // fails the writer is wedged — surface that error, it is
                // strictly worse than the publish failure.
                writer.abort(&receipt)?;
                Err(e)
            }
        }
    }

    /// Append rows; returns (rows appended, new version).
    pub fn append_rows(&self, rows: Vec<Tuple>) -> Result<(usize, u64)> {
        let n = rows.len();
        let (_, version) = self.apply_op(SheetOp::AppendRows { rows })?;
        Ok((n, version))
    }

    /// Delete base rows by id; returns the new version.
    pub fn delete_rows(&self, ids: &[u32]) -> Result<u64> {
        let (_, version) = self.apply_op(SheetOp::DeleteRows { ids: ids.to_vec() })?;
        Ok(version)
    }

    /// Update one base cell; returns the new version.
    pub fn update_cell(&self, row: u32, column: &str, value: Value) -> Result<u64> {
        let (_, version) = self.apply_op(SheetOp::UpdateCell {
            row,
            column: column.to_string(),
            value,
        })?;
        Ok(version)
    }

    /// One sync exchange (the POST /sheets/{name}/sync body): absorb the
    /// peer's payload — merging per Theorem 2 where ops commute, by the
    /// canonical `(weight, replica, seq)` total order with Theorem-3
    /// history rewriting where they do not — persist what was adopted,
    /// publish, and reply with the events the peer is missing.
    pub fn sync_exchange(&self, body: &str) -> Result<String> {
        let (peer_vv, events) = decode_sync(body)?;
        let mut writer = lock_writer(&self.writer);
        writer.absorb(&events)?;
        self.publish(&writer);
        let reply = writer.events_since(&peer_vv)?;
        encode_sync(&writer.replica().frontier_vv(), &reply)
    }

    /// The full replication payload (the GET /sheets/{name}/sync body):
    /// our frontier plus every retained event. A peer that absorbs this
    /// and POSTs its own payload back is fully converged with us.
    pub fn sync_pull(&self) -> Result<String> {
        let writer = lock_writer(&self.writer);
        let events = writer.events_since(&VersionVector::new())?;
        encode_sync(&writer.replica().frontier_vv(), &events)
    }

    /// Canonical rendering of (base, state) — bitwise equal across
    /// converged replicas regardless of delivery order.
    pub fn fingerprint(&self) -> String {
        lock_writer(&self.writer).replica().fingerprint()
    }

    /// Flush batched WAL appends to disk (no-op for in-memory hosts or
    /// a clean log).
    pub fn flush_wal(&self) -> Result<()> {
        lock_writer(&self.writer).sync_now()
    }

    /// Compact the log: rewrite the snapshot file at the current state
    /// and truncate the WAL (atomic per §17); returns the WAL length
    /// after compaction.
    pub fn compact(&self) -> Result<u64> {
        let mut writer = lock_writer(&self.writer);
        writer.compact()?;
        Ok(writer.wal_len())
    }

    /// Bytes currently in the WAL (0 for in-memory hosts).
    pub fn wal_len(&self) -> u64 {
        lock_writer(&self.writer).wal_len()
    }

    /// The `server.publish` failpoint, between the logged commit and the
    /// snapshot swap.
    fn publish_guard() -> Result<()> {
        ssa_relation::fault_check!("server.publish");
        Ok(())
    }
}

/// One HTTP session: a `sheetmusiq` script host whose engine is pinned
/// to a published snapshot of its sheet.
#[derive(Debug)]
pub struct SessionSlot {
    /// Name of the hosted sheet this session reads.
    pub sheet: String,
    /// Version of the snapshot the session is currently pinned to.
    pub version: u64,
    /// The scriptable session driving `sheetmusiq` actions.
    pub script: ScriptHost,
}

/// One registered sheet: either a live [`SheetHost`] or a still-on-disk
/// [`PagedSheet`] that materializes on first touch.
///
/// Sheets opened from the binary paged store register with only their
/// head/footer/meta read — schema and row count are known, row data is
/// not. The first request that needs the sheet (a session, a write)
/// resolves the slot: the paged source loads its columns, becomes a
/// relation, and the resulting host is cached in the `OnceLock` for
/// every later request. A failed materialization puts the source back,
/// so a transient I/O error is retryable and never wedges the slot.
#[derive(Debug)]
struct SheetSlot {
    host: OnceLock<Arc<SheetHost>>,
    pending: Mutex<Option<PagedSheet>>,
    /// Stored row count for listings before materialization.
    rows: usize,
}

impl SheetSlot {
    fn ready(host: Arc<SheetHost>) -> SheetSlot {
        let rows = host.snapshot().base.len();
        let slot = SheetSlot {
            host: OnceLock::new(),
            pending: Mutex::new(None),
            rows,
        };
        let _ = slot.host.set(host);
        slot
    }

    fn paged(paged: PagedSheet) -> SheetSlot {
        let rows = paged.row_count();
        SheetSlot {
            host: OnceLock::new(),
            pending: Mutex::new(Some(paged)),
            rows,
        }
    }

    fn is_loaded(&self) -> bool {
        self.host.get().is_some()
    }

    /// The live host, materializing the paged source on first touch.
    fn resolve(&self, name: &str) -> Result<Arc<SheetHost>> {
        if let Some(h) = self.host.get() {
            return Ok(Arc::clone(h));
        }
        let mut pending = match self.pending.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Double-check under the lock: another thread may have finished
        // materializing while this one waited.
        if let Some(h) = self.host.get() {
            return Ok(Arc::clone(h));
        }
        let paged = pending.take().ok_or_else(|| SheetError::Persist {
            message: format!("sheet `{name}` has no live host and no paged source"),
        })?;
        match paged.materialize() {
            Ok(stored) => {
                let mut relation = stored.relation;
                relation.set_name(name.to_string());
                let host = Arc::new(SheetHost::new(relation));
                let host = match self.host.set(host) {
                    Ok(()) => Arc::clone(self.host.get().ok_or_else(|| SheetError::Persist {
                        message: "sheet host vanished after set".into(),
                    })?),
                    // Unreachable in practice (set happens under the
                    // pending lock), but losing the race is harmless:
                    // use whoever won.
                    Err(_) => Arc::clone(self.host.get().ok_or_else(|| SheetError::Persist {
                        message: "sheet host vanished after race".into(),
                    })?),
                };
                Ok(host)
            }
            Err(e) => {
                *pending = Some(paged);
                Err(e)
            }
        }
    }
}

/// Where and how a server persists its hosted sheets (§17): a directory
/// of `<name>.sheet` snapshot files with `.wal` logs beside them, one
/// fsync policy for every log, and the replica id stamped on every
/// event this server commits.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `<name>.sheet` + `<name>.sheet.wal` pairs.
    pub dir: PathBuf,
    /// When appends reach the disk platter: `always`, `batch(ms)`, `never`.
    pub policy: FsyncPolicy,
    /// This server's replica id (must differ across replicas that sync).
    pub replica: u64,
}

/// The whole server: named sheet slots plus live sessions.
#[derive(Debug, Default)]
pub struct ServerState {
    sheets: RwLock<BTreeMap<String, Arc<SheetSlot>>>,
    sessions: Mutex<BTreeMap<u64, Arc<Mutex<SessionSlot>>>>,
    next_session: AtomicU64,
    durability: Option<DurabilityConfig>,
}

impl ServerState {
    pub fn new() -> ServerState {
        ServerState::default()
    }

    /// A server whose sheets are durable: every sheet created or opened
    /// gets a snapshot file + WAL under `config.dir`.
    pub fn durable(config: DurabilityConfig) -> ServerState {
        ServerState {
            durability: Some(config),
            ..ServerState::default()
        }
    }

    pub fn durability(&self) -> Option<&DurabilityConfig> {
        self.durability.as_ref()
    }

    /// Snapshot path a sheet name maps to under the durability dir.
    fn sheet_path(cfg: &DurabilityConfig, name: &str) -> PathBuf {
        cfg.dir.join(format!("{name}.sheet"))
    }

    /// Host a relation under its own name. Errors if the name is taken.
    /// On a durable server this also creates the snapshot + empty WAL.
    pub fn create_sheet(&self, relation: Relation) -> Result<u64> {
        let name = relation.name().to_string();
        let host = match &self.durability {
            Some(cfg) => {
                let path = Self::sheet_path(cfg, &name);
                if path.exists() {
                    return Err(SheetError::Persist {
                        message: format!(
                            "sheet file `{}` already exists; reopen it with --open",
                            path.display()
                        ),
                    });
                }
                SheetHost::from_durable(DurableSheet::create(
                    path,
                    cfg.replica,
                    relation,
                    cfg.policy,
                )?)
            }
            None => SheetHost::new(relation),
        };
        let mut sheets = match self.sheets.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if sheets.contains_key(&name) {
            return Err(SheetError::Persist {
                message: format!("sheet `{name}` already exists"),
            });
        }
        let version = host.snapshot().version;
        sheets.insert(name, Arc::new(SheetSlot::ready(Arc::new(host))));
        Ok(version)
    }

    /// Register a sheet straight from a binary paged file: only the
    /// head, footer and meta frames are read here — row data stays on
    /// disk until the first session or write touches the sheet. Returns
    /// the registered name and the stored row count.
    pub fn open_sheet_file(&self, path: impl AsRef<Path>) -> Result<(String, usize)> {
        let paged = spreadsheet_algebra::open_paged(path)?;
        let name = paged.name().to_string();
        let rows = paged.row_count();
        let mut sheets = match self.sheets.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if sheets.contains_key(&name) {
            return Err(SheetError::Persist {
                message: format!("sheet `{name}` already exists"),
            });
        }
        sheets.insert(name.clone(), Arc::new(SheetSlot::paged(paged)));
        Ok((name, rows))
    }

    /// Recover a durable sheet from its snapshot file: replay the WAL
    /// tail (§17 — a torn final frame is trimmed, a mid-log corruption
    /// is a typed [`SheetError::TornLog`]), then host and publish the
    /// recovered state. Returns the registered name and row count.
    pub fn open_durable_sheet(&self, path: impl AsRef<Path>) -> Result<(String, usize)> {
        let cfg = self
            .durability
            .as_ref()
            .ok_or_else(|| SheetError::Persist {
                message: "server has no durability configuration (--durable)".to_string(),
            })?;
        let durable = DurableSheet::open(path.as_ref(), cfg.replica, cfg.policy)?;
        let host = SheetHost::from_durable(durable);
        let name = host.name().to_string();
        let rows = host.snapshot().base.len();
        let mut sheets = match self.sheets.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if sheets.contains_key(&name) {
            return Err(SheetError::Persist {
                message: format!("sheet `{name}` already exists"),
            });
        }
        sheets.insert(name.clone(), Arc::new(SheetSlot::ready(Arc::new(host))));
        Ok((name, rows))
    }

    /// Flush every loaded sheet's batched WAL appends to disk; returns
    /// how many sheets were flushed. Errors are reported per sheet on
    /// stderr rather than aborting the sweep — the periodic flusher must
    /// keep covering the healthy sheets.
    pub fn flush_wals(&self) -> usize {
        let slots: Vec<(String, Arc<SheetSlot>)> = {
            let sheets = match self.sheets.read() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            sheets
                .iter()
                .map(|(n, s)| (n.clone(), Arc::clone(s)))
                .collect()
        };
        let mut flushed = 0;
        for (name, slot) in slots {
            if let Some(host) = slot.host.get() {
                match host.flush_wal() {
                    Ok(()) => flushed += 1,
                    Err(e) => eprintln!("wal flush {name}: {e}"),
                }
            }
        }
        flushed
    }

    fn slot(&self, name: &str) -> Result<Arc<SheetSlot>> {
        let sheets = match self.sheets.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        sheets
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| SheetError::UnknownSheet {
                name: name.to_string(),
            })
    }

    /// Look up a hosted sheet, materializing a paged one on first touch.
    pub fn host(&self, name: &str) -> Result<Arc<SheetHost>> {
        self.slot(name)?.resolve(name)
    }

    /// Whether a sheet is registered under `name` (live or still paged),
    /// without forcing materialization.
    pub fn sheet_exists(&self, name: &str) -> bool {
        self.slot(name).is_ok()
    }

    /// Whether the named sheet is materialized in memory (false while a
    /// paged sheet is still waiting on disk for its first touch).
    pub fn sheet_loaded(&self, name: &str) -> Result<bool> {
        Ok(self.slot(name)?.is_loaded())
    }

    /// Stored row count without forcing materialization.
    pub fn sheet_rows(&self, name: &str) -> Result<usize> {
        Ok(self.slot(name)?.rows)
    }

    /// Names of all hosted sheets, sorted.
    pub fn sheet_names(&self) -> Vec<String> {
        let sheets = match self.sheets.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        sheets.keys().cloned().collect()
    }

    /// Open a session over the named sheet's current snapshot.
    /// Returns (session id, pinned snapshot version).
    pub fn create_session(&self, sheet: &str) -> Result<(u64, u64)> {
        let snapshot = self.host(sheet)?.snapshot();
        let slot = session_over(&snapshot);
        let id = self.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        let mut sessions = match self.sessions.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let version = slot.version;
        sessions.insert(id, Arc::new(Mutex::new(slot)));
        Ok((id, version))
    }

    /// Look up a live session by id.
    pub fn session(&self, id: u64) -> Result<Arc<Mutex<SessionSlot>>> {
        let sessions = match self.sessions.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        sessions
            .get(&id)
            .map(Arc::clone)
            .ok_or_else(|| SheetError::Persist {
                message: format!("no session {id}"),
            })
    }

    /// Close a session; returns whether it existed.
    pub fn drop_session(&self, id: u64) -> bool {
        let mut sessions = match self.sessions.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        sessions.remove(&id).is_some()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        let sessions = match self.sessions.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        sessions.len()
    }

    /// Re-pin a session to its sheet's latest snapshot, keeping the
    /// session's query state (selections, grouping, aggregates) intact —
    /// the paper's Sec. V split makes this a pure base swap + re-eval.
    pub fn refresh_session(&self, id: u64) -> Result<u64> {
        let slot = self.session(id)?;
        let mut slot = match slot.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let snapshot = self.host(&slot.sheet)?.snapshot();
        if snapshot.version == slot.version {
            return Ok(slot.version);
        }
        slot.script
            .session
            .engine()?
            .sheet_mut()
            .rebase(Arc::clone(&snapshot.base))?;
        slot.version = snapshot.version;
        Ok(slot.version)
    }
}

/// Build a session slot pinned to a snapshot: the engine shares the
/// snapshot's base `Arc` — no data is copied until the host's writer
/// edits it, and then only on the writer's side.
pub fn session_over(snapshot: &SheetSnapshot) -> SessionSlot {
    let engine = Engine::over_shared(Arc::clone(&snapshot.base));
    let mut session = Session::new(Catalog::new());
    session.adopt(engine);
    SessionSlot {
        sheet: snapshot.name.clone(),
        version: snapshot.version,
        script: ScriptHost::new(session),
    }
}
