//! Shared-snapshot sheet hosting (DESIGN.md §15).
//!
//! Each named sheet lives in a [`SheetHost`]: one writer [`Spreadsheet`]
//! serialized behind a mutex, plus the currently *published*
//! [`SheetSnapshot`] — an `Arc` of the base relation tagged with the
//! sheet's data version (the §12 epoch counter extended to count every
//! committed base mutation). Reads never take the writer lock: a session
//! clones the snapshot `Arc` (two pointer bumps under a short read lock)
//! and evaluates its own query state against that immutable base. Writes
//! apply to the writer sheet — transactionally, as per §12 — and then
//! publish a fresh snapshot with a single pointer swap, so readers
//! observe either the old base or the new one, never a torn state.
//!
//! The copy-on-write seam is `Arc::make_mut` inside `Spreadsheet`: the
//! first write after a publish pays one base-relation clone (readers
//! still hold the old `Arc`); subsequent writes before the next snapshot
//! is taken mutate in place.
//!
//! Failure model: the `server.publish` failpoint sits between the
//! committed write and the snapshot swap. When it fires, the writer is
//! rebuilt from the still-published snapshot, so a failed publish leaves
//! writer and readers agreeing on the pre-write state — the write
//! reports an error and has no partial effect anywhere.

use sheetmusiq::{ScriptHost, Session};
use spreadsheet_algebra::{Engine, PagedSheet, Result, SheetError, Spreadsheet};
use ssa_relation::{Catalog, Relation, Tuple, Value};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

/// An immutable, atomically published view of one sheet's base data.
#[derive(Debug, Clone)]
pub struct SheetSnapshot {
    /// Sheet (relation) name.
    pub name: String,
    /// The base relation; shared with the writer until its next edit.
    pub base: Arc<Relation>,
    /// Monotone data version at publish time (see `Spreadsheet::version`).
    pub version: u64,
}

/// One hosted sheet: serialized writer + published snapshot.
#[derive(Debug)]
pub struct SheetHost {
    name: String,
    writer: Mutex<Spreadsheet>,
    published: RwLock<Arc<SheetSnapshot>>,
}

/// Poison-safe lock: the data under these locks is kept consistent by
/// the §12 transactional edits, so a panicking writer leaves a valid
/// (pre- or post-publish) state behind and the guard can be recovered.
fn lock_writer(m: &Mutex<Spreadsheet>) -> MutexGuard<'_, Spreadsheet> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl SheetHost {
    /// Host a relation, publishing its initial snapshot at version 0.
    pub fn new(relation: Relation) -> SheetHost {
        let name = relation.name().to_string();
        let writer = Spreadsheet::over(relation);
        let snapshot = Arc::new(SheetSnapshot {
            name: name.clone(),
            base: writer.base_arc(),
            version: writer.version(),
        });
        SheetHost {
            name,
            writer: Mutex::new(writer),
            published: RwLock::new(snapshot),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// The currently published snapshot (lock-free for practical
    /// purposes: a short read lock around one `Arc` clone).
    pub fn snapshot(&self) -> Arc<SheetSnapshot> {
        match self.published.read() {
            Ok(g) => Arc::clone(&g),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Apply one base edit on the serialized writer and publish the
    /// resulting snapshot. Returns the new data version.
    ///
    /// The edit itself is transactional inside `Spreadsheet` (§12); the
    /// publish step carries the `server.publish` failpoint. If publish
    /// fails the writer is rebuilt from the published snapshot, so the
    /// committed-but-unpublished write is rolled back and the next write
    /// starts from exactly what readers see.
    fn commit<T>(&self, op: impl FnOnce(&mut Spreadsheet) -> Result<T>) -> Result<(T, u64)> {
        let mut writer = lock_writer(&self.writer);
        let out = op(&mut writer)?;
        // A panicking publish (the failpoint's `Panic` behavior) must be
        // as harmless as an erroring one: catch it, roll back, surface a
        // typed error — the caller's connection reports 500, everyone
        // else keeps reading the old snapshot.
        let published = std::panic::catch_unwind(Self::publish_guard).unwrap_or_else(|payload| {
            let site = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "server.publish panicked".to_string());
            Err(SheetError::Relation(
                ssa_relation::RelationError::WorkerPanicked { site },
            ))
        });
        match published {
            Ok(()) => {
                let snapshot = Arc::new(SheetSnapshot {
                    name: self.name.clone(),
                    base: writer.base_arc(),
                    version: writer.version(),
                });
                let version = snapshot.version;
                match self.published.write() {
                    Ok(mut g) => *g = snapshot,
                    Err(poisoned) => *poisoned.into_inner() = snapshot,
                }
                Ok((out, version))
            }
            Err(e) => {
                let snapshot = self.snapshot();
                let mut fresh = Spreadsheet::over_shared(Arc::clone(&snapshot.base));
                fresh.set_version(snapshot.version);
                *writer = fresh;
                Err(e)
            }
        }
    }

    /// The `server.publish` failpoint, between commit and snapshot swap.
    fn publish_guard() -> Result<()> {
        ssa_relation::fault_check!("server.publish");
        Ok(())
    }

    /// Append rows; returns (rows appended, new version).
    pub fn append_rows(&self, rows: Vec<Tuple>) -> Result<(usize, u64)> {
        let n = rows.len();
        let (_, version) = self.commit(move |w| w.append_rows(rows))?;
        Ok((n, version))
    }

    /// Delete base rows by id; returns the new version.
    pub fn delete_rows(&self, ids: &[u32]) -> Result<u64> {
        let (_, version) = self.commit(|w| w.delete_rows(ids))?;
        Ok(version)
    }

    /// Update one base cell; returns the new version.
    pub fn update_cell(&self, row: u32, column: &str, value: Value) -> Result<u64> {
        let (_, version) = self.commit(|w| w.update_cell(row, column, value))?;
        Ok(version)
    }
}

/// One HTTP session: a `sheetmusiq` script host whose engine is pinned
/// to a published snapshot of its sheet.
#[derive(Debug)]
pub struct SessionSlot {
    /// Name of the hosted sheet this session reads.
    pub sheet: String,
    /// Version of the snapshot the session is currently pinned to.
    pub version: u64,
    /// The scriptable session driving `sheetmusiq` actions.
    pub script: ScriptHost,
}

/// One registered sheet: either a live [`SheetHost`] or a still-on-disk
/// [`PagedSheet`] that materializes on first touch.
///
/// Sheets opened from the binary paged store register with only their
/// head/footer/meta read — schema and row count are known, row data is
/// not. The first request that needs the sheet (a session, a write)
/// resolves the slot: the paged source loads its columns, becomes a
/// relation, and the resulting host is cached in the `OnceLock` for
/// every later request. A failed materialization puts the source back,
/// so a transient I/O error is retryable and never wedges the slot.
#[derive(Debug)]
struct SheetSlot {
    host: OnceLock<Arc<SheetHost>>,
    pending: Mutex<Option<PagedSheet>>,
    /// Stored row count for listings before materialization.
    rows: usize,
}

impl SheetSlot {
    fn ready(host: Arc<SheetHost>) -> SheetSlot {
        let rows = host.snapshot().base.len();
        let slot = SheetSlot {
            host: OnceLock::new(),
            pending: Mutex::new(None),
            rows,
        };
        let _ = slot.host.set(host);
        slot
    }

    fn paged(paged: PagedSheet) -> SheetSlot {
        let rows = paged.row_count();
        SheetSlot {
            host: OnceLock::new(),
            pending: Mutex::new(Some(paged)),
            rows,
        }
    }

    fn is_loaded(&self) -> bool {
        self.host.get().is_some()
    }

    /// The live host, materializing the paged source on first touch.
    fn resolve(&self, name: &str) -> Result<Arc<SheetHost>> {
        if let Some(h) = self.host.get() {
            return Ok(Arc::clone(h));
        }
        let mut pending = match self.pending.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Double-check under the lock: another thread may have finished
        // materializing while this one waited.
        if let Some(h) = self.host.get() {
            return Ok(Arc::clone(h));
        }
        let paged = pending.take().ok_or_else(|| SheetError::Persist {
            message: format!("sheet `{name}` has no live host and no paged source"),
        })?;
        match paged.materialize() {
            Ok(stored) => {
                let mut relation = stored.relation;
                relation.set_name(name.to_string());
                let host = Arc::new(SheetHost::new(relation));
                let host = match self.host.set(host) {
                    Ok(()) => Arc::clone(self.host.get().ok_or_else(|| SheetError::Persist {
                        message: "sheet host vanished after set".into(),
                    })?),
                    // Unreachable in practice (set happens under the
                    // pending lock), but losing the race is harmless:
                    // use whoever won.
                    Err(_) => Arc::clone(self.host.get().ok_or_else(|| SheetError::Persist {
                        message: "sheet host vanished after race".into(),
                    })?),
                };
                Ok(host)
            }
            Err(e) => {
                *pending = Some(paged);
                Err(e)
            }
        }
    }
}

/// The whole server: named sheet slots plus live sessions.
#[derive(Debug, Default)]
pub struct ServerState {
    sheets: RwLock<BTreeMap<String, Arc<SheetSlot>>>,
    sessions: Mutex<BTreeMap<u64, Arc<Mutex<SessionSlot>>>>,
    next_session: AtomicU64,
}

impl ServerState {
    pub fn new() -> ServerState {
        ServerState::default()
    }

    /// Host a relation under its own name. Errors if the name is taken.
    pub fn create_sheet(&self, relation: Relation) -> Result<u64> {
        let name = relation.name().to_string();
        let mut sheets = match self.sheets.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if sheets.contains_key(&name) {
            return Err(SheetError::Persist {
                message: format!("sheet `{name}` already exists"),
            });
        }
        let host = Arc::new(SheetHost::new(relation));
        let version = host.snapshot().version;
        sheets.insert(name, Arc::new(SheetSlot::ready(host)));
        Ok(version)
    }

    /// Register a sheet straight from a binary paged file: only the
    /// head, footer and meta frames are read here — row data stays on
    /// disk until the first session or write touches the sheet. Returns
    /// the registered name and the stored row count.
    pub fn open_sheet_file(&self, path: impl AsRef<Path>) -> Result<(String, usize)> {
        let paged = spreadsheet_algebra::open_paged(path)?;
        let name = paged.name().to_string();
        let rows = paged.row_count();
        let mut sheets = match self.sheets.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if sheets.contains_key(&name) {
            return Err(SheetError::Persist {
                message: format!("sheet `{name}` already exists"),
            });
        }
        sheets.insert(name.clone(), Arc::new(SheetSlot::paged(paged)));
        Ok((name, rows))
    }

    fn slot(&self, name: &str) -> Result<Arc<SheetSlot>> {
        let sheets = match self.sheets.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        sheets
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| SheetError::UnknownSheet {
                name: name.to_string(),
            })
    }

    /// Look up a hosted sheet, materializing a paged one on first touch.
    pub fn host(&self, name: &str) -> Result<Arc<SheetHost>> {
        self.slot(name)?.resolve(name)
    }

    /// Whether a sheet is registered under `name` (live or still paged),
    /// without forcing materialization.
    pub fn sheet_exists(&self, name: &str) -> bool {
        self.slot(name).is_ok()
    }

    /// Whether the named sheet is materialized in memory (false while a
    /// paged sheet is still waiting on disk for its first touch).
    pub fn sheet_loaded(&self, name: &str) -> Result<bool> {
        Ok(self.slot(name)?.is_loaded())
    }

    /// Stored row count without forcing materialization.
    pub fn sheet_rows(&self, name: &str) -> Result<usize> {
        Ok(self.slot(name)?.rows)
    }

    /// Names of all hosted sheets, sorted.
    pub fn sheet_names(&self) -> Vec<String> {
        let sheets = match self.sheets.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        sheets.keys().cloned().collect()
    }

    /// Open a session over the named sheet's current snapshot.
    /// Returns (session id, pinned snapshot version).
    pub fn create_session(&self, sheet: &str) -> Result<(u64, u64)> {
        let snapshot = self.host(sheet)?.snapshot();
        let slot = session_over(&snapshot);
        let id = self.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        let mut sessions = match self.sessions.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let version = slot.version;
        sessions.insert(id, Arc::new(Mutex::new(slot)));
        Ok((id, version))
    }

    /// Look up a live session by id.
    pub fn session(&self, id: u64) -> Result<Arc<Mutex<SessionSlot>>> {
        let sessions = match self.sessions.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        sessions
            .get(&id)
            .map(Arc::clone)
            .ok_or_else(|| SheetError::Persist {
                message: format!("no session {id}"),
            })
    }

    /// Close a session; returns whether it existed.
    pub fn drop_session(&self, id: u64) -> bool {
        let mut sessions = match self.sessions.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        sessions.remove(&id).is_some()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        let sessions = match self.sessions.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        sessions.len()
    }

    /// Re-pin a session to its sheet's latest snapshot, keeping the
    /// session's query state (selections, grouping, aggregates) intact —
    /// the paper's Sec. V split makes this a pure base swap + re-eval.
    pub fn refresh_session(&self, id: u64) -> Result<u64> {
        let slot = self.session(id)?;
        let mut slot = match slot.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let snapshot = self.host(&slot.sheet)?.snapshot();
        if snapshot.version == slot.version {
            return Ok(slot.version);
        }
        slot.script
            .session
            .engine()?
            .sheet_mut()
            .rebase(Arc::clone(&snapshot.base))?;
        slot.version = snapshot.version;
        Ok(slot.version)
    }
}

/// Build a session slot pinned to a snapshot: the engine shares the
/// snapshot's base `Arc` — no data is copied until the host's writer
/// edits it, and then only on the writer's side.
pub fn session_over(snapshot: &SheetSnapshot) -> SessionSlot {
    let engine = Engine::over_shared(Arc::clone(&snapshot.base));
    let mut session = Session::new(Catalog::new());
    session.adopt(engine);
    SessionSlot {
        sheet: snapshot.name.clone(),
        version: snapshot.version,
        script: ScriptHost::new(session),
    }
}
