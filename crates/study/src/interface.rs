//! Cost/error models of the two interfaces under study.
//!
//! Mechanisms (not conclusions) are encoded from the paper:
//!
//! * **SheetMusiq** (Sec. VI): every operator is a context-menu gesture
//!   with at most one small dialog; each step's effect is immediately
//!   visible, so mechanical slips are caught at once. No syntax exists,
//!   so no syntax errors.
//! * **Visual builder** ("Navicat", Sec. VII-A.4): "only queries with
//!   simple selection, sorting, and joins can be built graphically, while
//!   the vast majority of the queries need to be completed by adding to
//!   the SQL query". Grouping/aggregation/HAVING therefore require
//!   composing SQL text — long conceptual pauses for non-technical users,
//!   a syntax-error retry loop, and a sub-query for selection over an
//!   aggregate. "Users never stuck on syntactical errors in SheetMusiq,
//!   which often happen in Navicat."
//!
//! Times come from the KLM gesture costs in [`crate::klm`]; per-subject
//! pace/aptitude and learning curves from [`crate::subject`].

use crate::klm;
use crate::subject::{learning_factor, Subject};
use ssa_relation::rng::Rng;
use ssa_tpch::{Complexity, QueryTask, TaskProfile};

/// Which interface a run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    SheetMusiq,
    VisualBuilder,
}

impl Tool {
    pub fn name(self) -> &'static str {
        match self {
            Tool::SheetMusiq => "SheetMusiq",
            Tool::VisualBuilder => "Navicat",
        }
    }
}

/// Outcome of one subject attempting one task with one tool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attempt {
    pub seconds: f64,
    pub correct: bool,
}

/// The 900-second cap: "if a user did not finish the query in 900
/// seconds, the task was considered finished with wrong results, and the
/// time was counted as 900 seconds" (Sec. VII-A.1).
pub const TIME_CAP: f64 = 900.0;

/// Context of one attempt within the protocol.
#[derive(Debug, Clone, Copy)]
pub struct AttemptContext {
    /// Tasks already completed with this tool (drives learning).
    pub prior_tasks_with_tool: usize,
    /// Whether the subject already solved this task with the other tool.
    pub second_encounter: bool,
}

/// Simulate one attempt.
pub fn attempt(
    tool: Tool,
    task: &QueryTask,
    profile: &TaskProfile,
    subject: &Subject,
    ctx: &AttemptContext,
    rng: &mut Rng,
) -> Attempt {
    let base = match tool {
        Tool::SheetMusiq => sheetmusiq_time(profile, subject, rng),
        Tool::VisualBuilder => builder_time(profile, subject, rng),
    };
    // The builder's slow pickup is about its SQL fallback ("users have no
    // choice but to understand the concept and syntax of grouping…");
    // its graphical grid is learned as quickly as SheetMusiq.
    let fast_pickup = matches!(tool, Tool::SheetMusiq) || !profile.needs_sql_fallback();
    let learning = learning_factor(fast_pickup, ctx.prior_tasks_with_tool);
    // Measuring starts after the subject understood the query, so a
    // second encounter only saves a little strategy time.
    let encounter = if ctx.second_encounter { 0.95 } else { 1.0 };
    let noise = (rng.gen_range(-0.10..0.10f64)).exp();
    let mut seconds = base * subject.pace * learning * encounter * noise;

    // Conceptual-error model: a misunderstanding either ships a wrong
    // answer or costs a detect-and-repair episode.
    let mut correct = true;
    let p_err = conceptual_error_probability(tool, task.complexity, subject);
    if rng.gen_range(0.0..1.0) < p_err {
        let ships_wrong = match tool {
            // Immediate visible intermediate results catch half of the
            // misunderstandings before the end.
            Tool::SheetMusiq => rng.gen_range(0.0..1.0) < 0.5,
            Tool::VisualBuilder => rng.gen_range(0.0..1.0) < 0.75,
        };
        if ships_wrong {
            correct = false;
        } else {
            seconds += match tool {
                Tool::SheetMusiq => rng.gen_range(30.0..70.0),
                Tool::VisualBuilder => rng.gen_range(60.0..150.0),
            };
        }
    }

    if seconds >= TIME_CAP {
        Attempt {
            seconds: TIME_CAP,
            correct: false,
        }
    } else {
        Attempt { seconds, correct }
    }
}

/// Flawless-path SheetMusiq time for a task, plus mechanical slips.
pub fn sheetmusiq_time(profile: &TaskProfile, subject: &Subject, rng: &mut Rng) -> f64 {
    // Orientation: decide the first step.
    let mut t = 2.0 * klm::M;
    // Selections: context menu on the column, one predicate field, OK.
    t += profile.selections as f64
        * (klm::menu_choose() + klm::dialog_field(14) + klm::confirm() + klm::GLANCE);
    // Grouping: context menu + the add-to-grouping choice.
    t += profile.groupings as f64 * (klm::menu_choose() + klm::confirm() + klm::GLANCE);
    // Aggregation: context menu + function choice + level choice.
    t += profile.aggregates as f64 * (klm::menu_choose() + 2.0 * klm::point_click() + klm::GLANCE);
    // Group qualification = a selection over the aggregate column.
    t += profile.having_predicates as f64
        * (klm::menu_choose() + klm::dialog_field(14) + klm::confirm() + klm::GLANCE);
    // Ordering: header click (+ level prompt under grouping).
    let level_prompt = if profile.groupings > 0 {
        klm::point_click()
    } else {
        0.0
    };
    t += profile.orderings as f64 * (klm::M + klm::point_click() + level_prompt + klm::GLANCE);
    // Projections: one checkbox each.
    if profile.projections > 0 {
        t += klm::M + profile.projections as f64 * klm::point_click();
    }
    // Mechanical slips: caught immediately (visible effect), fixed by undo.
    let steps = profile.total_steps().max(1);
    for _ in 0..steps {
        if rng.gen_range(0.0..1.0) < subject.slip_rate {
            t += klm::M + 2.0 * klm::point_click(); // notice + undo + redo
        }
    }
    t
}

/// Flawless-path visual-builder time, including the SQL-text fallback.
///
/// The graphical part (simple selection, sorting, projection) is roughly
/// as fast as SheetMusiq — "the three query tasks are relatively simple,
/// and subjects can finish both in a short time" (Sec. VII-A.2). The
/// cost explosion comes from the SQL-text fallback for grouping,
/// aggregation and group qualification.
pub fn builder_time(profile: &TaskProfile, subject: &Subject, rng: &mut Rng) -> f64 {
    // Orientation across the two windows (diagram + SQL text).
    let mut t = 2.0 * klm::M + klm::point_click() + klm::CLICK;
    // Graphical part: the criteria grid handles plain predicates well.
    t += profile.selections as f64 * (klm::menu_choose() + klm::dialog_field(12) + klm::confirm());
    t += profile.orderings as f64 * (klm::M + klm::point_click() + klm::B);
    if profile.projections > 0 {
        t += klm::M + profile.projections as f64 * (klm::point_click() - klm::B);
    }

    if profile.needs_sql_fallback() {
        let inaptitude = 1.0 - subject.sql_aptitude;
        // Conceptual pauses per concept the task requires: grouping,
        // aggregation, group qualification. Non-technical subjects must
        // "understand the concept and syntax of grouping, as well as many
        // related restrictions" with no visual feedback to lean on.
        let mut concepts = 0.0;
        if profile.groupings > 0 {
            concepts += 1.0;
        }
        if profile.aggregates > 0 {
            concepts += 1.0;
        }
        if profile.having_predicates > 0 {
            // HAVING (or filtering on an aggregate) needs a sub-query in
            // the builder: "a very difficult concept for non-expert
            // users" — two extra concepts' worth of pondering.
            concepts += 2.0;
        }
        t += concepts * (25.0 + 80.0 * inaptitude);
        // Per-item syntax recall and composition on top of the concepts.
        t += profile.aggregates as f64 * (12.0 + 25.0 * inaptitude);
        t += profile.groupings as f64 * (10.0 + 28.0 * inaptitude);
        // Typing the clause text.
        let chars =
            profile.groupings * 18 + profile.aggregates * 16 + profile.having_predicates * 26;
        t += klm::M * concepts + klm::type_chars(chars);
        // Syntax-error retry loop: success probability grows with
        // aptitude; each failure costs reading the error, editing, rerun.
        let p_ok = 0.5 + 0.45 * subject.sql_aptitude;
        let mut attempts = 0;
        while rng.gen_range(0.0..1.0) > p_ok && attempts < 8 {
            attempts += 1;
            t += 2.0 * klm::M + klm::type_chars(15) + klm::point_click() + 4.0;
        }
        // Run the query and inspect.
        t += klm::point_click() + klm::GLANCE;
    }
    t
}

/// Probability of a conceptual misunderstanding for a task.
pub fn conceptual_error_probability(tool: Tool, complexity: Complexity, subject: &Subject) -> f64 {
    match tool {
        Tool::SheetMusiq => match complexity {
            Complexity::Simple => 0.01,
            Complexity::Moderate => 0.05,
            Complexity::Complex => 0.14,
        },
        Tool::VisualBuilder => {
            let inaptitude = 1.0 - subject.sql_aptitude;
            match complexity {
                Complexity::Simple => 0.03,
                Complexity::Moderate => 0.12 + 0.15 * inaptitude,
                Complexity::Complex => 0.25 + 0.35 * inaptitude,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_tpch::study_setup;

    fn profiles() -> Vec<(QueryTask, TaskProfile)> {
        let (catalog, tasks) = study_setup(0.02, 1);
        tasks
            .into_iter()
            .map(|t| {
                let p = t.profile(&catalog);
                (t, p)
            })
            .collect()
    }

    #[test]
    fn sheetmusiq_beats_builder_on_complex_tasks_for_every_subject() {
        let mut rng = Rng::seed_from_u64(1);
        for (task, profile) in profiles() {
            if !matches!(task.complexity, Complexity::Complex) {
                continue;
            }
            for s in crate::subject::Subject::panel(1) {
                let mu = sheetmusiq_time(&profile, &s, &mut rng);
                let nv = builder_time(&profile, &s, &mut rng);
                assert!(
                    nv > 1.5 * mu,
                    "task {}: builder {nv:.0}s vs musiq {mu:.0}s for subject {}",
                    task.id,
                    s.id
                );
            }
        }
    }

    #[test]
    fn simple_tasks_are_comparable() {
        let mut rng = Rng::seed_from_u64(2);
        for (task, profile) in profiles() {
            if !matches!(task.complexity, Complexity::Simple) {
                continue;
            }
            let s = crate::subject::Subject::sample(0, 1);
            let mu = sheetmusiq_time(&profile, &s, &mut rng);
            let nv = builder_time(&profile, &s, &mut rng);
            assert!(
                nv < 2.0 * mu,
                "task {} should be comparable: {nv:.0} vs {mu:.0}",
                task.id
            );
        }
    }

    #[test]
    fn attempts_respect_time_cap() {
        let (catalog, tasks) = study_setup(0.02, 1);
        let profile = tasks[0].profile(&catalog);
        let slow = Subject {
            id: 99,
            pace: 1.9,
            sql_aptitude: 0.1,
            slip_rate: 0.08,
            prefers_progressive: true,
        };
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..200 {
            let a = attempt(
                Tool::VisualBuilder,
                &tasks[0],
                &profile,
                &slow,
                &AttemptContext {
                    prior_tasks_with_tool: 0,
                    second_encounter: false,
                },
                &mut rng,
            );
            assert!(a.seconds <= TIME_CAP);
            if a.seconds == TIME_CAP {
                assert!(!a.correct);
            }
        }
    }

    #[test]
    fn error_probabilities_ordered_by_tool_and_complexity() {
        let s = Subject::sample(0, 1);
        for c in [
            Complexity::Simple,
            Complexity::Moderate,
            Complexity::Complex,
        ] {
            assert!(
                conceptual_error_probability(Tool::SheetMusiq, c, &s)
                    < conceptual_error_probability(Tool::VisualBuilder, c, &s)
            );
        }
        assert!(
            conceptual_error_probability(Tool::SheetMusiq, Complexity::Simple, &s)
                < conceptual_error_probability(Tool::SheetMusiq, Complexity::Complex, &s)
        );
    }

    #[test]
    fn tool_names() {
        assert_eq!(Tool::SheetMusiq.name(), "SheetMusiq");
        assert_eq!(Tool::VisualBuilder.name(), "Navicat");
    }
}
