//! Seed-sensitivity sweep: how robust the reproduced study conclusions
//! are to the random draw of the participant panel and of the error/noise
//! events.
//!
//! The paper reports one study with ten humans; a simulation can rerun it
//! many times. The headline *shape* — SheetMusiq faster on the
//! concept-heavy queries with Mann-Whitney significance, comparable on
//! the simple ones, more correct overall — should hold for (almost) every
//! seed, not just the default. `repro sensitivity` prints this table;
//! tests pin the expected robustness.

use crate::interface::Tool;
use crate::protocol::{run_study, StudyConfig};
use crate::report::{correctness_significance, speed_significance};
use std::fmt::Write as _;

/// The simple tasks (paper: 5, 7, 10 — speed comparable on both tools).
pub const SIMPLE_TASKS: [usize; 3] = [5, 7, 10];

/// Outcome of one seeded study run, reduced to the headline claims.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityRow {
    pub seed: u64,
    /// Correct totals out of 100.
    pub musiq_correct: usize,
    pub navicat_correct: usize,
    /// Two-sided Fisher p on the correctness table.
    pub fisher_p: f64,
    /// Of the 7 non-simple queries, how many reach p < 0.002.
    pub significant_complex: usize,
    /// Of the 3 simple queries, how many (incorrectly) reach p < 0.002.
    pub significant_simple: usize,
    /// Mean total time per subject, per tool (seconds).
    pub musiq_mean_total: f64,
    pub navicat_mean_total: f64,
}

impl SensitivityRow {
    /// Does this run reproduce the paper's qualitative conclusions?
    pub fn reproduces_paper_shape(&self) -> bool {
        self.musiq_correct > self.navicat_correct
            && self.musiq_mean_total < self.navicat_mean_total
            && self.significant_complex == 7
            && self.significant_simple == 0
    }
}

/// Run the study once per seed and reduce each run.
pub fn sweep(seeds: &[u64], scale: f64) -> Vec<SensitivityRow> {
    seeds
        .iter()
        .map(|&seed| {
            let result = run_study(&StudyConfig {
                seed,
                scale,
                verify_system: false,
            });
            let (musiq_correct, navicat_correct, fisher_p) = correctness_significance(&result);
            let mut significant_complex = 0;
            let mut significant_simple = 0;
            for (task, mw) in speed_significance(&result) {
                let significant = mw.p_two_sided < 0.002;
                if SIMPLE_TASKS.contains(&task) {
                    significant_simple += significant as usize;
                } else {
                    significant_complex += significant as usize;
                }
            }
            let n = result.subjects.len() as f64;
            let musiq_mean_total = (0..result.subjects.len())
                .map(|s| result.subject_total_time(s, Tool::SheetMusiq))
                .sum::<f64>()
                / n;
            let navicat_mean_total = (0..result.subjects.len())
                .map(|s| result.subject_total_time(s, Tool::VisualBuilder))
                .sum::<f64>()
                / n;
            SensitivityRow {
                seed,
                musiq_correct,
                navicat_correct,
                fisher_p,
                significant_complex,
                significant_simple,
                musiq_mean_total,
                navicat_mean_total,
            }
        })
        .collect()
}

/// Render the sweep as a text table.
pub fn render_sweep(rows: &[SensitivityRow]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:>6} {:>9} {:>9} {:>10} {:>8} {:>8} {:>10} {:>10} {:>6}",
        "seed",
        "musiq-ok",
        "nvcat-ok",
        "fisher-p",
        "sig 7/7",
        "sig 0/3",
        "musiq-tot",
        "nvcat-tot",
        "shape"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>6} {:>9} {:>9} {:>10.5} {:>8} {:>8} {:>10.0} {:>10.0} {:>6}",
            r.seed,
            r.musiq_correct,
            r.navicat_correct,
            r.fisher_p,
            format!("{}/7", r.significant_complex),
            format!("{}/3", r.significant_simple),
            r.musiq_mean_total,
            r.navicat_mean_total,
            if r.reproduces_paper_shape() {
                "yes"
            } else {
                "NO"
            }
        )
        .unwrap();
    }
    let ok = rows.iter().filter(|r| r.reproduces_paper_shape()).count();
    writeln!(
        out,
        "\n{ok}/{} seeds reproduce the paper's qualitative shape",
        rows.len()
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_across_many_seeds() {
        let rows = sweep(&(1..=10).collect::<Vec<u64>>(), 0.02);
        assert_eq!(rows.len(), 10);
        let ok = rows.iter().filter(|r| r.reproduces_paper_shape()).count();
        assert!(
            ok >= 9,
            "paper shape must be robust: only {ok}/10 seeds reproduce it\n{}",
            render_sweep(&rows)
        );
        // Correctness gap direction holds for every seed.
        for r in &rows {
            assert!(r.musiq_correct > r.navicat_correct, "seed {}", r.seed);
            assert!(r.musiq_mean_total < r.navicat_mean_total, "seed {}", r.seed);
        }
    }

    #[test]
    fn fisher_usually_significant() {
        let rows = sweep(&(1..=10).collect::<Vec<u64>>(), 0.02);
        // The paper's p < 0.004; the exact value fluctuates with the
        // panel, but a large majority of runs land under 0.05.
        let significant = rows.iter().filter(|r| r.fisher_p < 0.05).count();
        assert!(significant >= 8, "{}", render_sweep(&rows));
    }

    #[test]
    fn render_is_complete() {
        let rows = sweep(&[1, 2], 0.02);
        let text = render_sweep(&rows);
        assert!(text.contains("seed"));
        assert_eq!(text.lines().count(), 1 + 2 + 2);
    }
}
