//! # ssa-study — the simulated user study (Sec. VII)
//!
//! The paper's evaluation is a human-subjects study; this crate is the
//! documented substitution (see DESIGN.md): ten simulated non-technical
//! participants complete the ten TPC-H-derived tasks with both SheetMusiq
//! and a Navicat-style visual query builder.
//!
//! * [`klm`] — Keystroke-Level Model gesture times;
//! * [`subject`] — participant attributes and learning curves;
//! * [`interface`] — per-tool cost/error models encoding the *mechanisms*
//!   Sec. VII-A.4 describes (direct manipulation vs SQL-text fallback);
//! * [`protocol`] — the alternating-order protocol with the 900 s cap,
//!   plus verification that every task's answer is actually computed by
//!   the spreadsheet algebra and matches the SQL reference;
//! * [`report`] — Figs. 3–5, the Mann-Whitney/Fisher significance tests,
//!   and Table VI.

pub mod interface;
pub mod klm;
pub mod protocol;
pub mod report;
pub mod sensitivity;
pub mod subject;

pub use interface::{attempt, Attempt, AttemptContext, Tool, TIME_CAP};
pub use protocol::{run_study, StudyConfig, StudyResult, TaskRun};
pub use report::{
    complexity_breakdown, correctness_significance, fig3_speed, fig4_stddev, fig5_correctness,
    render_report, speed_significance, speed_significance_paired, table6_subjective, ComplexityRow,
    CorrectnessStat, QueryStat, Subjective,
};
pub use sensitivity::{render_sweep, sweep, SensitivityRow};
pub use subject::{learning_factor, Subject};
