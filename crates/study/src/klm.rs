//! Keystroke-Level Model (KLM) operator times.
//!
//! The substitution for human subjects (see DESIGN.md): task times in both
//! interfaces are decomposed into the classic KLM operators of Card,
//! Moran & Newell — keystrokes, pointing, button presses, homing and
//! mental preparation. The *structure* of each interface (which steps are
//! point-and-click, which require composing SQL text, which loop on
//! syntax errors) comes from the paper's Secs. VI and VII-A.4; KLM
//! supplies the per-gesture timing.

/// One keystroke (average skilled typist), seconds.
pub const K: f64 = 0.28;
/// Point with the mouse to a target.
pub const P: f64 = 1.1;
/// Mouse button press or release (a click is 2·B).
pub const B: f64 = 0.1;
/// Home hands between keyboard and mouse.
pub const H: f64 = 0.4;
/// Mental preparation for a unit action.
pub const M: f64 = 1.35;

/// A full mouse click.
pub const CLICK: f64 = 2.0 * B;

/// Point somewhere and click it.
pub fn point_click() -> f64 {
    P + CLICK
}

/// Open a context menu and choose an entry: point, right-click, point at
/// the entry, click.
pub fn menu_choose() -> f64 {
    M + point_click() + point_click()
}

/// Type `n` characters (with homing onto the keyboard first).
pub fn type_chars(n: usize) -> f64 {
    H + n as f64 * K
}

/// Fill one field of a dialog: point at it, click, type.
pub fn dialog_field(chars: usize) -> f64 {
    point_click() + type_chars(chars)
}

/// Confirm a dialog (point at OK, click).
pub fn confirm() -> f64 {
    point_click()
}

/// Glance at the updated data view to check the effect of a step —
/// the "rapid incremental reversible operations whose impact ... is
/// immediately visible" loop of direct manipulation.
pub const GLANCE: f64 = 0.8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_gestures_sum_components() {
        assert!((point_click() - 1.3).abs() < 1e-9);
        assert!((menu_choose() - (1.35 + 1.3 + 1.3)).abs() < 1e-9);
        assert!((type_chars(10) - (0.4 + 2.8)).abs() < 1e-9);
        assert!((dialog_field(5) - (1.3 + 0.4 + 1.4)).abs() < 1e-9);
    }

    #[test]
    fn magnitudes_are_plausible() {
        // A simple selection via context menu + one dialog field + confirm
        // should land in the 5–15 s range for an expert.
        let t = menu_choose() + dialog_field(12) + confirm() + GLANCE;
        assert!((5.0..15.0).contains(&t), "t = {t}");
    }
}
