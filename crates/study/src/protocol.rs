//! The study protocol (Sec. VII-A.1), simulated.
//!
//! Ten subjects each complete all ten TPC-H-derived tasks with both
//! tools. "Since the software that is used first has a potential
//! disadvantage, we alternate the order of which software was used first
//! for the queries. In the end, each package was used first half the
//! time." Timing starts once the subject understands the task; 900 s
//! unfinished counts as wrong at 900 s.
//!
//! Before simulating humans, the protocol (optionally) *verifies the
//! system*: every task is executed through the real spreadsheet algebra
//! (the Theorem-1 translation) and checked against the SQL reference
//! evaluator — the simulated subjects' "correct answers" are answers the
//! reproduction actually computes.

use crate::interface::{attempt, Attempt, AttemptContext, Tool};
use crate::subject::Subject;
use ssa_relation::rng::Rng;
use ssa_sql::{eval_select, translate};
use ssa_tpch::{study_setup, QueryTask, TaskProfile};

/// One (subject, task, tool) outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRun {
    pub subject: usize,
    /// 1-based task id.
    pub task: usize,
    pub tool: Tool,
    pub seconds: f64,
    pub correct: bool,
}

/// The full study outcome.
#[derive(Debug, Clone)]
pub struct StudyResult {
    pub runs: Vec<TaskRun>,
    pub subjects: Vec<Subject>,
    pub tasks: Vec<QueryTask>,
}

impl StudyResult {
    /// Times for one task under one tool, across subjects.
    pub fn times(&self, task: usize, tool: Tool) -> Vec<f64> {
        self.runs
            .iter()
            .filter(|r| r.task == task && r.tool == tool)
            .map(|r| r.seconds)
            .collect()
    }

    /// Number of correct completions for one task under one tool.
    pub fn correct_count(&self, task: usize, tool: Tool) -> usize {
        self.runs
            .iter()
            .filter(|r| r.task == task && r.tool == tool && r.correct)
            .count()
    }

    /// Total correct out of 100 for a tool.
    pub fn total_correct(&self, tool: Tool) -> usize {
        self.runs
            .iter()
            .filter(|r| r.tool == tool && r.correct)
            .count()
    }

    /// A subject's total time with a tool.
    pub fn subject_total_time(&self, subject: usize, tool: Tool) -> f64 {
        self.runs
            .iter()
            .filter(|r| r.subject == subject && r.tool == tool)
            .map(|r| r.seconds)
            .sum()
    }

    /// A subject's wrong-answer count with a tool.
    pub fn subject_errors(&self, subject: usize, tool: Tool) -> usize {
        self.runs
            .iter()
            .filter(|r| r.subject == subject && r.tool == tool && !r.correct)
            .count()
    }
}

/// Study parameters.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Master seed: subjects, attempt noise and error events all derive
    /// from it.
    pub seed: u64,
    /// TPC-H scale factor for the verification data.
    pub scale: f64,
    /// Execute every task through the spreadsheet algebra and check it
    /// against the SQL reference before simulating subjects.
    pub verify_system: bool,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 2009,
            scale: 0.05,
            verify_system: true,
        }
    }
}

/// Run the simulated study.
///
/// # Panics
/// Panics if `verify_system` is set and the spreadsheet algebra disagrees
/// with the SQL reference on any task — that would mean the reproduction
/// itself is broken, not the simulated humans.
pub fn run_study(config: &StudyConfig) -> StudyResult {
    let (catalog, tasks) = study_setup(config.scale, config.seed);

    if config.verify_system {
        for task in &tasks {
            let stmt = task.stmt();
            let reference = eval_select(&stmt, &catalog)
                .unwrap_or_else(|e| panic!("task {} reference failed: {e}", task.id));
            let translated = translate(&stmt, &catalog)
                .unwrap_or_else(|e| panic!("task {} translation failed: {e}", task.id));
            let sheet_result = translated
                .result()
                .unwrap_or_else(|e| panic!("task {} sheet evaluation failed: {e}", task.id));
            assert!(
                ssa_sql::equivalent(&stmt, &reference, &sheet_result),
                "task {}: spreadsheet algebra disagrees with SQL reference",
                task.id
            );
        }
    }

    let profiles: Vec<TaskProfile> = tasks.iter().map(|t| t.profile(&catalog)).collect();
    let subjects = Subject::panel(config.seed);
    let mut rng = Rng::seed_from_u64(config.seed.wrapping_add(0xA11CE));
    let mut runs = Vec::with_capacity(subjects.len() * tasks.len() * 2);

    for subject in &subjects {
        let mut done_with: [usize; 2] = [0, 0]; // [musiq, builder]
        for (ti, task) in tasks.iter().enumerate() {
            // Alternate which tool goes first; across the 10×10 grid each
            // tool is first exactly half the time.
            let first = if (ti + subject.id) % 2 == 0 {
                Tool::SheetMusiq
            } else {
                Tool::VisualBuilder
            };
            let order = [first, other(first)];
            for (k, &tool) in order.iter().enumerate() {
                let idx = match tool {
                    Tool::SheetMusiq => 0,
                    Tool::VisualBuilder => 1,
                };
                let ctx = AttemptContext {
                    prior_tasks_with_tool: done_with[idx],
                    second_encounter: k == 1,
                };
                let Attempt { seconds, correct } =
                    attempt(tool, task, &profiles[ti], subject, &ctx, &mut rng);
                runs.push(TaskRun {
                    subject: subject.id,
                    task: task.id,
                    tool,
                    seconds,
                    correct,
                });
                done_with[idx] += 1;
            }
        }
    }

    StudyResult {
        runs,
        subjects,
        tasks,
    }
}

fn other(tool: Tool) -> Tool {
    match tool {
        Tool::SheetMusiq => Tool::VisualBuilder,
        Tool::VisualBuilder => Tool::SheetMusiq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> StudyResult {
        run_study(&StudyConfig {
            seed: 2009,
            scale: 0.02,
            verify_system: false,
        })
    }

    #[test]
    fn produces_two_hundred_runs() {
        let r = quick();
        assert_eq!(r.runs.len(), 200);
        assert_eq!(r.subjects.len(), 10);
        assert_eq!(r.tasks.len(), 10);
        for task in 1..=10 {
            assert_eq!(r.times(task, Tool::SheetMusiq).len(), 10);
            assert_eq!(r.times(task, Tool::VisualBuilder).len(), 10);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = quick();
        let b = quick();
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn verification_pass_runs_the_real_system() {
        // small scale so the test stays fast; panics on any disagreement
        let r = run_study(&StudyConfig {
            seed: 1,
            scale: 0.02,
            verify_system: true,
        });
        assert_eq!(r.runs.len(), 200);
    }

    #[test]
    fn times_bounded_by_cap() {
        let r = quick();
        assert!(r.runs.iter().all(|x| x.seconds > 0.0 && x.seconds <= 900.0));
    }

    #[test]
    fn accessors_consistent() {
        let r = quick();
        let total: usize = (1..=10).map(|t| r.correct_count(t, Tool::SheetMusiq)).sum();
        assert_eq!(total, r.total_correct(Tool::SheetMusiq));
        let per_subject: f64 = (0..10)
            .map(|s| r.subject_total_time(s, Tool::VisualBuilder))
            .sum();
        let all: f64 = r
            .runs
            .iter()
            .filter(|x| x.tool == Tool::VisualBuilder)
            .map(|x| x.seconds)
            .sum();
        assert!((per_subject - all).abs() < 1e-9);
    }
}
