//! Figure/table reports over a [`StudyResult`] — the artifacts of
//! Sec. VII: Fig. 3 (mean speed), Fig. 4 (speed standard deviation),
//! Fig. 5 (correctness), the significance tests, and Table VI
//! (subjective answers).

use crate::interface::Tool;
use crate::protocol::StudyResult;
use ssa_stats::{
    fisher_exact_two_sided, mann_whitney, mean, stddev_population, wilcoxon_signed_rank,
    MannWhitney, Table2x2, Wilcoxon,
};
use std::fmt::Write as _;

/// One row of Fig. 3 / Fig. 4: per-query statistic for both tools.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryStat {
    pub task: usize,
    pub navicat: f64,
    pub sheetmusiq: f64,
}

/// Fig. 3 — average completion time per query.
pub fn fig3_speed(result: &StudyResult) -> Vec<QueryStat> {
    (1..=result.tasks.len())
        .map(|task| QueryStat {
            task,
            navicat: mean(&result.times(task, Tool::VisualBuilder)).unwrap_or(0.0),
            sheetmusiq: mean(&result.times(task, Tool::SheetMusiq)).unwrap_or(0.0),
        })
        .collect()
}

/// Fig. 4 — standard deviation of completion times per query.
pub fn fig4_stddev(result: &StudyResult) -> Vec<QueryStat> {
    (1..=result.tasks.len())
        .map(|task| QueryStat {
            task,
            navicat: stddev_population(&result.times(task, Tool::VisualBuilder)).unwrap_or(0.0),
            sheetmusiq: stddev_population(&result.times(task, Tool::SheetMusiq)).unwrap_or(0.0),
        })
        .collect()
}

/// One row of Fig. 5: subjects (out of 10) finishing correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorrectnessStat {
    pub task: usize,
    pub navicat: usize,
    pub sheetmusiq: usize,
}

/// Fig. 5 — number of users completing each query correctly.
pub fn fig5_correctness(result: &StudyResult) -> Vec<CorrectnessStat> {
    (1..=result.tasks.len())
        .map(|task| CorrectnessStat {
            task,
            navicat: result.correct_count(task, Tool::VisualBuilder),
            sheetmusiq: result.correct_count(task, Tool::SheetMusiq),
        })
        .collect()
}

/// Per-query Mann-Whitney significance of the speed difference.
pub fn speed_significance(result: &StudyResult) -> Vec<(usize, MannWhitney)> {
    (1..=result.tasks.len())
        .map(|task| {
            let mu = result.times(task, Tool::SheetMusiq);
            let nv = result.times(task, Tool::VisualBuilder);
            (task, mann_whitney(&mu, &nv))
        })
        .collect()
}

/// Paired robustness check: the study design pairs the two tools per
/// subject, so a Wilcoxon signed-rank test per query is the stricter
/// analysis (the paper reports Mann-Whitney; conclusions agree).
pub fn speed_significance_paired(result: &StudyResult) -> Vec<(usize, Wilcoxon)> {
    (1..=result.tasks.len())
        .map(|task| {
            // order both samples by subject id so the pairing is real
            let pair = |tool: Tool| -> Vec<f64> {
                let mut v: Vec<(usize, f64)> = result
                    .runs
                    .iter()
                    .filter(|r| r.task == task && r.tool == tool)
                    .map(|r| (r.subject, r.seconds))
                    .collect();
                v.sort_by_key(|(s, _)| *s);
                v.into_iter().map(|(_, t)| t).collect()
            };
            let mu = pair(Tool::SheetMusiq);
            let nv = pair(Tool::VisualBuilder);
            (task, wilcoxon_signed_rank(&mu, &nv))
        })
        .collect()
}

/// Fisher's exact test on total correctness (95/100 vs 81/100 in the
/// paper).
pub fn correctness_significance(result: &StudyResult) -> (usize, usize, f64) {
    let musiq = result.total_correct(Tool::SheetMusiq);
    let navicat = result.total_correct(Tool::VisualBuilder);
    let n = result.runs.len() as u64 / 2;
    let table = Table2x2::from_successes(musiq as u64, n, navicat as u64, n);
    (musiq, navicat, fisher_exact_two_sided(&table))
}

/// Table VI — the four subjective questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subjective {
    /// "Which package do you prefer to use?" (SheetMusiq, Navicat)
    pub prefer: (usize, usize),
    /// "Seeing data helps formulate queries" (yes, no)
    pub seeing_data_helps: (usize, usize),
    /// "Progressive refinement is better than specifying all at once"
    pub progressive_better: (usize, usize),
    /// "Database concepts are easier in SheetMusiq"
    pub concepts_easier: (usize, usize),
}

/// Derive the subjective answers from each subject's experience.
pub fn table6_subjective(result: &StudyResult) -> Subjective {
    let mut prefer = (0, 0);
    let mut progressive = (0, 0);
    let mut concepts = (0, 0);
    let mut seeing = (0, 0);
    for s in &result.subjects {
        // Preference follows experienced speed and accuracy.
        let faster = result.subject_total_time(s.id, Tool::SheetMusiq)
            < result.subject_total_time(s.id, Tool::VisualBuilder);
        let fewer_errors = result.subject_errors(s.id, Tool::SheetMusiq)
            <= result.subject_errors(s.id, Tool::VisualBuilder);
        if faster || fewer_errors {
            prefer.0 += 1;
        } else {
            prefer.1 += 1;
        }
        // Everyone saw intermediate data only in SheetMusiq and finished
        // faster there on the concept-heavy tasks; the answer tracks the
        // same experience signal.
        if faster {
            seeing.0 += 1;
        } else {
            seeing.1 += 1;
        }
        if s.prefers_progressive {
            progressive.0 += 1;
        } else {
            progressive.1 += 1;
        }
        if fewer_errors {
            concepts.0 += 1;
        } else {
            concepts.1 += 1;
        }
    }
    Subjective {
        prefer,
        seeing_data_helps: seeing,
        progressive_better: progressive,
        concepts_easier: concepts,
    }
}

/// Per-complexity-class breakdown — where the gap comes from. The paper's
/// analysis (Sec. VII-A.4) attributes the difference to tasks that force
/// the builder into SQL text (grouping, aggregation, HAVING); splitting
/// the runs by task class makes that visible in one table.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexityRow {
    pub class: ssa_tpch::Complexity,
    pub tasks: usize,
    pub navicat_mean: f64,
    pub sheetmusiq_mean: f64,
    pub navicat_correct: usize,
    pub sheetmusiq_correct: usize,
    pub runs_per_tool: usize,
}

/// Aggregate the study by task complexity class.
pub fn complexity_breakdown(result: &StudyResult) -> Vec<ComplexityRow> {
    use ssa_tpch::Complexity;
    [
        Complexity::Simple,
        Complexity::Moderate,
        Complexity::Complex,
    ]
    .into_iter()
    .map(|class| {
        let ids: Vec<usize> = result
            .tasks
            .iter()
            .filter(|t| t.complexity == class)
            .map(|t| t.id)
            .collect();
        let times =
            |tool: Tool| -> Vec<f64> { ids.iter().flat_map(|&t| result.times(t, tool)).collect() };
        let correct =
            |tool: Tool| -> usize { ids.iter().map(|&t| result.correct_count(t, tool)).sum() };
        let nv = times(Tool::VisualBuilder);
        let mu = times(Tool::SheetMusiq);
        ComplexityRow {
            class,
            tasks: ids.len(),
            navicat_mean: mean(&nv).unwrap_or(0.0),
            sheetmusiq_mean: mean(&mu).unwrap_or(0.0),
            navicat_correct: correct(Tool::VisualBuilder),
            sheetmusiq_correct: correct(Tool::SheetMusiq),
            runs_per_tool: nv.len(),
        }
    })
    .collect()
}

/// Render all figures/tables as the text report printed by `repro`.
pub fn render_report(result: &StudyResult) -> String {
    let mut out = String::new();
    let bar = |v: f64, scale: f64| "#".repeat(((v / scale).round() as usize).min(60));

    writeln!(out, "Fig. 3 — average time per query (seconds)").unwrap();
    writeln!(out, "{:>5} {:>10} {:>10}", "query", "Navicat", "SheetMusiq").unwrap();
    for s in fig3_speed(result) {
        writeln!(
            out,
            "{:>5} {:>10.1} {:>10.1}   N {}",
            s.task,
            s.navicat,
            s.sheetmusiq,
            bar(s.navicat, 10.0)
        )
        .unwrap();
        writeln!(out, "{:>27}   S {}", "", bar(s.sheetmusiq, 10.0)).unwrap();
    }

    writeln!(out, "\nFig. 4 — standard deviation of times (seconds)").unwrap();
    writeln!(out, "{:>5} {:>10} {:>10}", "query", "Navicat", "SheetMusiq").unwrap();
    for s in fig4_stddev(result) {
        writeln!(
            out,
            "{:>5} {:>10.1} {:>10.1}",
            s.task, s.navicat, s.sheetmusiq
        )
        .unwrap();
    }

    writeln!(
        out,
        "\nFig. 5 — users (of 10) completing each query correctly"
    )
    .unwrap();
    writeln!(out, "{:>5} {:>10} {:>10}", "query", "Navicat", "SheetMusiq").unwrap();
    for s in fig5_correctness(result) {
        writeln!(out, "{:>5} {:>10} {:>10}", s.task, s.navicat, s.sheetmusiq).unwrap();
    }

    writeln!(out, "\nSpeed significance (Mann-Whitney, two-sided)").unwrap();
    for (task, mw) in speed_significance(result) {
        writeln!(
            out,
            "query {:>2}: U = {:>5.1}, p = {:.5}{}",
            task,
            mw.u1.min(mw.u2),
            mw.p_two_sided,
            if mw.p_two_sided < 0.002 {
                "  (significant, p < 0.002)"
            } else {
                ""
            }
        )
        .unwrap();
    }

    let (musiq, navicat, p) = correctness_significance(result);
    writeln!(
        out,
        "\nCorrectness: SheetMusiq {musiq}/100 vs Navicat {navicat}/100, Fisher p = {p:.5}"
    )
    .unwrap();

    writeln!(out, "\nBreakdown by task class (Sec. VII-A.4's analysis)").unwrap();
    writeln!(
        out,
        "{:>9} {:>6} {:>12} {:>12} {:>11} {:>11}",
        "class", "tasks", "Navicat avg", "Musiq avg", "Navicat ok", "Musiq ok"
    )
    .unwrap();
    for row in complexity_breakdown(result) {
        writeln!(
            out,
            "{:>9} {:>6} {:>12.1} {:>12.1} {:>8}/{:<2} {:>8}/{:<2}",
            row.class.to_string(),
            row.tasks,
            row.navicat_mean,
            row.sheetmusiq_mean,
            row.navicat_correct,
            row.runs_per_tool,
            row.sheetmusiq_correct,
            row.runs_per_tool
        )
        .unwrap();
    }

    let t6 = table6_subjective(result);
    writeln!(out, "\nTable VI — subjective results").unwrap();
    writeln!(
        out,
        "prefer SheetMusiq/Navicat: {}/{}\nseeing data helps (y/n): {}/{}\nprogressive refinement better (y/n): {}/{}\nconcepts easier in SheetMusiq (y/n): {}/{}",
        t6.prefer.0,
        t6.prefer.1,
        t6.seeing_data_helps.0,
        t6.seeing_data_helps.1,
        t6.progressive_better.0,
        t6.progressive_better.1,
        t6.concepts_easier.0,
        t6.concepts_easier.1
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{run_study, StudyConfig};

    fn result() -> StudyResult {
        run_study(&StudyConfig {
            seed: 2009,
            scale: 0.02,
            verify_system: false,
        })
    }

    #[test]
    fn fig3_shape_matches_paper() {
        let r = result();
        let fig3 = fig3_speed(&r);
        assert_eq!(fig3.len(), 10);
        // SheetMusiq faster on the concept-heavy tasks…
        for s in &fig3 {
            if ![5, 7, 10].contains(&s.task) {
                assert!(
                    s.navicat > 1.5 * s.sheetmusiq,
                    "query {}: {:.0} vs {:.0}",
                    s.task,
                    s.navicat,
                    s.sheetmusiq
                );
            } else {
                // …and comparable on the simple ones.
                assert!(
                    s.navicat < 2.0 * s.sheetmusiq,
                    "query {}: {:.0} vs {:.0}",
                    s.task,
                    s.navicat,
                    s.sheetmusiq
                );
            }
        }
    }

    #[test]
    fn fig4_sheetmusiq_is_more_consistent() {
        let r = result();
        let fig4 = fig4_stddev(&r);
        // "the standard deviation for SheetMusiq is much smaller on most
        // queries"
        let smaller = fig4.iter().filter(|s| s.sheetmusiq < s.navicat).count();
        assert!(
            smaller >= 7,
            "only {smaller}/10 queries have smaller stddev"
        );
    }

    #[test]
    fn fig5_and_fisher_match_paper_band() {
        let r = result();
        let (musiq, navicat, p) = correctness_significance(&r);
        assert!(musiq >= 92, "SheetMusiq correct = {musiq}");
        // Band is tolerant of the PRNG stream (the in-tree xorshift draws
        // differ from the external PRNG the harness originally used).
        assert!((68..=88).contains(&navicat), "Navicat correct = {navicat}");
        assert!(p < 0.02, "Fisher p = {p}");
        assert!(musiq > navicat);
        let fig5 = fig5_correctness(&r);
        assert_eq!(fig5.len(), 10);
        assert!(fig5.iter().all(|s| s.sheetmusiq <= 10 && s.navicat <= 10));
    }

    #[test]
    fn speed_significant_on_complex_queries() {
        let r = result();
        for (task, mw) in speed_significance(&r) {
            if ![5, 7, 10].contains(&task) {
                assert!(
                    mw.p_two_sided < 0.002,
                    "query {task}: p = {}",
                    mw.p_two_sided
                );
            } else {
                assert!(
                    mw.p_two_sided > 0.002,
                    "simple query {task} should not separate: p = {}",
                    mw.p_two_sided
                );
            }
        }
    }

    #[test]
    fn table6_matches_paper_pattern() {
        let r = result();
        let t6 = table6_subjective(&r);
        assert_eq!(t6.prefer, (10, 0));
        assert_eq!(t6.seeing_data_helps, (10, 0));
        assert_eq!(t6.concepts_easier, (10, 0));
        // 8-2 in the paper; the trait is sampled at 0.8, allow 7..=9.
        assert!(
            (7..=9).contains(&t6.progressive_better.0),
            "{:?}",
            t6.progressive_better
        );
        assert_eq!(t6.progressive_better.0 + t6.progressive_better.1, 10);
    }

    #[test]
    fn paired_analysis_agrees_with_mann_whitney() {
        let r = result();
        let paired = speed_significance_paired(&r);
        for (task, w) in paired {
            if ![5, 7, 10].contains(&task) {
                // complete per-subject dominance: p = 2/1024
                assert!(w.p_two_sided < 0.01, "query {task}: p = {}", w.p_two_sided);
            }
        }
    }

    #[test]
    fn complexity_breakdown_localizes_the_gap() {
        let r = result();
        let rows = complexity_breakdown(&r);
        assert_eq!(rows.len(), 3);
        let simple = &rows[0];
        let complex = &rows[2];
        assert_eq!(simple.tasks, 3);
        assert_eq!(complex.tasks, 5);
        assert_eq!(simple.runs_per_tool, 30);
        // the gap lives in the complex class
        assert!(complex.navicat_mean > 2.0 * complex.sheetmusiq_mean);
        assert!(simple.navicat_mean < 2.0 * simple.sheetmusiq_mean);
        assert!(complex.sheetmusiq_correct > complex.navicat_correct);
    }

    #[test]
    fn report_renders_every_artifact() {
        let text = render_report(&result());
        for needle in [
            "Fig. 3",
            "Fig. 4",
            "Fig. 5",
            "Mann-Whitney",
            "Fisher",
            "Table VI",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
