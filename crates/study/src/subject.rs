//! Simulated study participants.
//!
//! The paper recruited "ten volunteers with no background in database
//! query languages", ages 24–30, all with at least a bachelor's degree.
//! A [`Subject`] models the attributes that drive task time and
//! correctness: overall pace, aptitude for picking up SQL syntax when a
//! tool forces it, slip rate on individual gestures, and the Table-VI
//! preference trait for progressive refinement.

use ssa_relation::rng::Rng;

/// One participant.
#[derive(Debug, Clone, PartialEq)]
pub struct Subject {
    pub id: usize,
    /// Multiplier on every action time (1.0 = KLM expert; novices are
    /// slower).
    pub pace: f64,
    /// 0..1 — how quickly the subject copes with SQL text when the visual
    /// builder falls back to it. Low aptitude means long conceptual
    /// pauses, more syntax-error retries, more conceptual mistakes.
    pub sql_aptitude: f64,
    /// Probability of a mechanical slip per interface step (caught
    /// immediately thanks to visible feedback; costs an undo/redo).
    pub slip_rate: f64,
    /// Table VI question 3: prefers progressive refinement over
    /// all-at-once specification.
    pub prefers_progressive: bool,
}

impl Subject {
    /// Deterministically sample subject `id` for a study seeded with
    /// `study_seed`.
    pub fn sample(id: usize, study_seed: u64) -> Subject {
        let mut rng =
            Rng::seed_from_u64(study_seed.wrapping_mul(0x9E37_79B9).wrapping_add(id as u64));
        Subject {
            id,
            // Non-technical users run 1.3×–1.7× slower than the KLM expert.
            pace: rng.gen_range(1.3..1.7),
            sql_aptitude: rng.gen_range(0.05..0.7),
            slip_rate: rng.gen_range(0.02..0.08),
            prefers_progressive: rng.gen_range(0.0..1.0) < 0.8,
        }
    }

    /// The study's ten participants.
    pub fn panel(study_seed: u64) -> Vec<Subject> {
        (0..10).map(|id| Subject::sample(id, study_seed)).collect()
    }
}

/// Per-tool learning: overhead multiplier after `prior_tasks` tasks with
/// the tool. "Most users picked up SheetMusiq much faster than Navicat
/// (also shown by results of the first two queries)" (Sec. VII-A.4) —
/// SheetMusiq's overhead decays quickly, the visual builder's slowly.
pub fn learning_factor(fast_pickup: bool, prior_tasks: usize) -> f64 {
    let (amplitude, tau) = if fast_pickup { (0.5, 1.2) } else { (0.9, 3.5) };
    1.0 + amplitude * (-(prior_tasks as f64) / tau).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let a = Subject::sample(3, 42);
        let b = Subject::sample(3, 42);
        assert_eq!(a, b);
        let c = Subject::sample(3, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn panel_has_ten_distinct_subjects() {
        let p = Subject::panel(7);
        assert_eq!(p.len(), 10);
        for (i, s) in p.iter().enumerate() {
            assert_eq!(s.id, i);
            assert!((1.3..1.7).contains(&s.pace));
            assert!((0.05..0.7).contains(&s.sql_aptitude));
        }
        // traits vary across the panel
        assert!(p.windows(2).any(|w| w[0].pace != w[1].pace));
    }

    #[test]
    fn roughly_eight_of_ten_prefer_progressive() {
        // Across many panels the trait frequency approaches 0.8.
        let mut yes = 0;
        let mut total = 0;
        for seed in 0..200 {
            for s in Subject::panel(seed) {
                total += 1;
                yes += s.prefers_progressive as usize;
            }
        }
        let rate = yes as f64 / total as f64;
        assert!((0.72..0.88).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn learning_decays_and_fast_pickup_is_faster() {
        assert!(learning_factor(true, 0) > 1.0);
        assert!(learning_factor(true, 0) < learning_factor(false, 0));
        assert!(learning_factor(false, 9) < learning_factor(false, 0));
        // after many tasks both approach 1
        assert!(learning_factor(false, 50) < 1.01);
        // SheetMusiq is essentially learned after two tasks
        assert!(learning_factor(true, 2) < 1.11);
        // the builder still carries overhead then
        assert!(learning_factor(false, 2) > 1.4);
    }
}
