//! Error types for the relational substrate.

use std::fmt;

/// Errors raised by relational operations and expression evaluation.
///
/// Every error carries enough context to be surfaced verbatim in a user
/// interface (the paper's prototype reports invalid conditions "to the user
/// immediately", Sec. VI-A "Join").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A referenced column does not exist in the schema.
    UnknownColumn { name: String },
    /// A column with this name already exists.
    DuplicateColumn { name: String },
    /// Two relations were expected to be union-compatible but are not.
    NotUnionCompatible { left: String, right: String },
    /// An expression applied operands of incompatible types.
    TypeMismatch { context: String },
    /// A selection/join condition evaluated to a non-boolean value.
    /// Distinct from [`RelationError::TypeMismatch`] so interfaces can
    /// point at the condition itself rather than an operand inside it.
    NotBoolean { found: String },
    /// Division (or modulo) by zero during expression evaluation.
    DivisionByZero,
    /// An aggregate was asked for on a column that does not support it.
    BadAggregate { context: String },
    /// A value could not be parsed from text.
    ParseValue { text: String, wanted: &'static str },
    /// A row index past the end of the relation. Typed (rather than a
    /// panic) because replicated cell updates can legitimately race a
    /// concurrent delete and must degrade to a recoverable error.
    RowOutOfRange { row: usize, len: usize },
    /// Malformed CSV input.
    Csv { line: usize, message: String },
    /// The named relation is not present in the catalog.
    UnknownRelation { name: String },
    /// A relation with this name already exists in the catalog.
    DuplicateRelation { name: String },
    /// A worker thread inside a parallel chunked loop panicked. The panic
    /// is caught at the join point and surfaced as this typed error so
    /// library callers degrade to an `Err` instead of aborting the
    /// process; `site` carries the panic payload (or the armed failpoint
    /// name under the `fault-injection` feature).
    WorkerPanicked { site: String },
    /// A deterministic failpoint armed via `ssa_relation::fault` fired at
    /// the named site. Only ever constructed under the `fault-injection`
    /// feature; production builds cannot produce it.
    FaultInjected { site: String },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::UnknownColumn { name } => write!(f, "unknown column `{name}`"),
            RelationError::DuplicateColumn { name } => write!(f, "duplicate column `{name}`"),
            RelationError::NotUnionCompatible { left, right } => {
                write!(
                    f,
                    "relations are not union-compatible: `{left}` vs `{right}`"
                )
            }
            RelationError::TypeMismatch { context } => write!(f, "type mismatch: {context}"),
            RelationError::NotBoolean { found } => {
                write!(f, "condition evaluated to non-boolean value `{found}`")
            }
            RelationError::DivisionByZero => write!(f, "division by zero"),
            RelationError::BadAggregate { context } => write!(f, "bad aggregate: {context}"),
            RelationError::ParseValue { text, wanted } => {
                write!(f, "cannot parse `{text}` as {wanted}")
            }
            RelationError::RowOutOfRange { row, len } => {
                write!(f, "row {row} is out of range (relation has {len} rows)")
            }
            RelationError::Csv { line, message } => {
                write!(f, "CSV error at line {line}: {message}")
            }
            RelationError::UnknownRelation { name } => write!(f, "unknown relation `{name}`"),
            RelationError::DuplicateRelation { name } => {
                write!(f, "relation `{name}` already exists")
            }
            RelationError::WorkerPanicked { site } => {
                write!(f, "parallel worker panicked: {site}")
            }
            RelationError::FaultInjected { site } => {
                write!(f, "fault injected at `{site}`")
            }
        }
    }
}

impl std::error::Error for RelationError {}

/// Convenient result alias used across the substrate.
pub type Result<T> = std::result::Result<T, RelationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationError::UnknownColumn {
            name: "Price".into(),
        };
        assert_eq!(e.to_string(), "unknown column `Price`");
        let e = RelationError::Csv {
            line: 3,
            message: "ragged row".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = RelationError::ParseValue {
            text: "abc".into(),
            wanted: "integer",
        };
        assert!(e.to_string().contains("abc"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RelationError::DivisionByZero, RelationError::DivisionByZero);
        assert_ne!(
            RelationError::UnknownColumn { name: "a".into() },
            RelationError::UnknownColumn { name: "b".into() }
        );
    }
}
