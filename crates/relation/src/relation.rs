//! Relations: schemas plus multisets of tuples.
//!
//! A [`Relation`] keeps its tuples in insertion order — callers that need a
//! particular presentation order sort explicitly. Multiset semantics follow
//! the paper (Sec. III-B): duplicates are kept by projection and set
//! operators, and `{t, t} − {t} = {t}`.

use crate::error::{RelationError, Result};
use crate::schema::{Column, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A named multiset of tuples with a fixed schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    name: String,
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Create an empty relation.
    pub fn new(name: impl Into<String>, schema: Schema) -> Relation {
        Relation {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Create a relation from rows, validating widths.
    pub fn with_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Tuple>,
    ) -> Result<Relation> {
        let mut r = Relation::new(name, schema);
        for t in rows {
            r.insert(t)?;
        }
        Ok(r)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    pub fn rows_mut(&mut self) -> &mut Vec<Tuple> {
        &mut self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert one tuple, validating its width against the schema.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.len() != self.schema.len() {
            return Err(RelationError::TypeMismatch {
                context: format!(
                    "tuple width {} does not match schema width {} of `{}`",
                    tuple.len(),
                    self.schema.len(),
                    self.name
                ),
            });
        }
        self.rows.push(tuple);
        Ok(())
    }

    /// Value at (row, column-name).
    pub fn value_at(&self, row: usize, column: &str) -> Result<&Value> {
        let idx = self.schema.index_of(column)?;
        Ok(self.rows[row].get(idx))
    }

    /// All values in a column, in row order.
    pub fn column_values(&self, column: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(column)?;
        Ok(self.rows.iter().map(|t| *t.get(idx)).collect())
    }

    /// Borrowed columnar view of one column: `O(1)` access to `&Value`s
    /// without cloning. The index-vector evaluation engine reads base data
    /// through these instead of materializing intermediate relations.
    pub fn column_slice(&self, column: &str) -> Result<ColumnSlice<'_>> {
        let idx = self.schema.index_of(column)?;
        Ok(ColumnSlice {
            rows: &self.rows,
            idx,
        })
    }

    /// Gather the rows at `indices` (in that order) into a new relation
    /// with the same name and schema. This is the single materialization
    /// point of the index-vector engine: evaluation carries `Vec<u32>` row
    /// ids and only clones tuples here, once, at the end.
    pub fn take_rows(&self, indices: &[u32]) -> Relation {
        Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: indices
                .iter()
                .map(|&i| self.rows[i as usize].clone())
                .collect(),
        }
    }

    /// Keep only the rows whose index satisfies `keep`, preserving order.
    /// Runs in place — surviving tuples are moved, never cloned — which is
    /// what makes narrowing a cached evaluation cheaper than re-gathering.
    pub fn retain_rows(&mut self, mut keep: impl FnMut(usize) -> bool) {
        let mut i = 0;
        self.rows.retain(|_| {
            let k = keep(i);
            i += 1;
            k
        });
    }

    /// Add a column filled by `fill(row_index, tuple)`.
    pub fn add_column<F>(&mut self, column: Column, mut fill: F) -> Result<()>
    where
        F: FnMut(usize, &Tuple) -> Value,
    {
        if self.schema.contains(&column.name) {
            return Err(RelationError::DuplicateColumn { name: column.name });
        }
        // Compute all values before mutating the schema so `fill` sees
        // consistent widths.
        let values: Vec<Value> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, t)| fill(i, t))
            .collect();
        self.schema.push(column)?;
        for (t, v) in self.rows.iter_mut().zip(values) {
            t.push(v);
        }
        Ok(())
    }

    /// Remove a column and its values from every row.
    pub fn drop_column(&mut self, name: &str) -> Result<()> {
        let idx = self.schema.remove(name)?;
        for t in &mut self.rows {
            t.remove(idx);
        }
        Ok(())
    }

    /// Multiset equality: same schema (same column order) and the same
    /// tuples irrespective of row order.
    pub fn multiset_eq(&self, other: &Relation) -> bool {
        if self.schema != other.schema || self.len() != other.len() {
            return false;
        }
        let mut a = self.rows.clone();
        let mut b = other.rows.clone();
        a.sort();
        b.sort();
        a == b
    }

    /// Multiset equality after aligning `other`'s columns to `self`'s
    /// column order (columns must have the same names).
    pub fn multiset_eq_unordered_columns(&self, other: &Relation) -> bool {
        if self.schema.len() != other.schema.len() || self.len() != other.len() {
            return false;
        }
        let mapping: Option<Vec<usize>> = self
            .schema
            .columns()
            .iter()
            .map(|c| other.schema.index_of(&c.name).ok())
            .collect();
        let Some(mapping) = mapping else { return false };
        let mut a = self.rows.clone();
        let mut b: Vec<Tuple> = other.rows.iter().map(|t| t.project(&mapping)).collect();
        a.sort();
        b.sort();
        a == b
    }

    /// Count of each distinct tuple (useful in multiset-semantics tests).
    pub fn histogram(&self) -> BTreeMap<Tuple, usize> {
        let mut h = BTreeMap::new();
        for t in &self.rows {
            *h.entry(t.clone()).or_insert(0) += 1;
        }
        h
    }
}

/// A borrowed view of one column of a row-store relation. Cheap to copy;
/// lives as long as the relation it was taken from.
#[derive(Clone, Copy)]
pub struct ColumnSlice<'a> {
    rows: &'a [Tuple],
    idx: usize,
}

impl<'a> ColumnSlice<'a> {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The value at `row` — borrowed, never cloned.
    pub fn get(&self, row: usize) -> &'a Value {
        self.rows[row].get(self.idx)
    }

    pub fn iter(&self) -> impl Iterator<Item = &'a Value> + '_ {
        self.rows.iter().map(move |t| t.get(self.idx))
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {} [{} rows]", self.name, self.schema, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::ValueType::*;

    fn cars() -> Relation {
        let schema = Schema::of(&[("ID", Int), ("Model", Str), ("Price", Int)]);
        Relation::with_rows(
            "cars",
            schema,
            vec![
                tuple![304, "Jetta", 14500],
                tuple![872, "Jetta", 15000],
                tuple![132, "Civic", 13500],
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_validates_width() {
        let mut r = cars();
        assert!(r.insert(tuple![1, "x"]).is_err());
        assert!(r.insert(tuple![1, "x", 2]).is_ok());
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn value_and_column_access() {
        let r = cars();
        assert_eq!(r.value_at(0, "Model").unwrap(), &Value::str("Jetta"));
        assert_eq!(
            r.column_values("Price").unwrap(),
            vec![Value::Int(14500), Value::Int(15000), Value::Int(13500)]
        );
        assert!(r.value_at(0, "Nope").is_err());
    }

    #[test]
    fn add_and_drop_column() {
        let mut r = cars();
        r.add_column(Column::new("Discounted", Int), |_, t| {
            t.get(2).sub(&Value::Int(500)).unwrap()
        })
        .unwrap();
        assert_eq!(r.value_at(0, "Discounted").unwrap(), &Value::Int(14000));
        assert!(r
            .add_column(Column::new("Discounted", Int), |_, _| Value::Null)
            .is_err());
        r.drop_column("Discounted").unwrap();
        assert!(!r.schema().contains("Discounted"));
        assert_eq!(r.rows()[0].len(), 3);
    }

    #[test]
    fn take_rows_gathers_in_index_order() {
        let r = cars();
        let picked = r.take_rows(&[2, 0]);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked.value_at(0, "ID").unwrap(), &Value::Int(132));
        assert_eq!(picked.value_at(1, "ID").unwrap(), &Value::Int(304));
        assert_eq!(picked.schema(), r.schema());
        assert!(r.take_rows(&[]).is_empty());
    }

    #[test]
    fn column_slice_borrows_values() {
        let r = cars();
        let prices = r.column_slice("Price").unwrap();
        assert_eq!(prices.len(), 3);
        assert_eq!(prices.get(1), &Value::Int(15000));
        let all: Vec<&Value> = prices.iter().collect();
        assert_eq!(all.len(), 3);
        assert!(r.column_slice("Ghost").is_err());
    }

    #[test]
    fn multiset_eq_ignores_row_order() {
        let a = cars();
        let mut b = cars();
        b.rows_mut().reverse();
        assert!(a.multiset_eq(&b));
        b.rows_mut().pop();
        assert!(!a.multiset_eq(&b));
    }

    #[test]
    fn multiset_eq_respects_duplicates() {
        let schema = Schema::of(&[("x", Int)]);
        let a = Relation::with_rows("a", schema.clone(), vec![tuple![1], tuple![1]]).unwrap();
        let b = Relation::with_rows("b", schema.clone(), vec![tuple![1]]).unwrap();
        assert!(!a.multiset_eq(&b));
        let c = Relation::with_rows("c", schema, vec![tuple![1], tuple![1]]).unwrap();
        // names differ but schema & rows match; names are not part of equality
        assert!(a.multiset_eq(&c));
    }

    #[test]
    fn multiset_eq_unordered_columns_aligns() {
        let a = Relation::with_rows(
            "a",
            Schema::of(&[("x", Int), ("y", Str)]),
            vec![tuple![1, "p"], tuple![2, "q"]],
        )
        .unwrap();
        let b = Relation::with_rows(
            "b",
            Schema::of(&[("y", Str), ("x", Int)]),
            vec![tuple!["q", 2], tuple!["p", 1]],
        )
        .unwrap();
        assert!(a.multiset_eq_unordered_columns(&b));
    }

    #[test]
    fn histogram_counts_duplicates() {
        let schema = Schema::of(&[("x", Int)]);
        let r = Relation::with_rows("r", schema, vec![tuple![1], tuple![2], tuple![1]]).unwrap();
        let h = r.histogram();
        assert_eq!(h[&tuple![1]], 2);
        assert_eq!(h[&tuple![2]], 1);
    }
}
