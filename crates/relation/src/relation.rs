//! Relations: schemas plus multisets of tuples.
//!
//! A [`Relation`] keeps its tuples in insertion order — callers that need a
//! particular presentation order sort explicitly. Multiset semantics follow
//! the paper (Sec. III-B): duplicates are kept by projection and set
//! operators, and `{t, t} − {t} = {t}`.

use crate::error::{RelationError, Result};
use crate::intern::Sym;
use crate::schema::{Column, Schema};
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};
use std::collections::BTreeMap;
use std::fmt;

/// Rows examined by [`Relation::distinct_estimate`] before it switches
/// from exact counting to a sampled estimate.
const DISTINCT_SAMPLE_BUDGET: usize = 1024;

/// A named multiset of tuples with a fixed schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    name: String,
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Create an empty relation.
    pub fn new(name: impl Into<String>, schema: Schema) -> Relation {
        Relation {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Create a relation from rows, validating widths.
    pub fn with_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Tuple>,
    ) -> Result<Relation> {
        let mut r = Relation::new(name, schema);
        for t in rows {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// Create a relation from column vectors — the transpose step of a
    /// columnar reader. All columns must match the schema width and have
    /// equal lengths.
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: &[&[Value]],
    ) -> Result<Relation> {
        if columns.len() != schema.len() {
            return Err(RelationError::TypeMismatch {
                context: format!(
                    "{} columns supplied for a {}-column schema",
                    columns.len(),
                    schema.len()
                ),
            });
        }
        let rows = columns.first().map_or(0, |c| c.len());
        if let Some(odd) = columns.iter().find(|c| c.len() != rows) {
            return Err(RelationError::TypeMismatch {
                context: format!("column lengths differ: {} vs {rows}", odd.len()),
            });
        }
        let mut r = Relation::new(name, schema);
        r.rows.reserve(rows);
        for i in 0..rows {
            r.rows
                .push(Tuple::new(columns.iter().map(|c| c[i]).collect()));
        }
        Ok(r)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    pub fn rows_mut(&mut self) -> &mut Vec<Tuple> {
        &mut self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert one tuple, validating its width against the schema.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.len() != self.schema.len() {
            return Err(RelationError::TypeMismatch {
                context: format!(
                    "tuple width {} does not match schema width {} of `{}`",
                    tuple.len(),
                    self.schema.len(),
                    self.name
                ),
            });
        }
        self.rows.push(tuple);
        Ok(())
    }

    /// Append a batch of tuples, validating every width **before** the
    /// first mutation so a bad batch leaves the relation untouched.
    /// String values were interned when the tuples were built, so the
    /// append itself is a pure `memcpy`-class extend. Returns the index
    /// of the first appended row.
    pub fn append_rows(&mut self, rows: Vec<Tuple>) -> Result<usize> {
        for t in &rows {
            if t.len() != self.schema.len() {
                return Err(RelationError::TypeMismatch {
                    context: format!(
                        "tuple width {} does not match schema width {} of `{}`",
                        t.len(),
                        self.schema.len(),
                        self.name
                    ),
                });
            }
        }
        let first = self.rows.len();
        self.rows.extend(rows);
        Ok(first)
    }

    /// Remove the rows at `indices` (any order, duplicates ignored),
    /// returning the removed `(index, tuple)` pairs in ascending index
    /// order — exactly what [`Relation::reinsert_rows`] needs to undo the
    /// removal. One retain pass, `O(rows)`.
    pub fn remove_rows_at(&mut self, indices: &[u32]) -> Result<Vec<(u32, Tuple)>> {
        for &i in indices {
            if i as usize >= self.rows.len() {
                return Err(RelationError::TypeMismatch {
                    context: format!(
                        "row index {i} out of range for `{}` ({} rows)",
                        self.name,
                        self.rows.len()
                    ),
                });
            }
        }
        let mut drop = vec![false; self.rows.len()];
        for &i in indices {
            drop[i as usize] = true;
        }
        let mut removed = Vec::with_capacity(indices.len());
        let mut i = 0;
        self.rows.retain(|t| {
            if drop[i] {
                removed.push((i as u32, t.clone()));
            }
            i += 1;
            !drop[i - 1]
        });
        Ok(removed)
    }

    /// Undo a [`Relation::remove_rows_at`]: reinsert the removed rows at
    /// their original positions. `removed` must be the pairs that call
    /// returned (ascending original indices).
    pub fn reinsert_rows(&mut self, removed: Vec<(u32, Tuple)>) {
        // Inserting in ascending original-index order keeps every later
        // original index valid as the vector regrows.
        for (idx, t) in removed {
            self.rows.insert(idx as usize, t);
        }
    }

    /// Overwrite one cell, returning the previous value (for rollback).
    pub fn set_value(&mut self, row: usize, column: &str, value: Value) -> Result<Value> {
        let idx = self.schema.index_of(column)?;
        if row >= self.rows.len() {
            return Err(RelationError::RowOutOfRange {
                row,
                len: self.rows.len(),
            });
        }
        let old = *self.rows[row].get(idx);
        self.rows[row].set(idx, value);
        Ok(old)
    }

    /// Value at (row, column-name).
    pub fn value_at(&self, row: usize, column: &str) -> Result<&Value> {
        let idx = self.schema.index_of(column)?;
        let tuple = self.rows.get(row).ok_or(RelationError::RowOutOfRange {
            row,
            len: self.rows.len(),
        })?;
        Ok(tuple.get(idx))
    }

    /// All values in a column, in row order.
    pub fn column_values(&self, column: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(column)?;
        Ok(self.rows.iter().map(|t| *t.get(idx)).collect())
    }

    /// Borrowed columnar view of one column: `O(1)` access to `&Value`s
    /// without cloning. The index-vector evaluation engine reads base data
    /// through these instead of materializing intermediate relations.
    pub fn column_slice(&self, column: &str) -> Result<ColumnSlice<'_>> {
        let idx = self.schema.index_of(column)?;
        Ok(ColumnSlice {
            rows: &self.rows,
            idx,
        })
    }

    /// Gather the rows at `indices` (in that order) into a new relation
    /// with the same name and schema. This is the single materialization
    /// point of the index-vector engine: evaluation carries `Vec<u32>` row
    /// ids and only clones tuples here, once, at the end.
    pub fn take_rows(&self, indices: &[u32]) -> Relation {
        Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: indices
                .iter()
                .map(|&i| self.rows[i as usize].clone())
                .collect(),
        }
    }

    /// Keep only the rows whose index satisfies `keep`, preserving order.
    /// Runs in place — surviving tuples are moved, never cloned — which is
    /// what makes narrowing a cached evaluation cheaper than re-gathering.
    pub fn retain_rows(&mut self, mut keep: impl FnMut(usize) -> bool) {
        let mut i = 0;
        self.rows.retain(|_| {
            let k = keep(i);
            i += 1;
            k
        });
    }

    /// Add a column filled by `fill(row_index, tuple)`.
    pub fn add_column<F>(&mut self, column: Column, mut fill: F) -> Result<()>
    where
        F: FnMut(usize, &Tuple) -> Value,
    {
        if self.schema.contains(&column.name) {
            return Err(RelationError::DuplicateColumn { name: column.name });
        }
        // Compute all values before mutating the schema so `fill` sees
        // consistent widths.
        let values: Vec<Value> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, t)| fill(i, t))
            .collect();
        self.schema.push(column)?;
        for (t, v) in self.rows.iter_mut().zip(values) {
            t.push(v);
        }
        Ok(())
    }

    /// Remove a column and its values from every row.
    pub fn drop_column(&mut self, name: &str) -> Result<()> {
        let idx = self.schema.remove(name)?;
        for t in &mut self.rows {
            t.remove(idx);
        }
        Ok(())
    }

    /// Multiset equality: same schema (same column order) and the same
    /// tuples irrespective of row order.
    pub fn multiset_eq(&self, other: &Relation) -> bool {
        if self.schema != other.schema || self.len() != other.len() {
            return false;
        }
        let mut a = self.rows.clone();
        let mut b = other.rows.clone();
        a.sort();
        b.sort();
        a == b
    }

    /// Multiset equality after aligning `other`'s columns to `self`'s
    /// column order (columns must have the same names).
    pub fn multiset_eq_unordered_columns(&self, other: &Relation) -> bool {
        if self.schema.len() != other.schema.len() || self.len() != other.len() {
            return false;
        }
        let mapping: Option<Vec<usize>> = self
            .schema
            .columns()
            .iter()
            .map(|c| other.schema.index_of(&c.name).ok())
            .collect();
        let Some(mapping) = mapping else { return false };
        let mut a = self.rows.clone();
        let mut b: Vec<Tuple> = other.rows.iter().map(|t| t.project(&mapping)).collect();
        a.sort();
        b.sort();
        a == b
    }

    /// Number of rows — the free cardinality statistic the planner leans
    /// on. Alias of [`Relation::len`], named for symmetry with
    /// [`Relation::distinct_estimate`].
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Estimate the number of distinct values in `column`. See
    /// [`Relation::distinct_estimate_at`] for the method.
    pub fn distinct_estimate(&self, column: &str) -> Result<usize> {
        let idx = self.schema.index_of(column)?;
        Ok(self.distinct_estimate_at(idx))
    }

    /// Estimate the number of distinct values in the column at position
    /// `idx`, deterministically and without hashing whole values:
    ///
    /// * `Str` columns are counted **exactly** with a bitset over interner
    ///   ids — symbols are dense `u32` handles (the same id space the
    ///   lexicographic rank snapshot covers), so one bit per interned
    ///   string suffices and the scan is a cheap `O(rows)` pass.
    /// * Other columns are counted exactly while the relation fits the
    ///   sample budget, and above it estimated from a low-discrepancy
    ///   sample (golden-ratio stride, so periodic data cannot alias) with
    ///   the GEE singleton scale-up, clamped to `[d_sample, row_count]`.
    ///   A sample with no repeats at all is treated as a key column.
    pub fn distinct_estimate_at(&self, idx: usize) -> usize {
        let n = self.rows.len();
        if n == 0 {
            return 0;
        }
        if self.schema.columns()[idx].ty == ValueType::Str {
            return self.distinct_str_exact(idx);
        }
        if n <= DISTINCT_SAMPLE_BUDGET {
            let mut vals: Vec<&Value> = self.rows.iter().map(|t| t.get(idx)).collect();
            vals.sort();
            vals.dedup();
            return vals.len();
        }
        // Low-discrepancy row sample: multiples of the golden ratio mod n
        // cover the index space evenly without the aliasing risk of a
        // fixed stride, and stay fully deterministic.
        const GOLDEN: u128 = 0x9E37_79B9_7F4A_7C15;
        let mut picked: Vec<usize> = (0..DISTINCT_SAMPLE_BUDGET)
            .map(|k| ((k as u128 * GOLDEN) % n as u128) as usize)
            .collect();
        picked.sort_unstable();
        picked.dedup();
        let s = picked.len();
        let mut vals: Vec<&Value> = picked.iter().map(|&r| self.rows[r].get(idx)).collect();
        vals.sort();
        let (mut d, mut f1) = (0usize, 0usize);
        let mut i = 0;
        while i < vals.len() {
            let mut j = i + 1;
            while j < vals.len() && vals[j] == vals[i] {
                j += 1;
            }
            d += 1;
            if j - i == 1 {
                f1 += 1;
            }
            i = j;
        }
        if f1 == d {
            // No duplicates among the sampled rows: key-like column.
            return n;
        }
        // GEE (Charikar et al.): scale the singletons by √(n/s).
        let est = ((n as f64 / s as f64).sqrt() * f1 as f64 + (d - f1) as f64).round() as usize;
        est.clamp(d, n)
    }

    /// Exact distinct count of a `Str` column via an interner-id bitset.
    fn distinct_str_exact(&self, idx: usize) -> usize {
        let mut words = vec![0u64; Sym::interned_count() / 64 + 1];
        let mut distinct = 0usize;
        let mut saw_null = false;
        // Ill-typed stragglers in a Str-declared column (possible in a
        // hand-built relation) fall back to a sorted side list.
        let mut other: Vec<&Value> = Vec::new();
        for t in &self.rows {
            match t.get(idx) {
                Value::Str(s) => {
                    let id = s.id() as usize;
                    if id / 64 >= words.len() {
                        words.resize(id / 64 + 1, 0);
                    }
                    let bit = 1u64 << (id % 64);
                    if words[id / 64] & bit == 0 {
                        words[id / 64] |= bit;
                        distinct += 1;
                    }
                }
                Value::Null => saw_null = true,
                v => other.push(v),
            }
        }
        other.sort();
        other.dedup();
        distinct + usize::from(saw_null) + other.len()
    }

    /// Count of each distinct tuple (useful in multiset-semantics tests).
    pub fn histogram(&self) -> BTreeMap<Tuple, usize> {
        let mut h = BTreeMap::new();
        for t in &self.rows {
            *h.entry(t.clone()).or_insert(0) += 1;
        }
        h
    }
}

/// A borrowed view of one column of a row-store relation. Cheap to copy;
/// lives as long as the relation it was taken from.
#[derive(Clone, Copy)]
pub struct ColumnSlice<'a> {
    rows: &'a [Tuple],
    idx: usize,
}

impl<'a> ColumnSlice<'a> {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The value at `row` — borrowed, never cloned.
    pub fn get(&self, row: usize) -> &'a Value {
        self.rows[row].get(self.idx)
    }

    pub fn iter(&self) -> impl Iterator<Item = &'a Value> + '_ {
        self.rows.iter().map(move |t| t.get(self.idx))
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {} [{} rows]", self.name, self.schema, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::ValueType::*;

    fn cars() -> Relation {
        let schema = Schema::of(&[("ID", Int), ("Model", Str), ("Price", Int)]);
        Relation::with_rows(
            "cars",
            schema,
            vec![
                tuple![304, "Jetta", 14500],
                tuple![872, "Jetta", 15000],
                tuple![132, "Civic", 13500],
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_validates_width() {
        let mut r = cars();
        assert!(r.insert(tuple![1, "x"]).is_err());
        assert!(r.insert(tuple![1, "x", 2]).is_ok());
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn value_and_column_access() {
        let r = cars();
        assert_eq!(r.value_at(0, "Model").unwrap(), &Value::str("Jetta"));
        assert_eq!(
            r.column_values("Price").unwrap(),
            vec![Value::Int(14500), Value::Int(15000), Value::Int(13500)]
        );
        assert!(r.value_at(0, "Nope").is_err());
    }

    #[test]
    fn add_and_drop_column() {
        let mut r = cars();
        r.add_column(Column::new("Discounted", Int), |_, t| {
            t.get(2).sub(&Value::Int(500)).unwrap()
        })
        .unwrap();
        assert_eq!(r.value_at(0, "Discounted").unwrap(), &Value::Int(14000));
        assert!(r
            .add_column(Column::new("Discounted", Int), |_, _| Value::Null)
            .is_err());
        r.drop_column("Discounted").unwrap();
        assert!(!r.schema().contains("Discounted"));
        assert_eq!(r.rows()[0].len(), 3);
    }

    #[test]
    fn take_rows_gathers_in_index_order() {
        let r = cars();
        let picked = r.take_rows(&[2, 0]);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked.value_at(0, "ID").unwrap(), &Value::Int(132));
        assert_eq!(picked.value_at(1, "ID").unwrap(), &Value::Int(304));
        assert_eq!(picked.schema(), r.schema());
        assert!(r.take_rows(&[]).is_empty());
    }

    #[test]
    fn column_slice_borrows_values() {
        let r = cars();
        let prices = r.column_slice("Price").unwrap();
        assert_eq!(prices.len(), 3);
        assert_eq!(prices.get(1), &Value::Int(15000));
        let all: Vec<&Value> = prices.iter().collect();
        assert_eq!(all.len(), 3);
        assert!(r.column_slice("Ghost").is_err());
    }

    #[test]
    fn multiset_eq_ignores_row_order() {
        let a = cars();
        let mut b = cars();
        b.rows_mut().reverse();
        assert!(a.multiset_eq(&b));
        b.rows_mut().pop();
        assert!(!a.multiset_eq(&b));
    }

    #[test]
    fn multiset_eq_respects_duplicates() {
        let schema = Schema::of(&[("x", Int)]);
        let a = Relation::with_rows("a", schema.clone(), vec![tuple![1], tuple![1]]).unwrap();
        let b = Relation::with_rows("b", schema.clone(), vec![tuple![1]]).unwrap();
        assert!(!a.multiset_eq(&b));
        let c = Relation::with_rows("c", schema, vec![tuple![1], tuple![1]]).unwrap();
        // names differ but schema & rows match; names are not part of equality
        assert!(a.multiset_eq(&c));
    }

    #[test]
    fn multiset_eq_unordered_columns_aligns() {
        let a = Relation::with_rows(
            "a",
            Schema::of(&[("x", Int), ("y", Str)]),
            vec![tuple![1, "p"], tuple![2, "q"]],
        )
        .unwrap();
        let b = Relation::with_rows(
            "b",
            Schema::of(&[("y", Str), ("x", Int)]),
            vec![tuple!["q", 2], tuple!["p", 1]],
        )
        .unwrap();
        assert!(a.multiset_eq_unordered_columns(&b));
    }

    #[test]
    fn row_count_is_len() {
        let r = cars();
        assert_eq!(r.row_count(), r.len());
        assert_eq!(r.row_count(), 3);
    }

    #[test]
    fn distinct_exact_small_numeric() {
        let schema = Schema::of(&[("x", Int)]);
        let rows = vec![tuple![1], tuple![2], tuple![1], tuple![3], tuple![2]];
        let r = Relation::with_rows("r", schema, rows).unwrap();
        assert_eq!(r.distinct_estimate("x").unwrap(), 3);
        assert!(r.distinct_estimate("ghost").is_err());
    }

    #[test]
    fn distinct_str_counts_exactly_with_nulls() {
        let schema = Schema::of(&[("s", Str)]);
        let rows = vec![
            tuple!["alpha"],
            tuple!["beta"],
            tuple!["alpha"],
            Tuple::new(vec![Value::Null]),
            tuple!["gamma"],
            Tuple::new(vec![Value::Null]),
        ];
        let r = Relation::with_rows("r", schema, rows).unwrap();
        // 3 strings + the null bucket
        assert_eq!(r.distinct_estimate("s").unwrap(), 4);
    }

    #[test]
    fn distinct_sampled_periodic_low_cardinality_is_exact() {
        // 50k rows cycling through 7 values: a fixed-stride sample could
        // alias with the period; the golden-ratio sample must not.
        let schema = Schema::of(&[("x", Int)]);
        let rows = (0..50_000).map(|i| tuple![i % 7]).collect();
        let r = Relation::with_rows("r", schema, rows).unwrap();
        assert_eq!(r.distinct_estimate("x").unwrap(), 7);
    }

    #[test]
    fn distinct_sampled_key_column_estimates_full_cardinality() {
        let schema = Schema::of(&[("x", Int)]);
        let rows = (0..50_000i64).map(|i| tuple![i]).collect();
        let r = Relation::with_rows("r", schema, rows).unwrap();
        // All sampled rows are singletons → treated as a key column.
        assert_eq!(r.distinct_estimate("x").unwrap(), 50_000);
    }

    #[test]
    fn distinct_sampled_stays_clamped() {
        // Heavy skew: one value dominates, 500 rares. The estimate must
        // land inside [sampled distinct, row count].
        let schema = Schema::of(&[("x", Int)]);
        let rows = (0..40_000i64)
            .map(|i| if i % 80 == 0 { tuple![i] } else { tuple![-1] })
            .collect();
        let r = Relation::with_rows("r", schema, rows).unwrap();
        let est = r.distinct_estimate("x").unwrap();
        assert!(est <= 40_000, "est {est} above row count");
        assert!(est >= 2, "est {est} below sampled distinct");
    }

    #[test]
    fn append_rows_is_all_or_nothing() {
        let mut r = cars();
        let first = r
            .append_rows(vec![tuple![9, "Prius", 21000], tuple![10, "Prius", 22000]])
            .unwrap();
        assert_eq!(first, 3);
        assert_eq!(r.len(), 5);
        // One bad width in the batch: nothing is appended.
        assert!(r
            .append_rows(vec![tuple![11, "Civic", 9000], tuple![12, "short"]])
            .is_err());
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn remove_and_reinsert_roundtrip() {
        let mut r = cars();
        let before = r.clone();
        let removed = r.remove_rows_at(&[2, 0, 0]).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.value_at(0, "ID").unwrap(), &Value::Int(872));
        assert_eq!(removed.len(), 2);
        assert_eq!(removed[0].0, 0);
        assert_eq!(removed[1].0, 2);
        r.reinsert_rows(removed);
        assert_eq!(r, before);
        assert!(r.remove_rows_at(&[99]).is_err());
        assert_eq!(r, before);
    }

    #[test]
    fn set_value_returns_old() {
        let mut r = cars();
        let old = r.set_value(1, "Price", Value::Int(9999)).unwrap();
        assert_eq!(old, Value::Int(15000));
        assert_eq!(r.value_at(1, "Price").unwrap(), &Value::Int(9999));
        assert!(r.set_value(9, "Price", Value::Int(1)).is_err());
        assert!(r.set_value(0, "Ghost", Value::Int(1)).is_err());
    }

    #[test]
    fn histogram_counts_duplicates() {
        let schema = Schema::of(&[("x", Int)]);
        let r = Relation::with_rows("r", schema, vec![tuple![1], tuple![2], tuple![1]]).unwrap();
        let h = r.histogram();
        assert_eq!(h[&tuple![1]], 2);
        assert_eq!(h[&tuple![2]], 1);
    }
}
