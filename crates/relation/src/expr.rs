//! Scalar expressions: the condition/formula language of the algebra.
//!
//! Selection conditions (Def. 5) are built from atomic predicates
//! `A OP B` — where `A`, `B` are column names or constants with optional
//! arithmetic or string operators — connected with AND/OR/NOT. Formula
//! computation (Def. 12) uses the same arithmetic core. One AST serves
//! both, so query state can uniformly attach predicates to the columns
//! they reference (Sec. V-A).

use crate::error::{RelationError, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ArithOp {
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The test applied to an [`Ordering`].
    pub fn test(self) -> fn(Ordering) -> bool {
        match self {
            CmpOp::Eq => Ordering::is_eq,
            CmpOp::Ne => Ordering::is_ne,
            CmpOp::Lt => Ordering::is_lt,
            CmpOp::Le => Ordering::is_le,
            CmpOp::Gt => Ordering::is_gt,
            CmpOp::Ge => Ordering::is_ge,
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// A scalar expression over one row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A column reference by name.
    Col(String),
    /// A constant.
    Lit(Value),
    /// Arithmetic between two sub-expressions (`+` also concatenates
    /// strings).
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// Unary numeric negation.
    Neg(Box<Expr>),
    /// Comparison producing Bool (or Null when a side is NULL).
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Logical conjunction (three-valued).
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction (three-valued).
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation (NULL stays NULL).
    Not(Box<Expr>),
    /// `IS NULL` test (never NULL itself).
    IsNull(Box<Expr>),
    /// SQL LIKE with `%` and `_` wildcards.
    Like(Box<Expr>, String),
    /// Conditional: `CASE WHEN cond THEN a ELSE b END` (extension — the
    /// paper's prototype did not support CASE; see DESIGN.md §7).
    /// A NULL condition selects the ELSE branch.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/div build AST nodes
impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Lit(value.into())
    }

    /// `self OP other` comparison.
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), op, Box::new(other))
    }

    pub fn eq(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Eq, other)
    }

    pub fn lt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Lt, other)
    }

    pub fn le(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Le, other)
    }

    pub fn gt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Gt, other)
    }

    pub fn ge(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Ge, other)
    }

    pub fn ne(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Ne, other)
    }

    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    // The `add`/`sub`/`mul`/`div` builder methods intentionally mirror the
    // std::ops trait names — they build AST nodes rather than compute, and
    // the fluent style (`Expr::col("a").add(Expr::lit(1))`) is the point.
    /// `CASE WHEN cond THEN self ELSE otherwise END`.
    pub fn if_else(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(then), Box::new(otherwise))
    }

    pub fn arith(self, op: ArithOp, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), op, Box::new(other))
    }

    pub fn add(self, other: Expr) -> Expr {
        self.arith(ArithOp::Add, other)
    }

    pub fn sub(self, other: Expr) -> Expr {
        self.arith(ArithOp::Sub, other)
    }

    pub fn mul(self, other: Expr) -> Expr {
        self.arith(ArithOp::Mul, other)
    }

    pub fn div(self, other: Expr) -> Expr {
        self.arith(ArithOp::Div, other)
    }

    /// Evaluate the expression against one row.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<Value> {
        match self {
            Expr::Col(name) => {
                let idx = schema.index_of(name)?;
                Ok(*tuple.get(idx))
            }
            Expr::Lit(v) => Ok(*v),
            Expr::Arith(a, op, b) => {
                let (x, y) = (a.eval(schema, tuple)?, b.eval(schema, tuple)?);
                match op {
                    ArithOp::Add => x.add(&y),
                    ArithOp::Sub => x.sub(&y),
                    ArithOp::Mul => x.mul(&y),
                    ArithOp::Div => x.div(&y),
                    ArithOp::Mod => x.rem(&y),
                }
            }
            Expr::Neg(a) => a.eval(schema, tuple)?.neg(),
            Expr::Cmp(a, op, b) => {
                let (x, y) = (a.eval(schema, tuple)?, b.eval(schema, tuple)?);
                Ok(x.sql_cmp(&y, op.test()))
            }
            Expr::And(a, b) => {
                // Three-valued AND: false dominates, NULL otherwise infects.
                let x = a.eval(schema, tuple)?;
                if let Value::Bool(false) = x {
                    return Ok(Value::Bool(false));
                }
                let y = b.eval(schema, tuple)?;
                match (x, y) {
                    (_, Value::Bool(false)) => Ok(Value::Bool(false)),
                    (Value::Bool(true), Value::Bool(true)) => Ok(Value::Bool(true)),
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (x, y) => Err(RelationError::TypeMismatch {
                        context: format!("AND on non-boolean operands `{x}`, `{y}`"),
                    }),
                }
            }
            Expr::Or(a, b) => {
                let x = a.eval(schema, tuple)?;
                if let Value::Bool(true) = x {
                    return Ok(Value::Bool(true));
                }
                let y = b.eval(schema, tuple)?;
                match (x, y) {
                    (_, Value::Bool(true)) => Ok(Value::Bool(true)),
                    (Value::Bool(false), Value::Bool(false)) => Ok(Value::Bool(false)),
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (x, y) => Err(RelationError::TypeMismatch {
                        context: format!("OR on non-boolean operands `{x}`, `{y}`"),
                    }),
                }
            }
            Expr::Not(a) => match a.eval(schema, tuple)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                v => Err(RelationError::TypeMismatch {
                    context: format!("NOT on non-boolean operand `{v}`"),
                }),
            },
            Expr::IsNull(a) => Ok(Value::Bool(a.eval(schema, tuple)?.is_null())),
            Expr::Like(a, pattern) => match a.eval(schema, tuple)? {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Bool(like_match(pattern, s.as_str()))),
                v => Err(RelationError::TypeMismatch {
                    context: format!("LIKE on non-string operand `{v}`"),
                }),
            },
            Expr::If(cond, then, otherwise) => {
                if cond.eval(schema, tuple)?.is_true() {
                    then.eval(schema, tuple)
                } else {
                    otherwise.eval(schema, tuple)
                }
            }
        }
    }

    /// Evaluate as a predicate: `true` iff the result is `Bool(true)`,
    /// `false` for `Bool(false)` and `Null` (SQL keeps only TRUE rows).
    /// Any other value is a malformed condition and raises
    /// [`RelationError::NotBoolean`] so the interface can report the
    /// condition itself rather than silently dropping every row.
    pub fn matches(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        match self.eval(schema, tuple)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            v => Err(RelationError::NotBoolean {
                found: v.to_string(),
            }),
        }
    }

    /// The set of column names this expression references. Query state
    /// attaches each selection/FC predicate to exactly these columns
    /// (Sec. V-A), and the precedence relation of Sec. IV-B is computed
    /// from them.
    pub fn columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Col(name) => {
                out.insert(name.clone());
            }
            Expr::Lit(_) => {}
            Expr::Arith(a, _, b) | Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Neg(a) | Expr::Not(a) | Expr::IsNull(a) | Expr::Like(a, _) => {
                a.collect_columns(out)
            }
            Expr::If(c, t, e) => {
                c.collect_columns(out);
                t.collect_columns(out);
                e.collect_columns(out);
            }
        }
    }

    /// Rewrite every column reference via `f` (used when columns are
    /// renamed, and by the Theorem-1 translator to qualify names).
    pub fn map_columns(&self, f: &impl Fn(&str) -> String) -> Expr {
        match self {
            Expr::Col(name) => Expr::Col(f(name)),
            Expr::Lit(v) => Expr::Lit(*v),
            Expr::Arith(a, op, b) => {
                Expr::Arith(Box::new(a.map_columns(f)), *op, Box::new(b.map_columns(f)))
            }
            Expr::Neg(a) => Expr::Neg(Box::new(a.map_columns(f))),
            Expr::Cmp(a, op, b) => {
                Expr::Cmp(Box::new(a.map_columns(f)), *op, Box::new(b.map_columns(f)))
            }
            Expr::And(a, b) => Expr::And(Box::new(a.map_columns(f)), Box::new(b.map_columns(f))),
            Expr::Or(a, b) => Expr::Or(Box::new(a.map_columns(f)), Box::new(b.map_columns(f))),
            Expr::Not(a) => Expr::Not(Box::new(a.map_columns(f))),
            Expr::IsNull(a) => Expr::IsNull(Box::new(a.map_columns(f))),
            Expr::Like(a, p) => Expr::Like(Box::new(a.map_columns(f)), p.clone()),
            Expr::If(c, t, e) => Expr::If(
                Box::new(c.map_columns(f)),
                Box::new(t.map_columns(f)),
                Box::new(e.map_columns(f)),
            ),
        }
    }

    /// Split a conjunctive condition into its AND-ed factors, borrowed
    /// (any nesting of `And`; a non-conjunction is its own single factor).
    /// The join planner classifies these without cloning the tree.
    pub fn split_conjuncts(&self) -> Vec<&Expr> {
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Split a conjunctive condition into owned AND-ed factors
    /// (used to separate join conditions from residual selections in the
    /// Theorem-1 construction, Step 2).
    pub fn conjuncts(&self) -> Vec<Expr> {
        self.split_conjuncts().into_iter().cloned().collect()
    }

    /// Factor a join condition over `combined` (the product schema whose
    /// first `left_width` columns come from the left operand) into
    /// equi-key column pairs plus a residual predicate.
    ///
    /// A conjunct of the shape `Col(a) = Col(b)` with the two columns
    /// resolving to *opposite* sides of the product contributes the pair
    /// `(left index, right index)` — the right index rebased into the
    /// right operand's own schema. Every other conjunct (non-equality,
    /// same-side equality, compound operands, unresolvable names) stays
    /// in the residual, so `keys AND residual ≡ self` row-for-row: an
    /// equality over non-NULL keys holds exactly when the hash keys
    /// collide, and a NULL on either side makes the conjunct non-TRUE,
    /// which is the hash join's "Null keys never match" rule.
    pub fn extract_equi_keys(
        &self,
        left_width: usize,
        combined: &Schema,
    ) -> (Vec<(usize, usize)>, Option<Expr>) {
        let mut keys = Vec::new();
        let mut residual = Vec::new();
        for conjunct in self.split_conjuncts() {
            let pair = match conjunct {
                Expr::Cmp(a, CmpOp::Eq, b) => match (a.as_ref(), b.as_ref()) {
                    (Expr::Col(x), Expr::Col(y)) => {
                        match (combined.index_of(x), combined.index_of(y)) {
                            (Ok(ix), Ok(iy)) if ix < left_width && iy >= left_width => {
                                Some((ix, iy - left_width))
                            }
                            (Ok(ix), Ok(iy)) if iy < left_width && ix >= left_width => {
                                Some((iy, ix - left_width))
                            }
                            _ => None,
                        }
                    }
                    _ => None,
                },
                _ => None,
            };
            match pair {
                Some(p) => keys.push(p),
                None => residual.push(conjunct.clone()),
            }
        }
        (keys, Expr::conjoin(residual))
    }

    /// Re-join conjuncts into a single condition; `None` when empty.
    pub fn conjoin(mut factors: Vec<Expr>) -> Option<Expr> {
        let first = if factors.is_empty() {
            return None;
        } else {
            factors.remove(0)
        };
        Some(factors.into_iter().fold(first, |acc, e| acc.and(e)))
    }

    /// Conservative syntactic entailment: `true` means every row on
    /// which `self` evaluates to `TRUE` also makes `other` `TRUE` (under
    /// the three-valued semantics where only `TRUE` keeps a row), so a
    /// selection tightened from `other` to `self` can be applied by
    /// re-filtering an existing result. `false` means *unknown* — never
    /// "does not imply" — so callers must treat it as "fall back".
    ///
    /// Decomposes conjunctions/disjunctions on both sides and decides
    /// atomic `column OP literal` pairs on the same column by interval
    /// reasoning over [`Value`]'s total order (which is exactly the
    /// order [`Value::sql_cmp`] tests, so the reasoning is sound even
    /// across mixed-type literals).
    pub fn implies(&self, other: &Expr) -> bool {
        if self == other {
            return true;
        }
        // other = a AND b: must imply both halves.
        if let Expr::And(a, b) = other {
            return self.implies(a) && self.implies(b);
        }
        // self = a OR b: both alternatives must imply `other`.
        if let Expr::Or(a, b) = self {
            return a.implies(other) && b.implies(other);
        }
        // self = a AND b: either conjunct alone implying `other` suffices.
        if let Expr::And(a, b) = self {
            if a.implies(other) || b.implies(other) {
                return true;
            }
        }
        // other = a OR b: implying either alternative suffices.
        if let Expr::Or(a, b) = other {
            if self.implies(a) || self.implies(b) {
                return true;
            }
        }
        match (self.as_column_cmp(), other.as_column_cmp()) {
            (Some((col, op, v)), Some((ocol, oop, ov))) if col == ocol => {
                atom_implies(op, &v, oop, &ov)
            }
            _ => false,
        }
    }

    /// Normalize an atomic comparison between a column and a literal to
    /// `(column, op, literal)`, flipping `literal OP column` forms.
    fn as_column_cmp(&self) -> Option<(&str, CmpOp, Value)> {
        match self {
            Expr::Cmp(a, op, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Col(c), Expr::Lit(v)) => Some((c, *op, *v)),
                (Expr::Lit(v), Expr::Col(c)) => Some((c, op.flipped(), *v)),
                _ => None,
            },
            _ => None,
        }
    }

    /// Decompose a pure conjunction of `column OP literal` atoms (any
    /// nesting of `And`, either operand order) into its normalized atom
    /// list; `None` when any leaf is something else. Engines use this to
    /// filter on direct value comparisons — `sql_cmp` semantics, no
    /// per-row expression walk — for the overwhelmingly common predicate
    /// shape.
    pub fn as_column_cmp_conjunction(&self) -> Option<Vec<(&str, CmpOp, Value)>> {
        fn walk<'a>(e: &'a Expr, out: &mut Vec<(&'a str, CmpOp, Value)>) -> bool {
            match e {
                Expr::And(a, b) => walk(a, out) && walk(b, out),
                _ => match e.as_column_cmp() {
                    Some(atom) => {
                        out.push(atom);
                        true
                    }
                    None => false,
                },
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out).then_some(out)
    }

    /// OR-join a list of alternatives (used by the `IN (…)` desugaring);
    /// `None` when empty.
    pub fn conjoin_or(mut alternatives: Vec<Expr>) -> Option<Expr> {
        let first = if alternatives.is_empty() {
            return None;
        } else {
            alternatives.remove(0)
        };
        Some(alternatives.into_iter().fold(first, |acc, e| acc.or(e)))
    }
}

/// Does `v OP1 x` entail `v OP2 y` for every non-null `v`? Set-inclusion
/// over the intervals the two atoms carve out of [`Value`]'s total order.
fn atom_implies(op: CmpOp, x: &Value, oop: CmpOp, y: &Value) -> bool {
    if x.is_null() {
        // `col OP NULL` never evaluates to TRUE: vacuously implies anything.
        return true;
    }
    if y.is_null() {
        // The consequent can never hold while the antecedent can.
        return false;
    }
    let c = x.cmp(y);
    match (op, oop) {
        // {x} ⊆ S₂ iff x itself satisfies OP2 against y.
        (CmpOp::Eq, _) => oop.test()(c),
        // "everything but x" only fits inside "everything but x".
        (CmpOp::Ne, CmpOp::Ne) => c.is_eq(),
        (CmpOp::Lt, CmpOp::Lt | CmpOp::Le | CmpOp::Ne) | (CmpOp::Le, CmpOp::Le) => c.is_le(),
        (CmpOp::Le, CmpOp::Lt | CmpOp::Ne) => c.is_lt(),
        (CmpOp::Gt, CmpOp::Gt | CmpOp::Ge | CmpOp::Ne) | (CmpOp::Ge, CmpOp::Ge) => c.is_ge(),
        (CmpOp::Ge, CmpOp::Gt | CmpOp::Ne) => c.is_gt(),
        _ => false,
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (any single char).
/// Crate-visible so the compiled evaluation path shares one definition.
pub(crate) fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Dynamic programming over pattern × text.
    let (np, nt) = (p.len(), t.len());
    let mut dp = vec![vec![false; nt + 1]; np + 1];
    dp[0][0] = true;
    for i in 1..=np {
        if p[i - 1] == '%' {
            dp[i][0] = dp[i - 1][0];
        }
    }
    for i in 1..=np {
        for j in 1..=nt {
            dp[i][j] = match p[i - 1] {
                '%' => dp[i - 1][j] || dp[i][j - 1],
                '_' => dp[i - 1][j - 1],
                c => dp[i - 1][j - 1] && c == t[j - 1],
            };
        }
    }
    dp[np][nt]
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(name) => f.write_str(name),
            Expr::Lit(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Lit(Value::Null) => f.write_str("NULL"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Arith(a, op, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Neg(a) => write!(f, "(-{a})"),
            Expr::Cmp(a, op, b) => write!(f, "{a} {} {b}", op.symbol()),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "NOT ({a})"),
            Expr::IsNull(a) => write!(f, "{a} IS NULL"),
            Expr::Like(a, p) => write!(f, "{a} LIKE '{p}'"),
            Expr::If(c, t, e) => write!(f, "CASE WHEN {c} THEN {t} ELSE {e} END"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::ValueType::*;

    fn schema() -> Schema {
        Schema::of(&[("Model", Str), ("Price", Int), ("Year", Int), ("Note", Str)])
    }

    fn row() -> Tuple {
        tuple!["Jetta", 14500, 2005, "good value"]
    }

    #[test]
    fn column_and_literal() {
        let s = schema();
        let t = row();
        assert_eq!(
            Expr::col("Model").eval(&s, &t).unwrap(),
            Value::str("Jetta")
        );
        assert_eq!(Expr::lit(5).eval(&s, &t).unwrap(), Value::Int(5));
        assert!(Expr::col("Ghost").eval(&s, &t).is_err());
    }

    #[test]
    fn arithmetic_expression() {
        let s = schema();
        let t = row();
        // 2 * Price + 100
        let e = Expr::lit(2).mul(Expr::col("Price")).add(Expr::lit(100));
        assert_eq!(e.eval(&s, &t).unwrap(), Value::Int(29100));
    }

    #[test]
    fn comparison_and_logic() {
        let s = schema();
        let t = row();
        let late = Expr::col("Year").ge(Expr::lit(2005));
        let cheap = Expr::col("Price").lt(Expr::lit(15000));
        assert!(late.clone().and(cheap.clone()).matches(&s, &t).unwrap());
        assert!(!late
            .clone()
            .and(cheap.clone().not())
            .matches(&s, &t)
            .unwrap());
        assert!(late.or(cheap).matches(&s, &t).unwrap());
    }

    #[test]
    fn three_valued_logic_with_null() {
        let s = Schema::of(&[("x", Int)]);
        let t = Tuple::new(vec![Value::Null]);
        let p = Expr::col("x").gt(Expr::lit(0));
        assert_eq!(p.eval(&s, &t).unwrap(), Value::Null);
        assert!(!p.clone().matches(&s, &t).unwrap());
        // NULL OR true = true; NULL AND false = false
        assert_eq!(
            p.clone().or(Expr::lit(true)).eval(&s, &t).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            p.clone().and(Expr::lit(false)).eval(&s, &t).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(p.clone().not().eval(&s, &t).unwrap(), Value::Null);
        assert_eq!(
            Expr::IsNull(Box::new(Expr::col("x"))).eval(&s, &t).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn and_or_reject_non_boolean() {
        let s = Schema::of(&[("x", Int)]);
        let t = tuple![1];
        assert!(Expr::col("x").and(Expr::lit(true)).eval(&s, &t).is_err());
        assert!(Expr::col("x").or(Expr::lit(false)).eval(&s, &t).is_err());
        assert!(Expr::col("x").not().eval(&s, &t).is_err());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("%etta", "Jetta"));
        assert!(like_match("J%", "Jetta"));
        assert!(like_match("J_tta", "Jetta"));
        assert!(!like_match("J_ta", "Jetta"));
        assert!(like_match("%", ""));
        assert!(!like_match("_", ""));
        assert!(like_match("a%b%c", "aXXbYYc"));
    }

    #[test]
    fn like_expr_null_and_type() {
        let s = Schema::of(&[("m", Str), ("n", Int)]);
        let t = tuple!["Jetta", 1];
        let e = Expr::Like(Box::new(Expr::col("m")), "J%".into());
        assert_eq!(e.eval(&s, &t).unwrap(), Value::Bool(true));
        let bad = Expr::Like(Box::new(Expr::col("n")), "J%".into());
        assert!(bad.eval(&s, &t).is_err());
    }

    #[test]
    fn columns_collects_all_references() {
        let e = Expr::col("Price")
            .lt(Expr::col("Avg_Price"))
            .and(Expr::col("Year").eq(Expr::lit(2005)));
        let cols = e.columns();
        assert_eq!(
            cols.into_iter().collect::<Vec<_>>(),
            vec!["Avg_Price".to_string(), "Price".into(), "Year".into()]
        );
    }

    #[test]
    fn map_columns_rewrites() {
        let e = Expr::col("a").add(Expr::col("b"));
        let m = e.map_columns(&|c| format!("t.{c}"));
        assert_eq!(
            m.columns().into_iter().collect::<Vec<_>>(),
            vec!["t.a".to_string(), "t.b".into()]
        );
    }

    #[test]
    fn conjuncts_split_and_rejoin() {
        let e = Expr::col("a")
            .gt(Expr::lit(1))
            .and(Expr::col("b").lt(Expr::lit(2)))
            .and(Expr::col("c").eq(Expr::lit(3)));
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        let rejoined = Expr::conjoin(parts).unwrap();
        assert_eq!(rejoined, e);
        assert_eq!(Expr::conjoin(vec![]), None);
    }

    #[test]
    fn matches_surfaces_non_boolean_condition() {
        let s = schema();
        let t = row();
        // A condition that evaluates to an Int is a malformed predicate,
        // not "false": it must raise the typed error.
        let e = Expr::col("Price").add(Expr::lit(1));
        assert!(matches!(
            e.matches(&s, &t),
            Err(RelationError::NotBoolean { .. })
        ));
        let err = e.matches(&s, &t).unwrap_err();
        assert!(err.to_string().contains("non-boolean"), "{err}");
        // Bool and Null results keep their SQL meaning.
        assert!(Expr::lit(true).matches(&s, &t).unwrap());
        assert!(!Expr::lit(Value::Null).matches(&s, &t).unwrap());
    }

    #[test]
    fn split_conjuncts_borrows_factors() {
        let e = Expr::col("a")
            .gt(Expr::lit(1))
            .and(Expr::col("b").lt(Expr::lit(2)));
        let parts = e.split_conjuncts();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], &Expr::col("a").gt(Expr::lit(1)));
        // A non-conjunction is its own single factor.
        assert_eq!(Expr::lit(true).split_conjuncts().len(), 1);
    }

    #[test]
    fn extract_equi_keys_factors_join_conditions() {
        // Combined schema: left = (Model, Price), right = (Name, Cap).
        let left = Schema::of(&[("Model", Str), ("Price", Int)]);
        let right = Schema::of(&[("Name", Str), ("Cap", Int)]);
        let combined = left.product(&right, "r");

        // Pure equi-join, either operand order.
        let e = Expr::col("Model").eq(Expr::col("Name"));
        assert_eq!(e.extract_equi_keys(2, &combined), (vec![(0, 0)], None));
        let flipped = Expr::col("Name").eq(Expr::col("Model"));
        assert_eq!(
            flipped.extract_equi_keys(2, &combined),
            (vec![(0, 0)], None)
        );

        // Multi-key plus residual: both keys extracted, residual re-joined.
        let resid = Expr::col("Price").lt(Expr::lit(100));
        let e = Expr::col("Model")
            .eq(Expr::col("Name"))
            .and(Expr::col("Price").eq(Expr::col("Cap")))
            .and(resid.clone());
        assert_eq!(
            e.extract_equi_keys(2, &combined),
            (vec![(0, 0), (1, 1)], Some(resid.clone()))
        );

        // Same-side equality, non-equality comparisons, and compound
        // operands all stay residual.
        for e in [
            Expr::col("Model").eq(Expr::col("Price")),
            Expr::col("Price").lt(Expr::col("Cap")),
            Expr::col("Price").add(Expr::lit(1)).eq(Expr::col("Cap")),
            Expr::col("Model").eq(Expr::col("Name")).or(resid.clone()),
        ] {
            let (keys, residual) = e.extract_equi_keys(2, &combined);
            assert!(keys.is_empty(), "{e}");
            assert_eq!(residual, Some(e));
        }
    }

    #[test]
    fn display_is_sql_like() {
        let e = Expr::col("Price")
            .lt(Expr::lit(15000))
            .and(Expr::col("Model").eq(Expr::lit("Jetta")));
        assert_eq!(e.to_string(), "(Price < 15000 AND Model = 'Jetta')");
    }

    #[test]
    fn if_else_selects_branch() {
        let s = Schema::of(&[("x", Int)]);
        let t = tuple![5];
        let e = Expr::if_else(
            Expr::col("x").gt(Expr::lit(3)),
            Expr::lit("big"),
            Expr::lit("small"),
        );
        assert_eq!(e.eval(&s, &t).unwrap(), Value::str("big"));
        let t = tuple![1];
        assert_eq!(e.eval(&s, &t).unwrap(), Value::str("small"));
    }

    #[test]
    fn if_else_null_condition_takes_else() {
        let s = Schema::of(&[("x", Int)]);
        let t = Tuple::new(vec![Value::Null]);
        let e = Expr::if_else(Expr::col("x").gt(Expr::lit(3)), Expr::lit(1), Expr::lit(0));
        assert_eq!(e.eval(&s, &t).unwrap(), Value::Int(0));
    }

    #[test]
    fn if_else_columns_and_display() {
        let e = Expr::if_else(
            Expr::col("a").gt(Expr::lit(0)),
            Expr::col("b"),
            Expr::col("c"),
        );
        assert_eq!(e.columns().len(), 3);
        assert_eq!(e.to_string(), "CASE WHEN a > 0 THEN b ELSE c END");
        let m = e.map_columns(&|c| format!("t.{c}"));
        assert!(m.columns().contains("t.b"));
    }

    #[test]
    fn short_circuit_does_not_mask_errors_on_false_side() {
        // AND short-circuits on false left operand without evaluating right
        let s = Schema::of(&[("x", Int)]);
        let t = tuple![0];
        let e = Expr::lit(false).and(Expr::col("ghost").gt(Expr::lit(1)));
        assert_eq!(e.eval(&s, &t).unwrap(), Value::Bool(false));
        let e = Expr::lit(true).or(Expr::col("ghost").gt(Expr::lit(1)));
        assert_eq!(e.eval(&s, &t).unwrap(), Value::Bool(true));
    }

    fn price(op: fn(Expr, Expr) -> Expr, v: i64) -> Expr {
        op(Expr::col("Price"), Expr::lit(v))
    }

    #[test]
    fn implies_structural() {
        let a = price(Expr::lt, 100);
        let b = Expr::col("Year").ge(Expr::lit(2005));
        assert!(a.implies(&a));
        assert!(a.clone().and(b.clone()).implies(&a));
        assert!(a.clone().and(b.clone()).implies(&b));
        assert!(a.implies(&a.clone().or(b.clone())));
        assert!(a.clone().or(b.clone()).implies(&b.clone().or(a.clone())));
        // A conjunction is implied only when both halves are.
        assert!(!a.implies(&a.clone().and(b.clone())));
        // Different columns never entail each other.
        assert!(!a.implies(&b));
    }

    #[test]
    fn implies_intervals() {
        assert!(price(Expr::lt, 100).implies(&price(Expr::lt, 200)));
        assert!(price(Expr::lt, 100).implies(&price(Expr::le, 100)));
        assert!(price(Expr::le, 99).implies(&price(Expr::lt, 100)));
        assert!(price(Expr::gt, 200).implies(&price(Expr::ge, 200)));
        assert!(price(Expr::ge, 201).implies(&price(Expr::gt, 200)));
        assert!(price(Expr::eq, 5).implies(&price(Expr::le, 5)));
        assert!(price(Expr::eq, 5).implies(&price(Expr::ne, 6)));
        assert!(price(Expr::lt, 5).implies(&price(Expr::ne, 5)));
        assert!(price(Expr::gt, 5).implies(&price(Expr::ne, 5)));
        // Flipped literal-first atoms normalize: 100 > Price ⇔ Price < 100.
        let flipped = Expr::lit(100).gt(Expr::col("Price"));
        assert!(flipped.implies(&price(Expr::lt, 200)));
        // Widening directions must be rejected.
        assert!(!price(Expr::lt, 200).implies(&price(Expr::lt, 100)));
        assert!(!price(Expr::le, 100).implies(&price(Expr::lt, 100)));
        assert!(!price(Expr::ne, 5).implies(&price(Expr::lt, 5)));
        assert!(!price(Expr::ge, 5).implies(&price(Expr::gt, 5)));
    }

    #[test]
    fn implies_null_literals() {
        // `Price < NULL` is never TRUE: it vacuously implies anything,
        // and nothing satisfiable implies it.
        let never = Expr::col("Price").lt(Expr::lit(Value::Null));
        assert!(never.implies(&price(Expr::gt, 1_000_000)));
        assert!(!price(Expr::lt, 100).implies(&never));
    }
}
