//! Minimal CSV reader/writer for loading datasets into relations.
//!
//! Supports quoted fields (RFC-4180 style double quotes with `""` escapes),
//! type inference per column (the most specific type that fits every
//! non-empty field), and round-tripping. Good enough for the used-car
//! sample data and generated TPC-H tables; deliberately not a general CSV
//! library.

use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::{Column, Schema};
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};

/// Split one CSV line into raw fields, honouring quotes. Public so
/// wire-format parsers (the HTTP server's row bodies) can reuse the
/// exact quoting rules of this module instead of approximating them.
pub fn split_line(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' => {
                    if cur.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(RelationError::Csv {
                            line: line_no,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                }
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(RelationError::Csv {
            line: line_no,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(cur);
    Ok(fields)
}

/// Parse CSV text (first row = header) into a relation with inferred
/// column types. Delegates to the streaming reader path.
pub fn parse_csv(name: &str, text: &str) -> Result<Relation> {
    parse_csv_reader(name, text.as_bytes())
}

/// Parse CSV from any buffered reader, one line at a time — the input is
/// never materialized as a whole `String`, so import memory tracks the
/// parsed rows (which become the relation) plus one line buffer.
///
/// Values are parsed into typed cells as lines arrive; the single
/// retroactive pass at EOF unifies column types (mixed numeric/string
/// columns degrade to strings, int/float widen to float) exactly as the
/// in-memory parser always has.
pub fn parse_csv_reader<R: std::io::BufRead>(name: &str, reader: R) -> Result<Relation> {
    let io_err = |line: usize, e: std::io::Error| RelationError::Csv {
        line,
        message: format!("read failed: {e}"),
    };
    let mut lines = reader.lines().enumerate();
    // Header: first non-blank line. Line numbers are 1-based over the
    // raw input, blank lines included, matching the string parser.
    let (hno, header) = loop {
        match lines.next() {
            None => {
                return Err(RelationError::Csv {
                    line: 0,
                    message: "empty input".into(),
                })
            }
            Some((lno, line)) => {
                let line = line.map_err(|e| io_err(lno + 1, e))?;
                if !line.trim().is_empty() {
                    break (lno, line);
                }
            }
        }
    };
    let names = split_line(&header, hno + 1)?;
    let mut rows: Vec<Vec<Value>> = Vec::new();
    // Running column types, unified as rows stream in; columns whose
    // values need a retroactive rewrite (to Str or Float) are flagged so
    // the EOF pass only touches columns that actually changed type.
    let mut types = vec![ValueType::Null; names.len()];
    for (lno, line) in lines {
        let line = line.map_err(|e| io_err(lno + 1, e))?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(&line, lno + 1)?;
        if fields.len() != names.len() {
            return Err(RelationError::Csv {
                line: lno + 1,
                message: format!("expected {} fields, found {}", names.len(), fields.len()),
            });
        }
        let row: Vec<Value> = fields.iter().map(|f| Value::infer_parse(f)).collect();
        for (i, v) in row.iter().enumerate() {
            types[i] = types[i].unify(v.value_type());
        }
        rows.push(row);
    }
    for row in &mut rows {
        for (i, v) in row.iter_mut().enumerate() {
            if types[i] == ValueType::Str && !matches!(v, Value::Str(_) | Value::Null) {
                *v = Value::from(v.to_string());
            } else if types[i] == ValueType::Float {
                if let Value::Int(n) = v {
                    *v = Value::Float(*n as f64);
                }
            }
        }
    }
    let schema = Schema::new(
        names
            .iter()
            .zip(&types)
            .map(|(n, t)| Column::new(n.clone(), *t))
            .collect(),
    )?;
    Relation::with_rows(name, schema, rows.into_iter().map(Tuple::new).collect())
}

/// Load a CSV file through the streaming reader: the file is read in
/// `BufReader`-sized chunks, never held in memory whole.
pub fn load_csv_path(name: &str, path: impl AsRef<std::path::Path>) -> Result<Relation> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| RelationError::Csv {
        line: 0,
        message: format!("open {} failed: {e}", path.display()),
    })?;
    parse_csv_reader(name, std::io::BufReader::new(file))
}

/// Serialize a relation to CSV text (header + rows).
pub fn to_csv(rel: &Relation) -> String {
    fn escape(field: &str) -> String {
        if field.contains(',') || field.contains('"') || field.contains('\n') {
            format!("\"{}\"", field.replace('"', "\"\""))
        } else {
            field.to_string()
        }
    }
    let mut out = String::new();
    let names: Vec<String> = rel.schema().names().iter().map(|n| escape(n)).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for t in rel.rows() {
        let fields: Vec<String> = t.values().iter().map(|v| escape(&v.to_string())).collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CARS: &str = "\
ID,Model,Price,Year
304,Jetta,14500,2005
872,Jetta,15000,2005
132,Civic,13500,2005
";

    #[test]
    fn parses_typed_columns() {
        let r = parse_csv("cars", CARS).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.schema().column("ID").unwrap().ty, ValueType::Int);
        assert_eq!(r.schema().column("Model").unwrap().ty, ValueType::Str);
        assert_eq!(r.value_at(0, "Price").unwrap(), &Value::Int(14500));
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let text = "name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\n";
        let r = parse_csv("t", text).unwrap();
        assert_eq!(r.value_at(0, "name").unwrap(), &Value::str("Smith, John"));
        assert_eq!(r.value_at(0, "notes").unwrap(), &Value::str("said \"hi\""));
    }

    #[test]
    fn mixed_column_degrades_to_string() {
        let text = "x\n1\nabc\n";
        let r = parse_csv("t", text).unwrap();
        assert_eq!(r.schema().column("x").unwrap().ty, ValueType::Str);
        assert_eq!(r.value_at(0, "x").unwrap(), &Value::str("1"));
    }

    #[test]
    fn int_and_float_widen_to_float() {
        let text = "x\n1\n2.5\n";
        let r = parse_csv("t", text).unwrap();
        assert_eq!(r.schema().column("x").unwrap().ty, ValueType::Float);
        assert_eq!(r.value_at(0, "x").unwrap(), &Value::Float(1.0));
    }

    #[test]
    fn empty_fields_are_null() {
        let text = "x,y\n1,\n,2\n";
        let r = parse_csv("t", text).unwrap();
        assert_eq!(r.value_at(0, "y").unwrap(), &Value::Null);
        assert_eq!(r.value_at(1, "x").unwrap(), &Value::Null);
        // column types come from the non-null values
        assert_eq!(r.schema().column("x").unwrap().ty, ValueType::Int);
    }

    #[test]
    fn ragged_rows_rejected() {
        let text = "x,y\n1\n";
        assert!(matches!(
            parse_csv("t", text),
            Err(RelationError::Csv { line: 2, .. })
        ));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse_csv("t", "x\n\"abc\n").is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_csv("t", "").is_err());
        assert!(parse_csv("t", "\n\n").is_err());
    }

    #[test]
    fn round_trip() {
        let r = parse_csv("cars", CARS).unwrap();
        let text = to_csv(&r);
        let r2 = parse_csv("cars", &text).unwrap();
        assert!(r.multiset_eq(&r2));
    }

    /// A reader that hands out the input a few bytes at a time, so the
    /// streaming path is exercised across chunk boundaries.
    struct Trickle<'a> {
        rest: &'a [u8],
    }

    impl std::io::Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.rest.len().min(buf.len()).min(3);
            buf[..n].copy_from_slice(&self.rest[..n]);
            self.rest = &self.rest[n..];
            Ok(n)
        }
    }

    #[test]
    fn streaming_reader_matches_string_parser() {
        let text = "x,y,note\n1,2.5,\"a,b\"\n\n3,4,plain\n,5.5,\"q\"\"q\"\n";
        let eager = parse_csv("t", text).unwrap();
        let streamed = parse_csv_reader(
            "t",
            std::io::BufReader::with_capacity(
                4,
                Trickle {
                    rest: text.as_bytes(),
                },
            ),
        )
        .unwrap();
        assert_eq!(eager, streamed);
        assert_eq!(streamed.schema().column("x").unwrap().ty, ValueType::Int);
        assert_eq!(streamed.schema().column("y").unwrap().ty, ValueType::Float);
    }

    #[test]
    fn streaming_reader_reports_line_numbers() {
        let text = "x,y\n1,2\n3\n";
        assert!(matches!(
            parse_csv_reader("t", text.as_bytes()),
            Err(RelationError::Csv { line: 3, .. })
        ));
    }

    #[test]
    fn load_csv_path_streams_from_disk() {
        let path = std::env::temp_dir().join(format!("ssa_csv_stream_{}.csv", std::process::id()));
        std::fs::write(&path, CARS).unwrap();
        let from_disk = load_csv_path("cars", &path).unwrap();
        std::fs::remove_file(&path).ok();
        let from_text = parse_csv("cars", CARS).unwrap();
        assert_eq!(from_disk, from_text);
        assert!(load_csv_path("cars", "/nonexistent/nope.csv").is_err());
    }

    #[test]
    fn round_trip_with_commas_in_values() {
        let text = "name\n\"a,b\"\n";
        let r = parse_csv("t", text).unwrap();
        let r2 = parse_csv("t", &to_csv(&r)).unwrap();
        assert!(r.multiset_eq(&r2));
    }
}
