//! Relational algebra over [`Relation`]s with multiset semantics.
//!
//! These are the classical operators (the *complete set* of Sec. III-B —
//! selection, projection, product, union, difference — plus join, distinct,
//! sort and relational group-by/aggregate). The spreadsheet algebra in
//! `spreadsheet-algebra` composes them with grouping/ordering retention;
//! the SQL reference evaluator in `ssa-sql` uses them directly.

use crate::agg::AggFunc;
use crate::compiled::{BoundExpr, PairRow};
use crate::error::{RelationError, Result};
use crate::expr::Expr;
use crate::par::{chunk_map, DEFAULT_PARALLEL_THRESHOLD};
use crate::relation::Relation;
use crate::schema::{Column, Schema};
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};
use std::collections::{BTreeMap, HashMap, HashSet};

/// σ — keep tuples satisfying `condition`.
pub fn select(rel: &Relation, condition: &Expr) -> Result<Relation> {
    let mut out = Relation::new(rel.name(), rel.schema().clone());
    for t in rel.rows() {
        if condition.matches(rel.schema(), t)? {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// π (keep-list form) — project onto `columns`, in the order given.
/// No duplicate elimination (multiset semantics).
pub fn project(rel: &Relation, columns: &[&str]) -> Result<Relation> {
    let indices: Vec<usize> = columns
        .iter()
        .map(|c| rel.schema().index_of(c))
        .collect::<Result<_>>()?;
    let schema = Schema::new(
        indices
            .iter()
            .map(|&i| rel.schema().columns()[i].clone())
            .collect(),
    )?;
    let mut out = Relation::new(rel.name(), schema);
    for t in rel.rows() {
        out.insert(t.project(&indices))?;
    }
    Ok(out)
}

/// π (drop-one form) — remove a single column; this is the spreadsheet π
/// of Def. 6.
pub fn project_out(rel: &Relation, column: &str) -> Result<Relation> {
    let keep: Vec<&str> = rel
        .schema()
        .names()
        .into_iter()
        .filter(|n| *n != column)
        .collect();
    if keep.len() == rel.schema().len() {
        return Err(RelationError::UnknownColumn {
            name: column.to_string(),
        });
    }
    project(rel, &keep)
}

/// × — Cartesian product. Clashing right-hand names are prefixed with the
/// right relation's name (Def. 7's `C^j ∪ C^k_s`).
pub fn product(left: &Relation, right: &Relation) -> Result<Relation> {
    product_opts(left, right, DEFAULT_PARALLEL_THRESHOLD)
}

/// [`product`] with an explicit parallelism threshold: when the output
/// cardinality `|left| × |right|` reaches it, the row gather is chunked
/// across scoped threads.
pub fn product_opts(
    left: &Relation,
    right: &Relation,
    parallel_threshold: usize,
) -> Result<Relation> {
    let schema = left.schema().product(right.schema(), right.name());
    let name = format!("{}_x_{}", left.name(), right.name());
    crate::fault_check!("ops.product");
    let cardinality = left.len().saturating_mul(right.len());
    let lids: Vec<u32> = (0..left.len() as u32).collect();
    let chunks = chunk_map(&lids, cardinality >= parallel_threshold.max(1), |chunk| {
        let mut rows = Vec::with_capacity(chunk.len() * right.len());
        for &li in chunk {
            let l = &left.rows()[li as usize];
            for r in right.rows() {
                rows.push(l.concat(r));
            }
        }
        rows
    })?;
    let mut rows = Vec::with_capacity(cardinality);
    for c in chunks {
        rows.extend(c);
    }
    Relation::with_rows(name, schema, rows)
}

/// ⋈ — join on an arbitrary condition evaluated over the concatenated row
/// (Def. 10: relational join with condition F). Row-for-row equivalent to
/// `select(product(l, r), F)` — pinned by [`oracle::join`] differentials —
/// but evaluated as a build/probe hash join on the equi-key conjuncts of
/// `F` (falling back to a bound nested loop when `F` has none).
pub fn join(left: &Relation, right: &Relation, condition: &Expr) -> Result<Relation> {
    join_opts(left, right, condition, DEFAULT_PARALLEL_THRESHOLD)
}

/// [`join`] with an explicit parallelism threshold (build partitioning,
/// probe chunks and the row gather parallelize past it).
///
/// The plan: [`Expr::extract_equi_keys`] factors `F` into equi-key column
/// pairs plus a residual, the smaller operand is hashed on its key tuple
/// (SQL semantics — a NULL in any key column never matches, so such rows
/// skip the table entirely), the larger operand probes, and only the
/// *bound* residual runs on candidate pairs. Output order is exactly the
/// nested loop's: left-major, right rows in operand order.
pub fn join_opts(
    left: &Relation,
    right: &Relation,
    condition: &Expr,
    parallel_threshold: usize,
) -> Result<Relation> {
    crate::fault_check!("ops.join");
    let schema = left.schema().product(right.schema(), right.name());
    let name = format!("{}_join_{}", left.name(), right.name());
    let left_width = left.schema().len();
    let (keys, residual) = condition.extract_equi_keys(left_width, &schema);
    let pairs = if keys.is_empty() {
        let bound = condition.bind(&schema)?;
        nested_pairs(left, right, &bound, left_width, parallel_threshold)?
    } else {
        let residual = residual.map(|e| e.bind(&schema)).transpose()?;
        hash_pairs(
            left,
            right,
            &keys,
            residual.as_ref(),
            left_width,
            parallel_threshold,
        )?
    };
    gather_pairs(name, schema, left, right, &pairs, parallel_threshold)
}

/// The nested-loop join path, forced: every pair is tested with the bound
/// condition, no hash table. Kept public as the hash path's differential
/// oracle and as the baseline the `join` bench measures against.
pub fn join_nested(
    left: &Relation,
    right: &Relation,
    condition: &Expr,
    parallel_threshold: usize,
) -> Result<Relation> {
    let schema = left.schema().product(right.schema(), right.name());
    let name = format!("{}_join_{}", left.name(), right.name());
    let bound = condition.bind(&schema)?;
    let pairs = nested_pairs(left, right, &bound, left.schema().len(), parallel_threshold)?;
    gather_pairs(name, schema, left, right, &pairs, parallel_threshold)
}

/// All (left, right) row-index pairs satisfying `bound`, by exhaustive
/// scan; left chunks run in parallel when the pair count crosses the
/// threshold.
fn nested_pairs(
    left: &Relation,
    right: &Relation,
    bound: &BoundExpr,
    left_width: usize,
    parallel_threshold: usize,
) -> Result<Vec<(u32, u32)>> {
    let lids: Vec<u32> = (0..left.len() as u32).collect();
    let parallel = left.len().saturating_mul(right.len()) >= parallel_threshold.max(1);
    let chunks = chunk_map(&lids, parallel, |chunk| -> Result<Vec<(u32, u32)>> {
        let mut out = Vec::new();
        for &li in chunk {
            let l = &left.rows()[li as usize];
            for (ri, r) in right.rows().iter().enumerate() {
                let row = PairRow {
                    left: l,
                    right: r,
                    left_width,
                };
                if bound.matches(&row)? {
                    out.push((li, ri as u32));
                }
            }
        }
        Ok(out)
    })?;
    let mut pairs = Vec::new();
    for c in chunks {
        pairs.extend(c?);
    }
    Ok(pairs)
}

/// Decide which join operand to hash. Raw row counts alone mislead when
/// the smaller side is duplicate-heavy: probing then emits its long
/// candidate chains right-major, and (because `hash_pairs` must return
/// the nested loop's left-major order) every matched pair pays a stable
/// re-sort. Model both effects with free statistics: estimated matched
/// pairs `P = l·r / max(d_l, d_r)` from the per-key-column distinct
/// estimates, one hash operation per build/probe row, and a re-sort
/// surcharge of `P·log₂P` comparisons weighted at 1/16 of a hash
/// operation (sorting `(u32, u32)` pairs is far cheaper per step than
/// hashing a key tuple). Build left iff `l + P·log₂P/16 < r`.
pub(crate) fn choose_build_left(
    left: &Relation,
    right: &Relation,
    keys: &[(usize, usize)],
) -> bool {
    let l = left.row_count() as f64;
    let r = right.row_count() as f64;
    // A composite key is at least as selective as its most selective
    // column, so the max over per-column distincts is a safe lower bound.
    let d_l = keys
        .iter()
        .map(|&(lk, _)| left.distinct_estimate_at(lk))
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let d_r = keys
        .iter()
        .map(|&(_, rk)| right.distinct_estimate_at(rk))
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let pairs = l * r / d_l.max(d_r);
    let sort_penalty = pairs * pairs.max(2.0).log2() / 16.0;
    l + sort_penalty < r
}

/// Build/probe core: hash one operand on its key tuple (side chosen by
/// [`choose_build_left`]), probe the other, run the bound residual on
/// candidates. Emits pairs in the nested loop's order (left-major); when
/// the *left* side is the build side the probe emits right-major, so a
/// stable re-sort by left index restores it.
fn hash_pairs(
    left: &Relation,
    right: &Relation,
    keys: &[(usize, usize)],
    residual: Option<&BoundExpr>,
    left_width: usize,
    parallel_threshold: usize,
) -> Result<Vec<(u32, u32)>> {
    let build_left = choose_build_left(left, right, keys);
    let (build, probe) = if build_left {
        (left, right)
    } else {
        (right, left)
    };
    let build_keys: Vec<usize> = keys
        .iter()
        .map(|&(l, r)| if build_left { l } else { r })
        .collect();
    let probe_keys: Vec<usize> = keys
        .iter()
        .map(|&(l, r)| if build_left { r } else { l })
        .collect();

    // Partitioned build: per-chunk tables merged in chunk order, so each
    // key's candidate list stays sorted by build-row index. Rows with a
    // NULL in any key column can never satisfy the equality conjunct
    // (NULL = x is NULL, not TRUE) and stay out of the table.
    let bids: Vec<u32> = (0..build.len() as u32).collect();
    let threshold = parallel_threshold.max(1);
    let partials = chunk_map(&bids, build.len() >= threshold, |chunk| {
        let mut table: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for &bi in chunk {
            let t = &build.rows()[bi as usize];
            if build_keys.iter().any(|&k| t.get(k).is_null()) {
                continue;
            }
            table
                .entry(build_keys.iter().map(|&k| *t.get(k)).collect())
                .or_default()
                .push(bi);
        }
        table
    })?;
    let mut table: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
    for partial in partials {
        for (k, mut v) in partial {
            table.entry(k).or_default().append(&mut v);
        }
    }

    let pids: Vec<u32> = (0..probe.len() as u32).collect();
    let chunks = chunk_map(
        &pids,
        probe.len() >= threshold,
        |chunk| -> Result<Vec<(u32, u32)>> {
            let mut out = Vec::new();
            let mut key: Vec<Value> = Vec::with_capacity(probe_keys.len());
            for &pi in chunk {
                let t = &probe.rows()[pi as usize];
                if probe_keys.iter().any(|&k| t.get(k).is_null()) {
                    continue;
                }
                key.clear();
                key.extend(probe_keys.iter().map(|&k| *t.get(k)));
                let Some(candidates) = table.get(key.as_slice()) else {
                    continue;
                };
                for &bi in candidates {
                    let (li, ri) = if build_left { (bi, pi) } else { (pi, bi) };
                    let row = PairRow {
                        left: &left.rows()[li as usize],
                        right: &right.rows()[ri as usize],
                        left_width,
                    };
                    let keep = match residual {
                        Some(e) => e.matches(&row)?,
                        None => true,
                    };
                    if keep {
                        out.push((li, ri));
                    }
                }
            }
            Ok(out)
        },
    )?;
    let mut pairs = Vec::new();
    for c in chunks {
        pairs.extend(c?);
    }
    if build_left {
        // Probing the right side emitted right-major order; the stable
        // sort keeps the per-left right order and restores left-major.
        pairs.sort_by_key(|&(li, _)| li);
    }
    Ok(pairs)
}

/// Materialize the concatenated output rows for the matched index pairs.
fn gather_pairs(
    name: String,
    schema: Schema,
    left: &Relation,
    right: &Relation,
    pairs: &[(u32, u32)],
    parallel_threshold: usize,
) -> Result<Relation> {
    let chunks = chunk_map(pairs, pairs.len() >= parallel_threshold.max(1), |chunk| {
        let mut rows = Vec::with_capacity(chunk.len());
        for &(li, ri) in chunk {
            rows.push(left.rows()[li as usize].concat(&right.rows()[ri as usize]));
        }
        rows
    })?;
    let mut rows = Vec::with_capacity(pairs.len());
    for c in chunks {
        rows.extend(c);
    }
    Relation::with_rows(name, schema, rows)
}

/// ∪ — multiset union (UNION ALL): "the union of a tuple and its duplicate
/// are two identical tuples" (Sec. III-B). Columns of `right` are aligned
/// to `left`'s column order by name.
pub fn union_all(left: &Relation, right: &Relation) -> Result<Relation> {
    crate::fault_check!("ops.union");
    let mapping = alignment(left, right)?;
    let mut rows = Vec::with_capacity(left.len() + right.len());
    rows.extend(left.rows().iter().cloned());
    rows.extend(right.rows().iter().map(|t| t.project(&mapping)));
    Relation::with_rows(left.name(), left.schema().clone(), rows)
}

/// − — multiset difference: `{t, t} − {t} = {t}` (Sec. III-B). Each tuple
/// of `right` cancels at most one equal tuple of `left`. The cancellation
/// budget is a hash map over the interned values (O(1) per row) rather
/// than an ordered map of full-tuple comparisons.
pub fn difference(left: &Relation, right: &Relation) -> Result<Relation> {
    crate::fault_check!("ops.difference");
    let mapping = alignment(left, right)?;
    let mut budget: HashMap<Tuple, usize> = HashMap::with_capacity(right.len());
    for t in right.rows() {
        *budget.entry(t.project(&mapping)).or_insert(0) += 1;
    }
    let mut rows = Vec::new();
    for t in left.rows() {
        match budget.get_mut(t) {
            Some(n) if *n > 0 => *n -= 1,
            _ => rows.push(t.clone()),
        }
    }
    Relation::with_rows(left.name(), left.schema().clone(), rows)
}

/// δ — duplicate elimination (DISTINCT), preserving first-occurrence order
/// via a hash set over the interned values.
pub fn distinct(rel: &Relation) -> Result<Relation> {
    let mut seen: HashSet<&Tuple> = HashSet::with_capacity(rel.len());
    let mut rows = Vec::new();
    for t in rel.rows() {
        if seen.insert(t) {
            rows.push(t.clone());
        }
    }
    Relation::with_rows(rel.name(), rel.schema().clone(), rows)
}

/// Obvious-by-construction reference implementations of the operators the
/// hash engine accelerates. These are the *definitions* (Def. 7/9/10 and
/// Sec. III-B read literally) — quadratic products, ordered maps — kept
/// for the randomized differential tests and the `join` bench, never for
/// production evaluation.
pub mod oracle {
    use super::*;

    /// ⋈ as literally `select(product(l, r), F)` (Def. 10).
    pub fn join(left: &Relation, right: &Relation, condition: &Expr) -> Result<Relation> {
        let mut out = select(&product(left, right)?, condition)?;
        out.set_name(format!("{}_join_{}", left.name(), right.name()));
        Ok(out)
    }

    /// × as the sequential row-at-a-time nested loop.
    pub fn product(left: &Relation, right: &Relation) -> Result<Relation> {
        let schema = left.schema().product(right.schema(), right.name());
        let mut out = Relation::new(format!("{}_x_{}", left.name(), right.name()), schema);
        for l in left.rows() {
            for r in right.rows() {
                out.insert(l.concat(r))?;
            }
        }
        Ok(out)
    }

    /// ∪ as row-at-a-time inserts.
    pub fn union_all(left: &Relation, right: &Relation) -> Result<Relation> {
        let mapping = alignment(left, right)?;
        let mut out = Relation::new(left.name(), left.schema().clone());
        for t in left.rows() {
            out.insert(t.clone())?;
        }
        for t in right.rows() {
            out.insert(t.project(&mapping))?;
        }
        Ok(out)
    }

    /// − with an ordered-map budget (full-tuple comparisons).
    pub fn difference(left: &Relation, right: &Relation) -> Result<Relation> {
        let mapping = alignment(left, right)?;
        let mut budget: BTreeMap<Tuple, usize> = BTreeMap::new();
        for t in right.rows() {
            *budget.entry(t.project(&mapping)).or_insert(0) += 1;
        }
        let mut out = Relation::new(left.name(), left.schema().clone());
        for t in left.rows() {
            match budget.get_mut(t) {
                Some(n) if *n > 0 => *n -= 1,
                _ => out.insert(t.clone())?,
            }
        }
        Ok(out)
    }

    /// δ with an ordered map (full-tuple comparisons).
    pub fn distinct(rel: &Relation) -> Result<Relation> {
        let mut seen: BTreeMap<Tuple, ()> = BTreeMap::new();
        let mut out = Relation::new(rel.name(), rel.schema().clone());
        for t in rel.rows() {
            if seen.insert(t.clone(), ()).is_none() {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }
}

/// A sort key: column plus direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    pub column: String,
    pub ascending: bool,
}

impl SortKey {
    pub fn asc(column: impl Into<String>) -> SortKey {
        SortKey {
            column: column.into(),
            ascending: true,
        }
    }

    pub fn desc(column: impl Into<String>) -> SortKey {
        SortKey {
            column: column.into(),
            ascending: false,
        }
    }
}

/// Sort by a list of keys (stable, so previous order is the final
/// tiebreak — exactly what an interactive spreadsheet user expects when
/// clicking one column header after another).
pub fn sort(rel: &Relation, keys: &[SortKey]) -> Result<Relation> {
    let indices: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| rel.schema().index_of(&k.column).map(|i| (i, k.ascending)))
        .collect::<Result<_>>()?;
    let mut rows = rel.rows().to_vec();
    rows.sort_by(|a, b| {
        for &(idx, asc) in &indices {
            let ord = a.get(idx).cmp(b.get(idx));
            let ord = if asc { ord } else { ord.reverse() };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Relation::with_rows(rel.name(), rel.schema().clone(), rows)
}

/// One aggregate output: function, input column (`None` = COUNT(*)), and
/// the output column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSpec {
    pub func: AggFunc,
    pub column: Option<String>,
    pub output: String,
}

impl AggSpec {
    pub fn new(func: AggFunc, column: Option<&str>, output: impl Into<String>) -> AggSpec {
        AggSpec {
            func,
            column: column.map(|c| c.to_string()),
            output: output.into(),
        }
    }
}

/// Relational GROUP BY + aggregation: one output tuple per group, with the
/// grouping columns followed by the aggregate columns. This is the
/// *relational* semantics used as the SQL reference; the spreadsheet
/// algebra instead materializes aggregates as repeated computed columns
/// (Def. 11) — the contrast is the heart of the paper's aggregation
/// challenge.
pub fn group_aggregate(rel: &Relation, group_by: &[&str], aggs: &[AggSpec]) -> Result<Relation> {
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|c| rel.schema().index_of(c))
        .collect::<Result<_>>()?;
    let agg_idx: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match &a.column {
            Some(c) => rel.schema().index_of(c).map(Some),
            None => Ok(None),
        })
        .collect::<Result<_>>()?;

    // Output schema: group columns, then aggregate result columns.
    let mut cols: Vec<Column> = group_idx
        .iter()
        .map(|&i| rel.schema().columns()[i].clone())
        .collect();
    for (spec, idx) in aggs.iter().zip(&agg_idx) {
        let ty = match spec.func {
            AggFunc::Count | AggFunc::CountNonNull | AggFunc::CountDistinct => ValueType::Int,
            AggFunc::Avg | AggFunc::StdDev => ValueType::Float,
            AggFunc::Sum => idx
                .map(|i| rel.schema().columns()[i].ty)
                .unwrap_or(ValueType::Int),
            AggFunc::Min | AggFunc::Max => idx
                .map(|i| rel.schema().columns()[i].ty)
                .unwrap_or(ValueType::Null),
        };
        cols.push(Column::new(spec.output.clone(), ty));
    }
    let schema = Schema::new(cols)?;

    // Group rows by key, preserving first-appearance order of groups.
    let mut order: Vec<Tuple> = Vec::new();
    let mut groups: BTreeMap<Tuple, Vec<usize>> = BTreeMap::new();
    for (ri, t) in rel.rows().iter().enumerate() {
        let key = t.project(&group_idx);
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(ri);
    }

    let mut out = Relation::new(format!("{}_grouped", rel.name()), schema);
    for key in order {
        let members = &groups[&key];
        let mut values = key.clone().into_values();
        for (spec, idx) in aggs.iter().zip(&agg_idx) {
            let inputs: Vec<Value> = match idx {
                Some(i) => members.iter().map(|&ri| *rel.rows()[ri].get(*i)).collect(),
                // COUNT(*): one unit value per tuple
                None => members.iter().map(|_| Value::Int(1)).collect(),
            };
            values.push(spec.func.apply(&inputs)?);
        }
        out.insert(Tuple::new(values))?;
    }
    Ok(out)
}

/// θ helper — extend a relation with one computed column defined by an
/// expression over each row (Def. 12 core).
pub fn extend(rel: &Relation, name: &str, expr: &Expr) -> Result<Relation> {
    let mut out = rel.clone();
    // Determine the output type from the first non-null result.
    let mut ty = ValueType::Null;
    let mut values = Vec::with_capacity(rel.len());
    for t in rel.rows() {
        let v = expr.eval(rel.schema(), t)?;
        ty = ty.unify(v.value_type());
        values.push(v);
    }
    let mut iter = values.into_iter();
    out.add_column(Column::new(name, ty), |_, _| {
        iter.next().expect("row count is stable during extend")
    })?;
    Ok(out)
}

/// Column alignment mapping from `left`'s order into `right`'s indices,
/// failing unless the relations are union-compatible.
fn alignment(left: &Relation, right: &Relation) -> Result<Vec<usize>> {
    if !left.schema().union_compatible(right.schema()) {
        return Err(RelationError::NotUnionCompatible {
            left: left.schema().to_string(),
            right: right.schema().to_string(),
        });
    }
    left.schema()
        .columns()
        .iter()
        .map(|c| right.schema().index_of(&c.name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::ValueType::*;

    fn cars() -> Relation {
        let schema = Schema::of(&[("ID", Int), ("Model", Str), ("Price", Int), ("Year", Int)]);
        Relation::with_rows(
            "cars",
            schema,
            vec![
                tuple![304, "Jetta", 14500, 2005],
                tuple![872, "Jetta", 15000, 2005],
                tuple![423, "Jetta", 17000, 2006],
                tuple![132, "Civic", 13500, 2005],
                tuple![879, "Civic", 15000, 2006],
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_filters() {
        let r = select(&cars(), &Expr::col("Year").eq(Expr::lit(2005))).unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.rows().iter().all(|t| t.get(3) == &Value::Int(2005)));
    }

    #[test]
    fn select_propagates_eval_errors() {
        assert!(select(&cars(), &Expr::col("Ghost").eq(Expr::lit(1))).is_err());
    }

    #[test]
    fn project_keeps_order_and_duplicates() {
        let r = project(&cars(), &["Model", "Year"]).unwrap();
        assert_eq!(r.schema().names(), vec!["Model", "Year"]);
        assert_eq!(r.len(), 5); // no duplicate elimination
        let r2 = project_out(&r, "Year").unwrap();
        assert_eq!(r2.schema().names(), vec!["Model"]);
        assert_eq!(r2.len(), 5);
        // Jetta appears 3 times
        assert_eq!(r2.histogram()[&tuple!["Jetta"]], 3);
    }

    #[test]
    fn project_out_unknown_column_errors() {
        assert!(project_out(&cars(), "Ghost").is_err());
    }

    #[test]
    fn product_sizes_and_names() {
        let dealers = Relation::with_rows(
            "dealers",
            Schema::of(&[("ID", Int), ("City", Str)]),
            vec![tuple![1, "Ann Arbor"], tuple![2, "Detroit"]],
        )
        .unwrap();
        let p = product(&cars(), &dealers).unwrap();
        assert_eq!(p.len(), 10);
        assert!(p.schema().contains("dealers.ID"));
        assert!(p.schema().contains("City"));
    }

    #[test]
    fn join_matches_product_plus_select() {
        let models = Relation::with_rows(
            "models",
            Schema::of(&[("Name", Str), ("Maker", Str)]),
            vec![tuple!["Jetta", "VW"], tuple!["Civic", "Honda"]],
        )
        .unwrap();
        let cond = Expr::col("Model").eq(Expr::col("Name"));
        let j = join(&cars(), &models, &cond).unwrap();
        let p = select(&product(&cars(), &models).unwrap(), &cond).unwrap();
        assert_eq!(j.len(), 5);
        assert!(j.multiset_eq(&p));
        // ... and in the same row order as the definitional nested loop.
        assert_eq!(
            j.rows(),
            oracle::join(&cars(), &models, &cond).unwrap().rows()
        );
    }

    #[test]
    fn join_null_keys_never_match() {
        // SQL semantics, pinned: NULL = NULL is NULL, not TRUE, so rows
        // with NULL keys match nothing on either side.
        let a = Relation::with_rows(
            "a",
            Schema::of(&[("k", Int)]),
            vec![tuple![1], tuple![Value::Null], tuple![2]],
        )
        .unwrap();
        let b = Relation::with_rows(
            "b",
            Schema::of(&[("j", Int)]),
            vec![tuple![Value::Null], tuple![1], tuple![1]],
        )
        .unwrap();
        let cond = Expr::col("k").eq(Expr::col("j"));
        for threshold in [1, usize::MAX] {
            let j = join_opts(&a, &b, &cond, threshold).unwrap();
            assert_eq!(j.len(), 2, "only k=1 matches j=1 twice");
            assert!(j.rows().iter().all(|t| t.get(0) == &Value::Int(1)));
            assert_eq!(j.rows(), oracle::join(&a, &b, &cond).unwrap().rows());
        }
        // The forced nested loop agrees (it goes through sql_cmp).
        let n = join_nested(&a, &b, &cond, usize::MAX).unwrap();
        assert_eq!(n.rows(), join(&a, &b, &cond).unwrap().rows());
    }

    #[test]
    fn join_residual_and_duplicate_keys() {
        let prices = Relation::with_rows(
            "p",
            Schema::of(&[("M", Str), ("Cap", Int)]),
            vec![
                tuple!["Jetta", 15000],
                tuple!["Jetta", 14800],
                tuple!["Civic", 14000],
            ],
        )
        .unwrap();
        // Equi-conjunct plus a residual comparison between both sides.
        let cond = Expr::col("Model")
            .eq(Expr::col("M"))
            .and(Expr::col("Price").le(Expr::col("Cap")));
        let j = join(&cars(), &prices, &cond).unwrap();
        let o = oracle::join(&cars(), &prices, &cond).unwrap();
        assert_eq!(j.rows(), o.rows());
        assert_eq!(j.len(), 4); // 14500≤{15000,14800}, 13500≤14000, 15000≤15000
    }

    #[test]
    fn join_without_equi_conjunct_falls_back() {
        let b = Relation::with_rows(
            "b",
            Schema::of(&[("lo", Int)]),
            vec![tuple![14000], tuple![16000]],
        )
        .unwrap();
        let cond = Expr::col("Price").gt(Expr::col("lo"));
        let (keys, residual) = cond.extract_equi_keys(
            cars().schema().len(),
            &cars().schema().product(b.schema(), "b"),
        );
        assert!(keys.is_empty());
        assert_eq!(residual, Some(cond.clone()));
        let j = join(&cars(), &b, &cond).unwrap();
        assert_eq!(j.rows(), oracle::join(&cars(), &b, &cond).unwrap().rows());
    }

    #[test]
    fn join_builds_on_either_side_with_same_output_order() {
        // 5-row cars joined against a 1-row and a 9-row right side: one
        // hashes the right operand, the other the left. Order must match
        // the nested loop in both regimes.
        for m in [1usize, 9] {
            let right = Relation::with_rows(
                "r",
                Schema::of(&[("Y", Int)]),
                (0..m).map(|i| tuple![2005 + (i as i64 % 2)]).collect(),
            )
            .unwrap();
            let cond = Expr::col("Year").eq(Expr::col("Y"));
            let j = join(&cars(), &right, &cond).unwrap();
            assert_eq!(
                j.rows(),
                oracle::join(&cars(), &right, &cond).unwrap().rows()
            );
        }
    }

    #[test]
    fn build_side_prefers_small_unique_side() {
        // Classic case: a small side of unique keys against a larger
        // probe side. The sort penalty is modest, so build left.
        let small = Relation::with_rows(
            "small",
            Schema::of(&[("k", Int)]),
            (0..100i64).map(|i| tuple![i]).collect(),
        )
        .unwrap();
        let big = Relation::with_rows(
            "big",
            Schema::of(&[("k", Int)]),
            (0..10_000i64).map(|i| tuple![i % 100]).collect(),
        )
        .unwrap();
        assert!(choose_build_left(&small, &big, &[(0, 0)]));
    }

    #[test]
    fn build_side_avoids_duplicate_heavy_small_side() {
        // The smaller side has only 4 distinct keys, so the estimated
        // pair count explodes and the left-major re-sort would dominate:
        // raw row counts would build left, the statistics say right.
        let dupheavy = Relation::with_rows(
            "dupheavy",
            Schema::of(&[("k", Int)]),
            (0..2_000i64).map(|i| tuple![i % 4]).collect(),
        )
        .unwrap();
        let big = Relation::with_rows(
            "big",
            Schema::of(&[("k", Int)]),
            (0..20_000i64).map(|i| tuple![i % 4]).collect(),
        )
        .unwrap();
        assert!(dupheavy.len() < big.len());
        assert!(!choose_build_left(&dupheavy, &big, &[(0, 0)]));
        // Output must stay identical to the nested loop either way.
        let cond = Expr::col("k").eq(Expr::col("big.k"));
        let take = |r: &Relation, n: usize| {
            Relation::with_rows(r.name(), r.schema().clone(), r.rows()[..n].to_vec()).unwrap()
        };
        let (a, b) = (take(&dupheavy, 40), take(&big, 60));
        let j = join(&a, &b, &cond).unwrap();
        assert_eq!(j.rows(), oracle::join(&a, &b, &cond).unwrap().rows());
    }

    #[test]
    fn join_condition_must_be_boolean() {
        let models =
            Relation::with_rows("m", Schema::of(&[("Name", Str)]), vec![tuple!["Jetta"]]).unwrap();
        // `Price + 1` is an Int, not a predicate.
        let bad = Expr::col("Price").add(Expr::lit(1));
        assert!(matches!(
            join(&cars(), &models, &bad),
            Err(RelationError::NotBoolean { .. })
        ));
        assert!(matches!(
            select(&cars(), &bad),
            Err(RelationError::NotBoolean { .. })
        ));
    }

    #[test]
    fn parallel_threshold_does_not_change_join_results() {
        let models = Relation::with_rows(
            "models",
            Schema::of(&[("Name", Str), ("Floor", Int)]),
            vec![tuple!["Jetta", 14600], tuple!["Civic", 13000]],
        )
        .unwrap();
        let cond = Expr::col("Model")
            .eq(Expr::col("Name"))
            .and(Expr::col("Price").ge(Expr::col("Floor")));
        let seq = join_opts(&cars(), &models, &cond, usize::MAX).unwrap();
        let par = join_opts(&cars(), &models, &cond, 1).unwrap();
        assert_eq!(seq.rows(), par.rows());
        let seq = product_opts(&cars(), &models, usize::MAX).unwrap();
        let par = product_opts(&cars(), &models, 1).unwrap();
        assert_eq!(seq.rows(), par.rows());
    }

    #[test]
    fn union_all_keeps_duplicates_and_aligns_columns() {
        let a = Relation::with_rows(
            "a",
            Schema::of(&[("x", Int), ("y", Str)]),
            vec![tuple![1, "p"]],
        )
        .unwrap();
        let b = Relation::with_rows(
            "b",
            Schema::of(&[("y", Str), ("x", Int)]),
            vec![tuple!["p", 1], tuple!["q", 2]],
        )
        .unwrap();
        let u = union_all(&a, &b).unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(u.histogram()[&tuple![1, "p"]], 2);
    }

    #[test]
    fn union_requires_compatibility() {
        let a = Relation::new("a", Schema::of(&[("x", Int)]));
        let b = Relation::new("b", Schema::of(&[("z", Int)]));
        assert!(matches!(
            union_all(&a, &b),
            Err(RelationError::NotUnionCompatible { .. })
        ));
    }

    #[test]
    fn difference_is_multiset() {
        let schema = Schema::of(&[("x", Int)]);
        let a = Relation::with_rows("a", schema.clone(), vec![tuple![1], tuple![1], tuple![2]])
            .unwrap();
        let b = Relation::with_rows("b", schema, vec![tuple![1]]).unwrap();
        let d = difference(&a, &b).unwrap();
        // {1,1,2} − {1} = {1,2}
        assert_eq!(d.len(), 2);
        assert_eq!(d.histogram()[&tuple![1]], 1);
        assert_eq!(d.histogram()[&tuple![2]], 1);
    }

    #[test]
    fn distinct_preserves_first_occurrence_order() {
        let schema = Schema::of(&[("x", Int)]);
        let r = Relation::with_rows(
            "r",
            schema,
            vec![tuple![2], tuple![1], tuple![2], tuple![3], tuple![1]],
        )
        .unwrap();
        let d = distinct(&r).unwrap();
        let xs: Vec<&Value> = d.rows().iter().map(|t| t.get(0)).collect();
        assert_eq!(xs, vec![&Value::Int(2), &Value::Int(1), &Value::Int(3)]);
    }

    #[test]
    fn hashed_set_operators_match_oracle() {
        let schema = Schema::of(&[("x", Int), ("s", Str)]);
        let a = Relation::with_rows(
            "a",
            schema.clone(),
            vec![
                tuple![1, "p"],
                tuple![2, "q"],
                tuple![1, "p"],
                tuple![Value::Null, "r"],
                tuple![Value::Null, "r"],
            ],
        )
        .unwrap();
        let b = Relation::with_rows(
            "b",
            schema,
            vec![tuple![1, "p"], tuple![Value::Null, "r"], tuple![3, "z"]],
        )
        .unwrap();
        assert_eq!(
            distinct(&a).unwrap().rows(),
            oracle::distinct(&a).unwrap().rows()
        );
        assert_eq!(
            difference(&a, &b).unwrap().rows(),
            oracle::difference(&a, &b).unwrap().rows()
        );
        assert_eq!(
            union_all(&a, &b).unwrap().rows(),
            oracle::union_all(&a, &b).unwrap().rows()
        );
    }

    #[test]
    fn sort_is_stable_multi_key() {
        let r = sort(&cars(), &[SortKey::asc("Model"), SortKey::desc("Price")]).unwrap();
        let ids: Vec<&Value> = r.rows().iter().map(|t| t.get(0)).collect();
        assert_eq!(
            ids,
            vec![
                &Value::Int(879), // Civic 15000
                &Value::Int(132), // Civic 13500
                &Value::Int(423), // Jetta 17000
                &Value::Int(872), // Jetta 15000
                &Value::Int(304), // Jetta 14500
            ]
        );
    }

    #[test]
    fn group_aggregate_relational_semantics() {
        let r = group_aggregate(
            &cars(),
            &["Model"],
            &[
                AggSpec::new(AggFunc::Avg, Some("Price"), "Avg_Price"),
                AggSpec::new(AggFunc::Count, None, "N"),
            ],
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().names(), vec!["Model", "Avg_Price", "N"]);
        // groups appear in first-appearance order: Jetta then Civic
        assert_eq!(r.rows()[0].get(0), &Value::str("Jetta"));
        assert_eq!(r.rows()[0].get(1), &Value::Float(15500.0));
        assert_eq!(r.rows()[0].get(2), &Value::Int(3));
        assert_eq!(r.rows()[1].get(1), &Value::Float(14250.0));
    }

    #[test]
    fn group_aggregate_empty_group_by_is_global() {
        let r = group_aggregate(
            &cars(),
            &[],
            &[AggSpec::new(AggFunc::Max, Some("Price"), "MaxP")],
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0].get(0), &Value::Int(17000));
    }

    #[test]
    fn extend_adds_computed_column() {
        let e = Expr::col("Price").div(Expr::lit(1000));
        let r = extend(&cars(), "PriceK", &e).unwrap();
        assert_eq!(r.value_at(0, "PriceK").unwrap(), &Value::Float(14.5));
        assert!(extend(&r, "PriceK", &e).is_err(), "duplicate name rejected");
    }
}
