//! Schemas: ordered lists of named, typed columns.

use crate::error::{RelationError, Result};
use crate::value::ValueType;
use std::fmt;

/// A single column: a name and a declared type.
///
/// Column names are case-sensitive, matching the paper's examples
/// (`Avg_Price` vs `Price`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ValueType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ValueType) -> Column {
        Column {
            name: name.into(),
            ty,
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.ty)
    }
}

/// An ordered set of columns. Column order matters for display (it is the
/// left-to-right order of the spreadsheet) but not for union compatibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<Column>) -> Result<Schema> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|d| d.name == c.name) {
                return Err(RelationError::DuplicateColumn {
                    name: c.name.clone(),
                });
            }
        }
        Ok(Schema { columns })
    }

    /// Empty schema (zero columns).
    pub fn empty() -> Schema {
        Schema {
            columns: Vec::new(),
        }
    }

    /// Convenience constructor from `(name, type)` pairs; panics on
    /// duplicates, for use in tests and static schema definitions.
    pub fn of(cols: &[(&str, ValueType)]) -> Schema {
        Schema::new(cols.iter().map(|(n, t)| Column::new(*n, *t)).collect())
            .expect("static schema must not contain duplicates")
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| RelationError::UnknownColumn {
                name: name.to_string(),
            })
    }

    pub fn contains(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c.name == name)
    }

    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// All column names in display order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Append a column, rejecting duplicates.
    pub fn push(&mut self, column: Column) -> Result<()> {
        if self.contains(&column.name) {
            return Err(RelationError::DuplicateColumn { name: column.name });
        }
        self.columns.push(column);
        Ok(())
    }

    /// Overwrite a column's static type in place (by position). Used when
    /// an incremental update re-unifies a computed column's type over a
    /// narrowed multiset without rebuilding the relation.
    pub fn set_column_type(&mut self, idx: usize, ty: ValueType) {
        self.columns[idx].ty = ty;
    }

    /// Remove a column by name, returning its former position.
    pub fn remove(&mut self, name: &str) -> Result<usize> {
        let idx = self.index_of(name)?;
        self.columns.remove(idx);
        Ok(idx)
    }

    /// Rename a column, rejecting clashes with existing names.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        if from != to && self.contains(to) {
            return Err(RelationError::DuplicateColumn {
                name: to.to_string(),
            });
        }
        let idx = self.index_of(from)?;
        self.columns[idx].name = to.to_string();
        Ok(())
    }

    /// Union compatibility: same multiset of (name, type) pairs. The paper
    /// requires "the same set of columns, excluding computed attributes"
    /// (Sec. III-B, set operators); callers exclude computed columns first.
    pub fn union_compatible(&self, other: &Schema) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.columns.iter().all(|c| {
            other.columns.iter().any(|d| {
                // Same name, and types that unify without degrading to Str
                // (or are identical, covering Str/Str itself).
                d.name == c.name && (d.ty == c.ty || d.ty.unify(c.ty) != ValueType::Str)
            })
        })
    }

    /// Concatenate two schemas for a product/join, disambiguating clashing
    /// names from the right side with a prefix (`right.Name`), mirroring
    /// how the prototype displays joined sheets.
    pub fn product(&self, other: &Schema, right_prefix: &str) -> Schema {
        let mut cols = self.columns.clone();
        for c in &other.columns {
            let name = if self.contains(&c.name) {
                format!("{right_prefix}.{}", c.name)
            } else {
                c.name.clone()
            };
            // A prefixed name could still clash; keep appending primes.
            let mut unique = name;
            while cols.iter().any(|d| d.name == unique) {
                unique.push('\'');
            }
            cols.push(Column::new(unique, c.ty));
        }
        Schema { columns: cols }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ValueType::*;

    fn cars() -> Schema {
        Schema::of(&[("ID", Int), ("Model", Str), ("Price", Int), ("Year", Int)])
    }

    #[test]
    fn rejects_duplicates() {
        let r = Schema::new(vec![Column::new("a", Int), Column::new("a", Str)]);
        assert_eq!(r, Err(RelationError::DuplicateColumn { name: "a".into() }));
    }

    #[test]
    fn index_and_lookup() {
        let s = cars();
        assert_eq!(s.index_of("Price").unwrap(), 2);
        assert!(s.index_of("Nope").is_err());
        assert!(s.contains("Model"));
        assert_eq!(s.column("Year").unwrap().ty, Int);
    }

    #[test]
    fn push_remove_rename() {
        let mut s = cars();
        s.push(Column::new("Mileage", Int)).unwrap();
        assert_eq!(s.len(), 5);
        assert!(s.push(Column::new("Mileage", Int)).is_err());
        let pos = s.remove("Model").unwrap();
        assert_eq!(pos, 1);
        assert!(!s.contains("Model"));
        s.rename("Price", "Cost").unwrap();
        assert!(s.contains("Cost"));
        assert!(s.rename("Cost", "Year").is_err());
        assert!(s.rename("Ghost", "X").is_err());
    }

    #[test]
    fn union_compatibility_ignores_order() {
        let a = Schema::of(&[("x", Int), ("y", Str)]);
        let b = Schema::of(&[("y", Str), ("x", Int)]);
        let c = Schema::of(&[("x", Int), ("z", Str)]);
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
        assert!(!a.union_compatible(&Schema::of(&[("x", Int)])));
    }

    #[test]
    fn product_disambiguates_clashes() {
        let a = Schema::of(&[("id", Int), ("name", Str)]);
        let b = Schema::of(&[("id", Int), ("city", Str)]);
        let p = a.product(&b, "right");
        assert_eq!(p.names(), vec!["id", "name", "right.id", "city"]);
    }

    #[test]
    fn product_handles_repeated_clash() {
        let a = Schema::of(&[("id", Int), ("r.id", Int)]);
        let b = Schema::of(&[("id", Int)]);
        let p = a.product(&b, "r");
        assert_eq!(p.len(), 3);
        // all names unique
        let names = p.names();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn display_formats() {
        let s = Schema::of(&[("a", Int), ("b", Str)]);
        assert_eq!(s.to_string(), "(a: int, b: str)");
    }
}
