//! Scalar values stored in spreadsheet cells and relation fields.
//!
//! The paper's prototype sat on PostgreSQL; this module supplies the value
//! system the substrate needs: NULL, booleans, 64-bit integers, floats and
//! strings, with a *total* order (so any column can participate in grouping
//! and ordering, Def. 1) and SQL-style arithmetic where NULL propagates.

use crate::error::{RelationError, Result};
use crate::intern::Sym;
use std::cmp::Ordering;
use std::fmt;

/// The dynamic type of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// The type of `Value::Null` when no better type is known.
    Null,
    Bool,
    Int,
    Float,
    Str,
}

impl ValueType {
    /// Whether a value of this type supports arithmetic aggregation
    /// (SUM/AVG). COUNT/MIN/MAX work on every type.
    pub fn is_numeric(self) -> bool {
        matches!(self, ValueType::Int | ValueType::Float)
    }

    /// The common supertype of two types, used for column type inference.
    /// Int and Float widen to Float; anything joined with Null keeps the
    /// non-null type; otherwise mixed types degrade to Str.
    pub fn unify(self, other: ValueType) -> ValueType {
        use ValueType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Null, b) => b,
            (a, Null) => a,
            (Int, Float) | (Float, Int) => Float,
            _ => Str,
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Null => "null",
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A single scalar value.
///
/// `Value` implements [`Ord`] with a *total* order so spreadsheets can be
/// grouped and sorted on any column: NULL sorts first, then booleans
/// (false < true), then numbers (integers and floats compared numerically,
/// with ties broken in favour of the integer so ordering is antisymmetric),
/// then strings (lexicographic).
///
/// Strings are *interned* ([`Sym`]): `Value` is `Copy` (16 bytes), so
/// cloning a value — and gathering a row — is a memcpy, and string
/// equality/hashing are O(1) on the symbol id. String ordering resolves
/// through the interner (Def. 1's lexicographic order is preserved
/// exactly; see [`crate::intern`]).
#[derive(Debug, Clone, Copy)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Sym),
}

impl Value {
    /// Construct a string value, interning the text.
    pub fn str(s: impl Into<Sym>) -> Value {
        Value::Str(s.into())
    }

    /// The interned text of a string value.
    pub fn as_str(&self) -> Option<&'static str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The dynamic type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Truthiness for predicate evaluation. NULL is not true (SQL
    /// three-valued logic collapses to "not selected" at the filter).
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Parse a textual field into the most specific value type:
    /// empty → NULL, `true`/`false` → Bool, integer, float, else string.
    /// Currency/thousands decorations (`$`, `,`) are tolerated for numbers,
    /// matching the paper's used-car examples ("\$14,500", "76,000").
    pub fn infer_parse(text: &str) -> Value {
        let t = text.trim();
        if t.is_empty() {
            return Value::Null;
        }
        match t {
            "true" | "TRUE" | "True" => return Value::Bool(true),
            "false" | "FALSE" | "False" => return Value::Bool(false),
            _ => {}
        }
        let cleaned: String = t.chars().filter(|&c| c != '$' && c != ',').collect();
        let candidate = cleaned.trim();
        if !candidate.is_empty() {
            if let Ok(i) = candidate.parse::<i64>() {
                // Only treat as numeric if the decorations were plausible
                // (i.e. the original was not arbitrary text with a comma).
                if t.chars()
                    .all(|c| c.is_ascii_digit() || "+-$,. ".contains(c))
                {
                    return Value::Int(i);
                }
            }
            if let Ok(f) = candidate.parse::<f64>() {
                if t.chars()
                    .all(|c| c.is_ascii_digit() || "+-$,.eE ".contains(c))
                {
                    return Value::Float(f);
                }
            }
        }
        Value::str(t)
    }

    /// SQL-style addition with NULL propagation; strings concatenate.
    /// The `Str + Str` path is checked first so the hot concat never
    /// allocates a `TypeMismatch` message it would immediately discard.
    pub fn add(&self, other: &Value) -> Result<Value> {
        if let (Value::Str(a), Value::Str(b)) = (self, other) {
            let (a, b) = (a.as_str(), b.as_str());
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(a);
            s.push_str(b);
            return Ok(Value::from(s));
        }
        binary_numeric(self, other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// SQL-style subtraction with NULL propagation.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        binary_numeric(self, other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// SQL-style multiplication with NULL propagation.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        binary_numeric(self, other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Division. Integer/integer division produces a float (spreadsheet
    /// semantics — users expect `7 / 2 = 3.5` in a formula cell).
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let (a, b) = (
            self.as_f64()
                .ok_or_else(|| type_mismatch("/", self, other))?,
            other
                .as_f64()
                .ok_or_else(|| type_mismatch("/", self, other))?,
        );
        if b == 0.0 {
            return Err(RelationError::DivisionByZero);
        }
        Ok(Value::Float(a / b))
    }

    /// Modulo on integers (floats are truncated), NULL propagating.
    pub fn rem(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(RelationError::DivisionByZero)
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => Err(type_mismatch("%", self, other)),
        }
    }

    /// Unary negation, NULL propagating.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            _ => Err(RelationError::TypeMismatch {
                context: format!("cannot negate {self}"),
            }),
        }
    }

    /// Comparison for predicates: returns NULL if either side is NULL
    /// (SQL semantics), otherwise Bool of the comparison on the total order.
    pub fn sql_cmp(&self, other: &Value, test: fn(Ordering) -> bool) -> Value {
        if self.is_null() || other.is_null() {
            return Value::Null;
        }
        Value::Bool(test(self.cmp(other)))
    }
}

fn type_mismatch(op: &str, a: &Value, b: &Value) -> RelationError {
    RelationError::TypeMismatch {
        context: format!("`{a}` {op} `{b}`"),
    }
}

fn binary_numeric(
    a: &Value,
    b: &Value,
    op: &str,
    int_op: fn(i64, i64) -> Option<i64>,
    float_op: fn(f64, f64) -> f64,
) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => {
            int_op(*x, *y)
                .map(Value::Int)
                .ok_or_else(|| RelationError::TypeMismatch {
                    context: format!("integer overflow in `{x}` {op} `{y}`"),
                })
        }
        _ => {
            let (x, y) = (
                a.as_f64().ok_or_else(|| type_mismatch(op, a, b))?,
                b.as_f64().ok_or_else(|| type_mismatch(op, a, b))?,
            );
            Ok(Value::Float(float_op(x, y)))
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            // One interned id per distinct string: equality is id equality.
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => self.cmp(other) == Ordering::Equal,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b).then(Ordering::Less),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)).then(Ordering::Greater),
            (Str(a), Str(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that compare equal must hash equally; hash the
            // f64 bits of the numeric value for both.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            // One id per distinct string → hashing the id is consistent
            // with equality and never touches string bytes.
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => f.write_str(s.as_str()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Sym::intern(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Sym::from_string(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn total_order_ranks_types() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-5),
            Value::Int(3),
            Value::Float(3.5),
            Value::str("abc"),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn int_float_compare_numerically() {
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(2.5) < Value::Int(3));
        // equal numerics: int sorts before float but neither equals the
        // other is NOT the rule — equality is numeric; ordering breaks the
        // tie deterministically.
        assert!(Value::Int(2) < Value::Float(2.0));
        assert!(Value::Float(2.0) > Value::Int(2));
    }

    #[test]
    fn ordering_is_antisymmetric_for_mixed_numerics() {
        let a = Value::Int(2);
        let b = Value::Float(2.0);
        assert_eq!(a.cmp(&b), Ordering::Less);
        assert_eq!(b.cmp(&a), Ordering::Greater);
    }

    #[test]
    fn hash_consistent_with_eq_for_same_variant() {
        assert_eq!(h(&Value::Int(7)), h(&Value::Int(7)));
        assert_eq!(h(&Value::str("x")), h(&Value::str("x")));
        assert_ne!(h(&Value::Int(7)), h(&Value::Int(8)));
    }

    #[test]
    fn arithmetic_null_propagates() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(1).mul(&Value::Null).unwrap(), Value::Null);
        assert_eq!(Value::Null.div(&Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic_mixed_numeric() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            Value::Int(7).div(&Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
        assert_eq!(Value::Int(7).rem(&Value::Int(4)).unwrap(), Value::Int(3));
    }

    #[test]
    fn string_concat_via_add() {
        assert_eq!(
            Value::str("foo").add(&Value::str("bar")).unwrap(),
            Value::str("foobar")
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(
            Value::Int(1).div(&Value::Int(0)),
            Err(RelationError::DivisionByZero)
        );
        assert_eq!(
            Value::Int(1).rem(&Value::Int(0)),
            Err(RelationError::DivisionByZero)
        );
    }

    #[test]
    fn overflow_is_an_error_not_a_panic() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::Int(i64::MIN).sub(&Value::Int(1)).is_err());
    }

    #[test]
    fn type_mismatch_reported() {
        assert!(Value::str("a").sub(&Value::Int(1)).is_err());
        assert!(Value::Bool(true).neg().is_err());
    }

    #[test]
    fn sql_cmp_null_yields_null() {
        assert_eq!(
            Value::Null.sql_cmp(&Value::Int(1), Ordering::is_eq),
            Value::Null
        );
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Int(1), Ordering::is_eq),
            Value::Bool(true)
        );
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Int(2), Ordering::is_lt),
            Value::Bool(true)
        );
    }

    #[test]
    fn infer_parse_currency_and_thousands() {
        assert_eq!(Value::infer_parse("$14,500"), Value::Int(14500));
        assert_eq!(Value::infer_parse("76,000"), Value::Int(76000));
        assert_eq!(Value::infer_parse("3.25"), Value::Float(3.25));
        assert_eq!(Value::infer_parse("Jetta"), Value::str("Jetta"));
        assert_eq!(Value::infer_parse(""), Value::Null);
        assert_eq!(Value::infer_parse("true"), Value::Bool(true));
        // a comma inside text must not be mistaken for a number
        assert_eq!(Value::infer_parse("a,b"), Value::str("a,b"));
    }

    #[test]
    fn display_round_trips_ints() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Null.to_string(), "");
    }

    #[test]
    fn unify_types() {
        use ValueType::*;
        assert_eq!(Int.unify(Float), Float);
        assert_eq!(Null.unify(Str), Str);
        assert_eq!(Int.unify(Str), Str);
        assert_eq!(Bool.unify(Bool), Bool);
    }

    #[test]
    fn is_true_only_for_bool_true() {
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Bool(false).is_true());
        assert!(!Value::Null.is_true());
        assert!(!Value::Int(1).is_true());
    }
}
