//! Global append-only string interner backing [`crate::value::Value::Str`].
//!
//! Every distinct string the process ever stores in a `Value` is interned
//! exactly once and addressed by a [`Sym`] — a `Copy` 32-bit handle. The
//! interner guarantees *one id per distinct string*, which buys the three
//! properties the evaluation engine is built around:
//!
//! * **cloning** a string value is a memcpy of the handle (no heap
//!   traffic) — the final row gather of the index-vector engine becomes
//!   near-memcpy even for string-heavy relations;
//! * **equality and hashing** are O(1) on the symbol id — dedup (DE),
//!   grouping (τ) and aggregation (η) key hashing never touch string
//!   bytes;
//! * **ordering** stays the lexicographic order Def. 1 requires: resolved
//!   through a per-interner *sorted-rank cache* that is invalidated by
//!   inserts and rebuilt lazily on the first bulk comparison afterwards.
//!   Individual comparisons whose ids the current cache does not cover
//!   fall back to comparing the resolved strings directly, so correctness
//!   never waits on a rebuild.
//!
//! Storage is append-only: interned strings are leaked into the heap
//! (`Box::leak`) so resolution hands out `&'static str` without holding
//! any lock across the caller's use. Memory is bounded by the number of
//! *distinct* strings, which is the same bound an `Arc<str>`-page design
//! would give a process-lifetime interner — with none of the refcount
//! traffic. Persistence must always write the resolved text, never the
//! id: ids are assigned in first-seen order and are meaningless across
//! processes (see `spreadsheet-algebra`'s `persist` module).

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// An interned string handle. `Copy`, 4 bytes; equality is id equality
/// (one id per distinct string), ordering is lexicographic on the
/// resolved text.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    /// id → string, append-only.
    strings: Vec<&'static str>,
    /// string → id, for dedup on intern.
    map: HashMap<&'static str, u32>,
}

/// Lexicographic ranks, a snapshot: `ranks[id]` is the rank of `id` among
/// the first `ranks.len()` interned strings. Internally consistent — two
/// ids both below `len()` compare by rank exactly as their strings
/// compare — even if the interner has grown since the snapshot.
type RankSnapshot = Arc<Vec<u32>>;

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            strings: Vec::new(),
            map: HashMap::new(),
        })
    })
}

fn rank_cache() -> &'static RwLock<RankSnapshot> {
    static RANKS: OnceLock<RwLock<RankSnapshot>> = OnceLock::new();
    RANKS.get_or_init(|| RwLock::new(Arc::new(Vec::new())))
}

impl Sym {
    /// Intern `s`, returning its unique handle. O(1) (one hash probe)
    /// when the string was seen before; first sights allocate once, for
    /// the lifetime of the process.
    pub fn intern(s: &str) -> Sym {
        {
            let inner = interner().read().expect("interner lock poisoned");
            if let Some(&id) = inner.map.get(s) {
                return Sym(id);
            }
        }
        let mut inner = interner().write().expect("interner lock poisoned");
        if let Some(&id) = inner.map.get(s) {
            return Sym(id);
        }
        Sym::insert_locked(&mut inner, Box::leak(s.to_owned().into_boxed_str()))
    }

    /// Intern an owned string; new strings keep their buffer (no copy).
    pub fn from_string(s: String) -> Sym {
        {
            let inner = interner().read().expect("interner lock poisoned");
            if let Some(&id) = inner.map.get(s.as_str()) {
                return Sym(id);
            }
        }
        let mut inner = interner().write().expect("interner lock poisoned");
        if let Some(&id) = inner.map.get(s.as_str()) {
            return Sym(id);
        }
        Sym::insert_locked(&mut inner, Box::leak(s.into_boxed_str()))
    }

    fn insert_locked(inner: &mut Interner, leaked: &'static str) -> Sym {
        let id = u32::try_from(inner.strings.len()).expect("interner overflow: > 2^32 strings");
        inner.strings.push(leaked);
        inner.map.insert(leaked, id);
        Sym(id)
    }

    /// The interned text. `'static` because storage is append-only and
    /// process-lived; no lock is held after return.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner lock poisoned").strings[self.0 as usize]
    }

    /// The raw id — exposed for columnar sort keys; never persist it.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Number of distinct strings interned so far (diagnostics/tests).
    pub fn interned_count() -> usize {
        interner()
            .read()
            .expect("interner lock poisoned")
            .strings
            .len()
    }
}

/// The current lexicographic rank snapshot, rebuilt if inserts happened
/// since the last build. `snapshot[sym.id()]` orders exactly like
/// `sym.as_str()` for every sym whose id is below `snapshot.len()`.
///
/// Bulk sorts call this once and then compare plain `u32`s; the rebuild
/// is O(n log n) over distinct strings and amortizes across every sort
/// until the next insert.
pub fn rank_snapshot() -> RankSnapshot {
    {
        let cached = rank_cache().read().expect("rank cache poisoned");
        let inner = interner().read().expect("interner lock poisoned");
        if cached.len() == inner.strings.len() {
            return Arc::clone(&cached);
        }
    }
    let mut cached = rank_cache().write().expect("rank cache poisoned");
    let inner = interner().read().expect("interner lock poisoned");
    if cached.len() == inner.strings.len() {
        return Arc::clone(&cached);
    }
    let mut by_text: Vec<u32> = (0..inner.strings.len() as u32).collect();
    by_text.sort_unstable_by_key(|&id| inner.strings[id as usize]);
    let mut ranks = vec![0u32; inner.strings.len()];
    for (rank, &id) in by_text.iter().enumerate() {
        ranks[id as usize] = rank as u32;
    }
    *cached = Arc::new(ranks);
    Arc::clone(&cached)
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.0 == other.0 {
            return Ordering::Equal;
        }
        // Fast path: the current rank snapshot covers both ids → two
        // array reads. (Kept internally consistent: both ids must be
        // below the *snapshot's* length, not the interner's.)
        {
            let cached = rank_cache().read().expect("rank cache poisoned");
            let n = cached.len() as u32;
            if self.0 < n && other.0 < n {
                return cached[self.0 as usize].cmp(&cached[other.0 as usize]);
            }
        }
        // Slow path (ids newer than the last rebuilt snapshot): compare
        // the resolved text. Correct regardless of cache state; bulk
        // sorts trigger the rebuild via `rank_snapshot`.
        self.as_str().cmp(other.as_str())
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?} #{})", self.as_str(), self.0)
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::from_string(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(s: Sym) -> u64 {
        let mut hasher = DefaultHasher::new();
        s.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn one_id_per_distinct_string() {
        let a = Sym::intern("intern-test-alpha");
        let b = Sym::intern("intern-test-alpha");
        let c = Sym::from_string("intern-test-alpha".to_string());
        let d = Sym::intern("intern-test-beta");
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.id(), b.id());
        assert_eq!(h(a), h(b));
    }

    #[test]
    fn resolution_round_trips() {
        let s = "intern-test-round-trip \u{1F5C2} ünïcode";
        assert_eq!(Sym::intern(s).as_str(), s);
        assert_eq!(Sym::from_string(s.to_string()).as_str(), s);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut syms: Vec<Sym> = ["pear", "apple", "Banana", "apple pie", "", "zzz"]
            .iter()
            .map(|s| Sym::intern(s))
            .collect();
        syms.sort();
        let sorted: Vec<&str> = syms.iter().map(|s| s.as_str()).collect();
        let mut expect = vec!["pear", "apple", "Banana", "apple pie", "", "zzz"];
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn rank_snapshot_orders_like_strings() {
        // Force strings in non-lexicographic insert order.
        let syms: Vec<Sym> = ["mmm", "aaa", "zzz", "mm", "aab"]
            .iter()
            .map(|s| Sym::intern(s))
            .collect();
        let snap = rank_snapshot();
        for a in &syms {
            for b in &syms {
                assert_eq!(
                    snap[a.id() as usize].cmp(&snap[b.id() as usize]),
                    a.as_str().cmp(b.as_str()),
                    "rank order must match text order for {:?} vs {:?}",
                    a,
                    b
                );
            }
        }
    }

    #[test]
    fn rank_snapshot_rebuilds_after_insert() {
        let before = rank_snapshot();
        // A string no other test interns, to force growth.
        let fresh = Sym::intern("intern-test-rebuild-sentinel-93142");
        assert!(before.len() as u32 <= fresh.id());
        let after = rank_snapshot();
        assert!(after.len() as u32 > fresh.id());
        // Comparisons against a fresh id are still correct pre-rebuild.
        let apple = Sym::intern("apple");
        assert_eq!(fresh.cmp(&apple), fresh.as_str().cmp(apple.as_str()));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let ids: Vec<Vec<u32>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    s.spawn(|| {
                        (0..50)
                            .map(|i| Sym::intern(&format!("intern-test-concurrent-{i}")).id())
                            .collect::<Vec<u32>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("interner thread panicked"))
                .collect()
        });
        for w in ids.windows(2) {
            assert_eq!(w[0], w[1], "same strings must get the same ids");
        }
    }
}
