//! Deterministic fault injection for robustness tests.
//!
//! This module only exists under the `fault-injection` cargo feature; in
//! production builds none of the injection sites compile to anything.
//! Each site in the workspace is a named probe — `fault::check("eval.filter")?`
//! or `fault::maybe_panic("par.chunk")` — that does nothing until a test
//! arms it with [`arm`]. An armed site fires exactly once, on its Nth hit,
//! then disarms itself, so a single arm produces a single deterministic
//! failure even when the site is reached from retries or fallbacks.
//!
//! The registry is process-global (sites are reached from worker threads),
//! so tests that arm failpoints must serialize through [`lock`] to avoid
//! seeing each other's faults.
//!
//! Site catalog: see DESIGN.md §12 ("Failure model").

use crate::error::{RelationError, Result};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Return `Err(RelationError::FaultInjected { site })`.
    Error,
    /// Panic with the site name in the payload (exercises unwind paths).
    Panic,
    /// Abort the whole process (`std::process::abort`) — a hard crash
    /// with no unwinding and no destructors, equivalent to `kill -9`
    /// landing exactly at the site. Only meaningful in child processes
    /// spawned by crash-recovery tests (armed via [`arm_from_env`]).
    Abort,
}

#[derive(Debug)]
struct Site {
    /// Fires when `hits` reaches this value (1-based).
    nth: u64,
    behavior: Behavior,
}

#[derive(Debug, Default)]
struct Registry {
    armed: HashMap<String, Site>,
    hits: HashMap<String, u64>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    // A panic-behavior failpoint poisons this mutex by design; the data is
    // plain counters, so recover the guard and keep going.
    let mut guard = match registry().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut guard)
}

/// Arm `site` to fire on its `nth` hit (1-based) with the given behavior.
/// Re-arming an already-armed site replaces the previous arming. The hit
/// counter for the site restarts at zero.
pub fn arm(site: &str, nth: u64, behavior: Behavior) {
    with_registry(|r| {
        r.hits.insert(site.to_string(), 0);
        r.armed.insert(
            site.to_string(),
            Site {
                nth: nth.max(1),
                behavior,
            },
        );
    });
}

/// Disarm `site` if armed; hit counting continues either way.
pub fn disarm(site: &str) {
    with_registry(|r| {
        r.armed.remove(site);
    });
}

/// Disarm every site and zero every hit counter.
pub fn reset() {
    with_registry(|r| {
        r.armed.clear();
        r.hits.clear();
    });
}

/// How many times `site` has been hit since the last [`arm`]/[`reset`].
pub fn hits(site: &str) -> u64 {
    with_registry(|r| r.hits.get(site).copied().unwrap_or(0))
}

/// Record a hit at `site`; returns the armed behavior when this hit is the
/// one the site was armed for (and disarms it).
fn fire(site: &str) -> Option<Behavior> {
    with_registry(|r| {
        let count = r.hits.entry(site.to_string()).or_insert(0);
        *count += 1;
        if r.armed.get(site).is_some_and(|s| s.nth == *count) {
            Some(r.armed.remove(site).expect("checked above").behavior)
        } else {
            None
        }
    })
}

/// Hard-stop the process at `site` (no unwinding, no destructors). The
/// eprintln gives crash tests something to correlate in the child's
/// stderr before the abort.
fn abort_at(site: &str) -> ! {
    eprintln!("fault: aborting process at `{site}`");
    std::process::abort();
}

/// Failpoint probe for fallible sites. Counts a hit; when armed for this
/// hit, either returns `Err(FaultInjected)`, panics, or aborts the
/// process per the behavior.
pub fn check(site: &str) -> Result<()> {
    match fire(site) {
        Some(Behavior::Error) => Err(RelationError::FaultInjected {
            site: site.to_string(),
        }),
        Some(Behavior::Panic) => panic!("fault injected at `{site}`"),
        Some(Behavior::Abort) => abort_at(site),
        None => Ok(()),
    }
}

/// Failpoint probe for infallible degradation sites (e.g. "pretend the
/// delta classifier gave up"). Counts a hit; `true` when armed for it.
/// A `Panic`-armed site panics here too.
pub fn should_fire(site: &str) -> bool {
    match fire(site) {
        Some(Behavior::Error) => true,
        Some(Behavior::Panic) => panic!("fault injected at `{site}`"),
        Some(Behavior::Abort) => abort_at(site),
        None => false,
    }
}

/// Failpoint probe for panic-only sites inside infallible worker closures.
pub fn maybe_panic(site: &str) {
    match fire(site) {
        Some(Behavior::Abort) => abort_at(site),
        Some(_) => panic!("fault injected at `{site}`"),
        None => {}
    }
}

/// Arm failpoints from the `SSA_FAULTS` environment variable, so a child
/// process under test can be made to die (or fail) deterministically at a
/// named site. Format: comma-separated `site=nth:behavior` specs, with
/// behavior one of `error`, `panic`, `abort`:
///
/// ```text
/// SSA_FAULTS="wal.fsync=3:abort,server.publish=1:error"
/// ```
///
/// Returns the number of sites armed; malformed specs are reported on
/// stderr and skipped (a crash-test child should still come up).
pub fn arm_from_env() -> usize {
    let Ok(spec) = std::env::var("SSA_FAULTS") else {
        return 0;
    };
    let mut armed = 0;
    for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let parsed = (|| {
            let (site, rest) = part.trim().split_once('=')?;
            let (nth, behavior) = rest.split_once(':')?;
            let nth: u64 = nth.parse().ok()?;
            let behavior = match behavior {
                "error" => Behavior::Error,
                "panic" => Behavior::Panic,
                "abort" => Behavior::Abort,
                _ => return None,
            };
            Some((site.to_string(), nth, behavior))
        })();
        match parsed {
            Some((site, nth, behavior)) => {
                arm(&site, nth, behavior);
                armed += 1;
            }
            None => eprintln!("fault: ignoring malformed SSA_FAULTS spec {part:?}"),
        }
    }
    armed
}

/// Global serialization lock for tests that arm failpoints: the registry
/// is process-wide, so concurrent arming tests would trip each other.
/// Poison-tolerant, because panic-behavior tests poison it by design.
pub fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_on_nth_hit_then_disarms() {
        let _guard = lock();
        reset();
        arm("t.site", 2, Behavior::Error);
        assert!(check("t.site").is_ok(), "first hit passes");
        assert!(matches!(
            check("t.site"),
            Err(RelationError::FaultInjected { site }) if site == "t.site"
        ));
        assert!(check("t.site").is_ok(), "one-shot: disarmed after firing");
        assert_eq!(hits("t.site"), 3);
        reset();
    }

    #[test]
    fn should_fire_and_disarm_work() {
        let _guard = lock();
        reset();
        assert!(!should_fire("t.degrade"));
        arm("t.degrade", 1, Behavior::Error);
        assert!(should_fire("t.degrade"));
        assert!(!should_fire("t.degrade"));
        arm("t.degrade", 1, Behavior::Error);
        disarm("t.degrade");
        assert!(!should_fire("t.degrade"));
        reset();
    }

    #[test]
    fn arm_from_env_parses_specs_and_skips_garbage() {
        let _guard = lock();
        reset();
        std::env::set_var(
            "SSA_FAULTS",
            "t.env=2:error, t.env2=1:panic ,notaspec,t.bad=1:explode",
        );
        assert_eq!(arm_from_env(), 2);
        std::env::remove_var("SSA_FAULTS");
        assert!(check("t.env").is_ok());
        assert!(matches!(
            check("t.env"),
            Err(RelationError::FaultInjected { site }) if site == "t.env"
        ));
        assert!(std::panic::catch_unwind(|| check("t.env2")).is_err());
        reset();
    }

    #[test]
    fn panic_behavior_panics_with_site_in_payload() {
        let _guard = lock();
        reset();
        arm("t.panic", 1, Behavior::Panic);
        let err = std::panic::catch_unwind(|| check("t.panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t.panic"));
        reset();
    }
}
