//! A catalog of named base relations — the "database" a spreadsheet
//! session attaches to. Stored spreadsheets (Sec. III-C Save/Open) live in
//! a separate store owned by the interface layer; this catalog only holds
//! base relations, whose *columns* must stay fixed for the lifetime of any
//! spreadsheet over them (Sec. II-B), though their tuples may change.

use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::tuple::Tuple;
use std::collections::BTreeMap;

/// Named collection of base relations.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: BTreeMap<String, Relation>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a relation under its own name. Fails on duplicates.
    pub fn register(&mut self, relation: Relation) -> Result<()> {
        let name = relation.name().to_string();
        if self.relations.contains_key(&name) {
            return Err(RelationError::DuplicateRelation { name });
        }
        self.relations.insert(name, relation);
        Ok(())
    }

    /// Replace or insert a relation (used by data refresh: "tuples in R can
    /// be changed anytime, and the spreadsheet always retrieves the latest
    /// data", Sec. II-B). The columns must match any existing registration.
    pub fn update(&mut self, relation: Relation) -> Result<()> {
        if let Some(existing) = self.relations.get(relation.name()) {
            if existing.schema() != relation.schema() {
                return Err(RelationError::TypeMismatch {
                    context: format!(
                        "columns of base relation `{}` must not change",
                        relation.name()
                    ),
                });
            }
        }
        self.relations.insert(relation.name().to_string(), relation);
        Ok(())
    }

    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationError::UnknownRelation {
                name: name.to_string(),
            })
    }

    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    pub fn remove(&mut self, name: &str) -> Result<Relation> {
        self.relations
            .remove(name)
            .ok_or_else(|| RelationError::UnknownRelation {
                name: name.to_string(),
            })
    }

    /// Append tuples to an existing relation (simulates live updates).
    pub fn append_rows(&mut self, name: &str, rows: Vec<Tuple>) -> Result<()> {
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| RelationError::UnknownRelation {
                name: name.to_string(),
            })?;
        for t in rows {
            rel.insert(t)?;
        }
        Ok(())
    }

    pub fn names(&self) -> Vec<&str> {
        self.relations.keys().map(|s| s.as_str()).collect()
    }

    pub fn len(&self) -> usize {
        self.relations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::ValueType::*;

    fn rel(name: &str) -> Relation {
        Relation::with_rows(name, Schema::of(&[("x", Int)]), vec![tuple![1], tuple![2]]).unwrap()
    }

    #[test]
    fn register_get_remove() {
        let mut c = Catalog::new();
        c.register(rel("a")).unwrap();
        assert!(c.contains("a"));
        assert_eq!(c.get("a").unwrap().len(), 2);
        assert!(c.register(rel("a")).is_err());
        assert!(c.get("b").is_err());
        c.remove("a").unwrap();
        assert!(c.is_empty());
        assert!(c.remove("a").is_err());
    }

    #[test]
    fn update_allows_new_rows_but_not_new_columns() {
        let mut c = Catalog::new();
        c.register(rel("a")).unwrap();
        // same schema, different rows: ok
        let mut newer = rel("a");
        newer.insert(tuple![3]).unwrap();
        c.update(newer).unwrap();
        assert_eq!(c.get("a").unwrap().len(), 3);
        // changed schema: rejected per Sec. II-B
        let other = Relation::new("a", Schema::of(&[("x", Int), ("y", Int)]));
        assert!(c.update(other).is_err());
    }

    #[test]
    fn append_rows_mutates_in_place() {
        let mut c = Catalog::new();
        c.register(rel("a")).unwrap();
        c.append_rows("a", vec![tuple![9]]).unwrap();
        assert_eq!(c.get("a").unwrap().len(), 3);
        assert!(c.append_rows("ghost", vec![]).is_err());
        assert!(c.append_rows("a", vec![tuple![1, 2]]).is_err());
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.register(rel("b")).unwrap();
        c.register(rel("a")).unwrap();
        assert_eq!(c.names(), vec!["a", "b"]);
        assert_eq!(c.len(), 2);
    }
}
