//! Tuples: fixed-width rows of [`Value`]s.

use crate::value::Value;
use std::fmt;

/// A row of values. The width must always equal the owning relation's
/// schema width; [`crate::relation::Relation`] enforces this on insert.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    pub fn set(&mut self, idx: usize, value: Value) {
        self.values[idx] = value;
    }

    /// Append a value (used when a computed column is added).
    pub fn push(&mut self, value: Value) {
        self.values.push(value);
    }

    /// Remove the value at `idx` (used by projection on materialized rows).
    pub fn remove(&mut self, idx: usize) -> Value {
        self.values.remove(idx)
    }

    /// Concatenate two tuples (used by product/join).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.len() + other.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Project the tuple onto the given index positions (in that order).
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices.iter().map(|&i| self.values[i]).collect(),
        }
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// Build a tuple from heterogeneous literals: `tuple![1, "Jetta", 14500]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use crate::value::Value;

    #[test]
    fn macro_builds_mixed_tuple() {
        let t = tuple![304, "Jetta", 14500.0, true];
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(0), &Value::Int(304));
        assert_eq!(t.get(1), &Value::str("Jetta"));
        assert_eq!(t.get(2), &Value::Float(14500.0));
        assert_eq!(t.get(3), &Value::Bool(true));
    }

    #[test]
    fn concat_and_project() {
        let a = tuple![1, "x"];
        let b = tuple![2.5];
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p, tuple![2.5, 1]);
    }

    #[test]
    fn push_set_remove() {
        let mut t = tuple![1, 2];
        t.push(Value::Int(3));
        t.set(0, Value::str("a"));
        assert_eq!(t, tuple!["a", 2, 3]);
        assert_eq!(t.remove(1), Value::Int(2));
        assert_eq!(t, tuple!["a", 3]);
    }

    #[test]
    fn tuples_order_lexicographically() {
        assert!(tuple![1, 2] < tuple![1, 3]);
        assert!(tuple![1, 2] < tuple![2, 0]);
        assert_eq!(tuple![1, 2], tuple![1, 2]);
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, a)");
    }
}
