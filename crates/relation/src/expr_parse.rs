//! A small recursive-descent parser for the expression language.
//!
//! Grammar (priority low → high):
//!
//! ```text
//! expr      := or
//! or        := and ( OR and )*
//! and       := unary ( AND unary )*
//! unary     := NOT unary | predicate
//! predicate := additive ( cmp-op additive
//!                        | IS [NOT] NULL
//!                        | [NOT] LIKE string )?
//! additive  := multip ( (+|-) multip )*
//! multip    := atom ( (*|/|%) atom )*
//! atom      := number | string | TRUE | FALSE | NULL | identifier
//!            | '(' expr ')' | '-' atom
//! ```
//!
//! Identifiers may be bare (`Price`), quoted with double quotes
//! (`"Avg Price"`), or dotted (`lineitem.l_price`). This parser backs the
//! SheetMusiq script language and the SQL front end.

use crate::error::{RelationError, Result};
use crate::expr::{ArithOp, CmpOp, Expr};
use crate::value::Value;

/// Tokens produced by the lexer. Public so the SQL parser in `ssa-sql`
/// can reuse the same lexer for its clause keywords.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(String),
}

impl Token {
    /// Case-insensitive keyword test for identifiers.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    pub fn is_symbol(&self, sym: &str) -> bool {
        matches!(self, Token::Symbol(s) if s == sym)
    }
}

/// Tokenize an input string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_digit()
            || (c == '.' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let start = i;
            let mut is_float = false;
            while i < chars.len()
                && (chars[i].is_ascii_digit()
                    || chars[i] == '.'
                    || chars[i] == 'e'
                    || chars[i] == 'E'
                    || ((chars[i] == '+' || chars[i] == '-')
                        && i > start
                        && (chars[i - 1] == 'e' || chars[i - 1] == 'E')))
            {
                if chars[i] == '.' || chars[i] == 'e' || chars[i] == 'E' {
                    is_float = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if is_float {
                let f = text.parse::<f64>().map_err(|_| RelationError::ParseValue {
                    text: text.clone(),
                    wanted: "float",
                })?;
                tokens.push(Token::Float(f));
            } else {
                let n = text.parse::<i64>().map_err(|_| RelationError::ParseValue {
                    text: text.clone(),
                    wanted: "integer",
                })?;
                tokens.push(Token::Int(n));
            }
        } else if c == '\'' {
            // single-quoted string literal, '' escapes a quote
            i += 1;
            let mut s = String::new();
            loop {
                if i >= chars.len() {
                    return Err(RelationError::ParseValue {
                        text: input.to_string(),
                        wanted: "closing single quote",
                    });
                }
                if chars[i] == '\'' {
                    if i + 1 < chars.len() && chars[i + 1] == '\'' {
                        s.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    s.push(chars[i]);
                    i += 1;
                }
            }
            tokens.push(Token::Str(s));
        } else if c == '"' {
            // double-quoted identifier
            i += 1;
            let mut s = String::new();
            while i < chars.len() && chars[i] != '"' {
                s.push(chars[i]);
                i += 1;
            }
            if i >= chars.len() {
                return Err(RelationError::ParseValue {
                    text: input.to_string(),
                    wanted: "closing double quote",
                });
            }
            i += 1;
            tokens.push(Token::Ident(s));
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                i += 1;
            }
            tokens.push(Token::Ident(chars[start..i].iter().collect()));
        } else {
            // multi-char symbols first
            let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
            if ["<=", ">=", "<>", "!=", "||"].contains(&two.as_str()) {
                tokens.push(Token::Symbol(two));
                i += 2;
            } else if "+-*/%<>=(),".contains(c) {
                tokens.push(Token::Symbol(c.to_string()));
                i += 1;
            } else {
                return Err(RelationError::ParseValue {
                    text: c.to_string(),
                    wanted: "operator or punctuation",
                });
            }
        }
    }
    Ok(tokens)
}

/// Parse a complete expression from text.
pub fn parse_expr(input: &str) -> Result<Expr> {
    let tokens = tokenize(input)?;
    let mut p = ExprParser::new(&tokens);
    let e = p.expr()?;
    if !p.at_end() {
        return Err(RelationError::ParseValue {
            text: format!("{:?}", p.peek()),
            wanted: "end of expression",
        });
    }
    Ok(e)
}

/// Cursor-based parser over a token slice. `ssa-sql` builds on this for
/// full single-block statements.
pub struct ExprParser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> ExprParser<'a> {
    pub fn new(tokens: &'a [Token]) -> ExprParser<'a> {
        ExprParser { tokens, pos: 0 }
    }

    pub fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    pub fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Move the cursor to a previously saved position (for backtracking
    /// parsers layered on top, e.g. aggregate-call lookahead in `ssa-sql`).
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos.min(self.tokens.len());
    }

    pub fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume a keyword (case-insensitive) if present.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(t) if t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume a symbol if present.
    pub fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(t) if t.is_symbol(sym)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require a symbol or fail.
    pub fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(RelationError::ParseValue {
                text: format!("{:?}", self.peek()),
                wanted: "symbol",
            })
        }
    }

    /// Require an identifier (not a keyword check — any identifier).
    pub fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            other => Err(RelationError::ParseValue {
                text: format!("{other:?}"),
                wanted: "identifier",
            }),
        }
    }

    pub fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        while self.eat_kw("AND") {
            let right = self.unary_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(self.unary_expr()?.not())
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            if !self.eat_kw("NULL") {
                return Err(RelationError::ParseValue {
                    text: format!("{:?}", self.peek()),
                    wanted: "NULL after IS",
                });
            }
            let e = Expr::IsNull(Box::new(left));
            return Ok(if negated { e.not() } else { e });
        }
        // [NOT] LIKE 'pattern'
        let not_like = {
            let save = self.pos;
            if self.eat_kw("NOT") {
                if matches!(self.peek(), Some(t) if t.is_kw("LIKE")) {
                    true
                } else {
                    self.pos = save;
                    false
                }
            } else {
                false
            }
        };
        if self.eat_kw("LIKE") {
            match self.bump() {
                Some(Token::Str(p)) => {
                    let e = Expr::Like(Box::new(left), p.clone());
                    return Ok(if not_like { e.not() } else { e });
                }
                other => {
                    return Err(RelationError::ParseValue {
                        text: format!("{other:?}"),
                        wanted: "string pattern after LIKE",
                    })
                }
            }
        }
        // [NOT] BETWEEN a AND b — desugars to `left >= a AND left <= b`.
        let not_between = {
            let save = self.pos;
            if self.eat_kw("NOT") {
                if matches!(self.peek(), Some(t) if t.is_kw("BETWEEN")) {
                    true
                } else {
                    self.pos = save;
                    false
                }
            } else {
                false
            }
        };
        if self.eat_kw("BETWEEN") {
            let lo = self.additive()?;
            if !self.eat_kw("AND") {
                return Err(RelationError::ParseValue {
                    text: format!("{:?}", self.peek()),
                    wanted: "AND in BETWEEN",
                });
            }
            let hi = self.additive()?;
            let e = left.clone().ge(lo).and(left.le(hi));
            return Ok(if not_between { e.not() } else { e });
        }
        // [NOT] IN (v1, v2, …) — desugars to a disjunction of equalities.
        let not_in = {
            let save = self.pos;
            if self.eat_kw("NOT") {
                if matches!(self.peek(), Some(t) if t.is_kw("IN")) {
                    true
                } else {
                    self.pos = save;
                    false
                }
            } else {
                false
            }
        };
        if self.eat_kw("IN") {
            self.expect_symbol("(")?;
            let mut alternatives = Vec::new();
            loop {
                let v = self.additive()?;
                alternatives.push(left.clone().eq(v));
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            let e = Expr::conjoin_or(alternatives).expect("IN list is non-empty");
            return Ok(if not_in { e.not() } else { e });
        }
        // comparison
        let op = match self.peek() {
            Some(t) if t.is_symbol("=") => Some(CmpOp::Eq),
            Some(t) if t.is_symbol("<>") || t.is_symbol("!=") => Some(CmpOp::Ne),
            Some(t) if t.is_symbol("<") => Some(CmpOp::Lt),
            Some(t) if t.is_symbol("<=") => Some(CmpOp::Le),
            Some(t) if t.is_symbol(">") => Some(CmpOp::Gt),
            Some(t) if t.is_symbol(">=") => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(left.cmp(op, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            if self.eat_symbol("+") || self.eat_symbol("||") {
                // `||` is treated as string concat, which `add` performs
                let right = self.multiplicative()?;
                left = left.arith(ArithOp::Add, right);
            } else if self.eat_symbol("-") {
                let right = self.multiplicative()?;
                left = left.arith(ArithOp::Sub, right);
            } else {
                return Ok(left);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.atom()?;
        loop {
            if self.eat_symbol("*") {
                left = left.arith(ArithOp::Mul, self.atom()?);
            } else if self.eat_symbol("/") {
                left = left.arith(ArithOp::Div, self.atom()?);
            } else if self.eat_symbol("%") {
                left = left.arith(ArithOp::Mod, self.atom()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn atom(&mut self) -> Result<Expr> {
        if self.eat_symbol("(") {
            let e = self.expr()?;
            self.expect_symbol(")")?;
            return Ok(e);
        }
        if self.eat_symbol("-") {
            // Fold negation of numeric literals so `-1` parses as the
            // literal −1 (round-trips with Display).
            return Ok(match self.atom()? {
                Expr::Lit(Value::Int(n)) => Expr::Lit(Value::Int(-n)),
                Expr::Lit(Value::Float(f)) => Expr::Lit(Value::Float(-f)),
                other => Expr::Neg(Box::new(other)),
            });
        }
        // CASE WHEN cond THEN a ELSE b END (extension; see Expr::If).
        if self.eat_kw("CASE") {
            if !self.eat_kw("WHEN") {
                return Err(RelationError::ParseValue {
                    text: format!("{:?}", self.peek()),
                    wanted: "WHEN after CASE",
                });
            }
            let cond = self.expr()?;
            if !self.eat_kw("THEN") {
                return Err(RelationError::ParseValue {
                    text: format!("{:?}", self.peek()),
                    wanted: "THEN in CASE",
                });
            }
            let then = self.expr()?;
            if !self.eat_kw("ELSE") {
                return Err(RelationError::ParseValue {
                    text: format!("{:?}", self.peek()),
                    wanted: "ELSE in CASE",
                });
            }
            let otherwise = self.expr()?;
            if !self.eat_kw("END") {
                return Err(RelationError::ParseValue {
                    text: format!("{:?}", self.peek()),
                    wanted: "END closing CASE",
                });
            }
            return Ok(Expr::if_else(cond, then, otherwise));
        }
        // Function-style IF(cond, a, b).
        {
            let save = self.pos();
            if self.eat_kw("IF") && self.eat_symbol("(") {
                let cond = self.expr()?;
                self.expect_symbol(",")?;
                let then = self.expr()?;
                self.expect_symbol(",")?;
                let otherwise = self.expr()?;
                self.expect_symbol(")")?;
                return Ok(Expr::if_else(cond, then, otherwise));
            }
            self.seek(save);
        }
        match self.bump() {
            Some(Token::Int(n)) => Ok(Expr::Lit(Value::Int(*n))),
            Some(Token::Float(f)) => Ok(Expr::Lit(Value::Float(*f))),
            Some(Token::Str(s)) => Ok(Expr::Lit(Value::str(s.as_str()))),
            Some(Token::Ident(s)) => {
                if s.eq_ignore_ascii_case("TRUE") {
                    Ok(Expr::Lit(Value::Bool(true)))
                } else if s.eq_ignore_ascii_case("FALSE") {
                    Ok(Expr::Lit(Value::Bool(false)))
                } else if s.eq_ignore_ascii_case("NULL") {
                    Ok(Expr::Lit(Value::Null))
                } else {
                    Ok(Expr::Col(s.clone()))
                }
            }
            other => Err(RelationError::ParseValue {
                text: format!("{other:?}"),
                wanted: "expression atom",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::ValueType::*;

    fn eval(input: &str) -> Value {
        let schema = Schema::of(&[("Price", Int), ("Model", Str), ("Year", Int)]);
        let t = tuple![14500, "Jetta", 2005];
        parse_expr(input).unwrap().eval(&schema, &t).unwrap()
    }

    #[test]
    fn parses_numbers_and_arithmetic() {
        assert_eq!(eval("1 + 2 * 3"), Value::Int(7));
        assert_eq!(eval("(1 + 2) * 3"), Value::Int(9));
        assert_eq!(eval("7 / 2"), Value::Float(3.5));
        assert_eq!(eval("7 % 2"), Value::Int(1));
        assert_eq!(eval("-3 + 5"), Value::Int(2));
        assert_eq!(eval("1.5e2"), Value::Float(150.0));
    }

    #[test]
    fn parses_comparisons_and_logic() {
        assert_eq!(eval("Price < 15000"), Value::Bool(true));
        assert_eq!(eval("Price >= 15000"), Value::Bool(false));
        assert_eq!(eval("Price < 15000 AND Model = 'Jetta'"), Value::Bool(true));
        assert_eq!(eval("Price > 15000 OR Year = 2005"), Value::Bool(true));
        assert_eq!(eval("NOT Price > 15000"), Value::Bool(true));
        assert_eq!(eval("Price <> 14500"), Value::Bool(false));
        assert_eq!(eval("Price != 14500"), Value::Bool(false));
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        // true OR false AND false => true
        assert_eq!(eval("TRUE OR FALSE AND FALSE"), Value::Bool(true));
    }

    #[test]
    fn parses_is_null_and_like() {
        assert_eq!(eval("Model IS NULL"), Value::Bool(false));
        assert_eq!(eval("Model IS NOT NULL"), Value::Bool(true));
        assert_eq!(eval("Model LIKE 'J%'"), Value::Bool(true));
        assert_eq!(eval("Model NOT LIKE 'C%'"), Value::Bool(true));
    }

    #[test]
    fn parses_strings_with_escapes() {
        assert_eq!(eval("'it''s'"), Value::str("it's"));
        assert_eq!(eval("'a' + 'b'"), Value::str("ab"));
        assert_eq!(eval("'a' || 'b'"), Value::str("ab"));
    }

    #[test]
    fn parses_quoted_and_dotted_identifiers() {
        let e = parse_expr("\"Avg Price\" > 10").unwrap();
        assert!(e.columns().contains("Avg Price"));
        let e = parse_expr("lineitem.l_qty * part.p_price").unwrap();
        assert!(e.columns().contains("lineitem.l_qty"));
    }

    #[test]
    fn arithmetic_on_columns() {
        assert_eq!(eval("2 * Price"), Value::Int(29000));
        assert_eq!(eval("Price - Year"), Value::Int(12495));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("(1 + 2").is_err());
        assert!(parse_expr("'unterminated").is_err());
        assert!(parse_expr("1 2").is_err());
        assert!(parse_expr("Model LIKE 5").is_err());
        assert!(parse_expr("x IS 5").is_err());
        assert!(parse_expr("@").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            eval("Price < 15000 and not Model like 'C%'"),
            Value::Bool(true)
        );
        assert_eq!(eval("null IS NULL"), Value::Bool(true));
        assert_eq!(eval("true OR false"), Value::Bool(true));
    }

    #[test]
    fn parses_between_and_in() {
        assert_eq!(eval("Price BETWEEN 14000 AND 15000"), Value::Bool(true));
        assert_eq!(eval("Price BETWEEN 15000 AND 16000"), Value::Bool(false));
        assert_eq!(eval("Price NOT BETWEEN 15000 AND 16000"), Value::Bool(true));
        assert_eq!(eval("Model IN ('Jetta', 'Civic')"), Value::Bool(true));
        assert_eq!(eval("Model IN ('Civic')"), Value::Bool(false));
        assert_eq!(eval("Model NOT IN ('Civic', 'Accord')"), Value::Bool(true));
        assert_eq!(eval("Year IN (2004, 2005, 2006)"), Value::Bool(true));
        // BETWEEN binds its AND; the outer AND still works
        assert_eq!(
            eval("Price BETWEEN 14000 AND 15000 AND Year = 2005"),
            Value::Bool(true)
        );
        assert!(parse_expr("x BETWEEN 1 OR 2").is_err());
        assert!(parse_expr("x IN ()").is_err());
        assert!(parse_expr("x IN (1, )").is_err());
    }

    #[test]
    fn parses_case_when_and_if_function() {
        assert_eq!(
            eval("CASE WHEN Price < 15000 THEN 'cheap' ELSE 'pricey' END"),
            Value::str("cheap")
        );
        assert_eq!(eval("IF(Year = 2005, 1, 0)"), Value::Int(1));
        assert_eq!(eval("IF(Year = 2006, 1, 0)"), Value::Int(0));
        // nested
        assert_eq!(
            eval("CASE WHEN Price > 20000 THEN 'lux' ELSE IF(Price > 14000, 'mid', 'low') END"),
            Value::str("mid")
        );
        // `if` not followed by `(` is a plain column name
        let e = parse_expr("if + 1").unwrap();
        assert!(e.columns().contains("if"));
    }

    #[test]
    fn case_requires_all_keywords() {
        assert!(parse_expr("CASE Price THEN 1 ELSE 0 END").is_err());
        assert!(parse_expr("CASE WHEN Price > 1 THEN 1 END").is_err());
        assert!(parse_expr("CASE WHEN Price > 1 THEN 1 ELSE 0").is_err());
        assert!(parse_expr("IF(Price > 1, 2)").is_err());
    }

    #[test]
    fn display_round_trips_through_parser() {
        let inputs = [
            "Price < 15000 AND Model = 'Jetta'",
            "(Price + 100) * 2 > Year",
            "Model LIKE 'J%' OR Model IS NULL",
            "NOT (Price > 1 AND Year < 2)",
        ];
        for input in inputs {
            let e1 = parse_expr(input).unwrap();
            let e2 = parse_expr(&e1.to_string()).unwrap();
            assert_eq!(e1, e2, "round trip failed for `{input}`");
        }
    }
}
