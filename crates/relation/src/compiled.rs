//! Pre-compiled expressions for the index-vector evaluation engine.
//!
//! [`crate::Expr`] resolves column names against a [`crate::Schema`] on
//! every row it touches and clones every leaf value. For a tight
//! per-row loop over 10⁵ tuples that name lookup and cloning dominate, so
//! the engine compiles an `Expr` once — resolving each column reference to
//! a *slot* id — and then evaluates against anything implementing
//! [`RowAccess`]. Leaf nodes return `Cow::Borrowed(&Value)`, so
//! comparisons and logic never clone; only arithmetic allocates (it must
//! produce a new value anyway).
//!
//! Semantics are identical to `Expr::eval`, including three-valued logic
//! and short-circuiting; the differential tests in the core crate pin
//! this.

use crate::error::{RelationError, Result};
use crate::expr::{like_match, ArithOp, CmpOp, Expr};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::borrow::Cow;

/// Row-shaped access by slot id. Implemented by [`Tuple`] (slot = column
/// position) and by the evaluation engine's hybrid base-plus-computed-
/// buffers row view.
pub trait RowAccess {
    fn slot(&self, idx: usize) -> &Value;
}

impl RowAccess for Tuple {
    fn slot(&self, idx: usize) -> &Value {
        self.get(idx)
    }
}

impl RowAccess for [&Value] {
    fn slot(&self, idx: usize) -> &Value {
        self[idx]
    }
}

/// Two tuples viewed as one concatenated row — left columns first, then
/// right. The join probe evaluates bound residual predicates on candidate
/// pairs through this view, so non-matching pairs never materialize a
/// concatenated [`Tuple`].
#[derive(Clone, Copy)]
pub struct PairRow<'a> {
    pub left: &'a Tuple,
    pub right: &'a Tuple,
    pub left_width: usize,
}

impl RowAccess for PairRow<'_> {
    fn slot(&self, idx: usize) -> &Value {
        if idx < self.left_width {
            self.left.get(idx)
        } else {
            self.right.get(idx - self.left_width)
        }
    }
}

/// An [`Expr`] with every column reference resolved to a slot id.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledExpr {
    Slot(usize),
    Lit(Value),
    Arith(Box<CompiledExpr>, ArithOp, Box<CompiledExpr>),
    Neg(Box<CompiledExpr>),
    Cmp(Box<CompiledExpr>, CmpOp, Box<CompiledExpr>),
    And(Box<CompiledExpr>, Box<CompiledExpr>),
    Or(Box<CompiledExpr>, Box<CompiledExpr>),
    Not(Box<CompiledExpr>),
    IsNull(Box<CompiledExpr>),
    Like(Box<CompiledExpr>, String),
    If(Box<CompiledExpr>, Box<CompiledExpr>, Box<CompiledExpr>),
}

impl CompiledExpr {
    /// Compile `expr`, resolving each column name through `resolve`.
    /// Unresolvable names error with the unknown column's name.
    pub fn compile(
        expr: &Expr,
        resolve: &mut dyn FnMut(&str) -> Option<usize>,
    ) -> Result<CompiledExpr> {
        let mut go = |e: &Expr| CompiledExpr::compile(e, &mut *resolve);
        // Each arm recurses with the same resolver; boxed to keep the
        // shape parallel to `Expr`.
        Ok(match expr {
            Expr::Col(name) => match resolve(name) {
                Some(slot) => CompiledExpr::Slot(slot),
                None => {
                    return Err(RelationError::UnknownColumn { name: name.clone() });
                }
            },
            Expr::Lit(v) => CompiledExpr::Lit(*v),
            Expr::Arith(a, op, b) => CompiledExpr::Arith(Box::new(go(a)?), *op, Box::new(go(b)?)),
            Expr::Neg(a) => CompiledExpr::Neg(Box::new(go(a)?)),
            Expr::Cmp(a, op, b) => CompiledExpr::Cmp(Box::new(go(a)?), *op, Box::new(go(b)?)),
            Expr::And(a, b) => CompiledExpr::And(Box::new(go(a)?), Box::new(go(b)?)),
            Expr::Or(a, b) => CompiledExpr::Or(Box::new(go(a)?), Box::new(go(b)?)),
            Expr::Not(a) => CompiledExpr::Not(Box::new(go(a)?)),
            Expr::IsNull(a) => CompiledExpr::IsNull(Box::new(go(a)?)),
            Expr::Like(a, p) => CompiledExpr::Like(Box::new(go(a)?), p.clone()),
            Expr::If(c, t, e) => {
                CompiledExpr::If(Box::new(go(c)?), Box::new(go(t)?), Box::new(go(e)?))
            }
        })
    }

    /// Evaluate against one row. Column and literal leaves are returned
    /// borrowed; computed nodes own their result.
    pub fn eval<'a, R: RowAccess + ?Sized>(&'a self, row: &'a R) -> Result<Cow<'a, Value>> {
        match self {
            CompiledExpr::Slot(idx) => Ok(Cow::Borrowed(row.slot(*idx))),
            CompiledExpr::Lit(v) => Ok(Cow::Borrowed(v)),
            CompiledExpr::Arith(a, op, b) => {
                let (x, y) = (a.eval(row)?, b.eval(row)?);
                let v = match op {
                    ArithOp::Add => x.add(&y),
                    ArithOp::Sub => x.sub(&y),
                    ArithOp::Mul => x.mul(&y),
                    ArithOp::Div => x.div(&y),
                    ArithOp::Mod => x.rem(&y),
                }?;
                Ok(Cow::Owned(v))
            }
            CompiledExpr::Neg(a) => Ok(Cow::Owned(a.eval(row)?.neg()?)),
            CompiledExpr::Cmp(a, op, b) => {
                let (x, y) = (a.eval(row)?, b.eval(row)?);
                Ok(Cow::Owned(x.sql_cmp(&y, op.test())))
            }
            CompiledExpr::And(a, b) => {
                let x = a.eval(row)?;
                if let Value::Bool(false) = *x {
                    return Ok(Cow::Owned(Value::Bool(false)));
                }
                let y = b.eval(row)?;
                match (&*x, &*y) {
                    (_, Value::Bool(false)) => Ok(Cow::Owned(Value::Bool(false))),
                    (Value::Bool(true), Value::Bool(true)) => Ok(Cow::Owned(Value::Bool(true))),
                    (Value::Null, _) | (_, Value::Null) => Ok(Cow::Owned(Value::Null)),
                    (x, y) => Err(RelationError::TypeMismatch {
                        context: format!("AND on non-boolean operands `{x}`, `{y}`"),
                    }),
                }
            }
            CompiledExpr::Or(a, b) => {
                let x = a.eval(row)?;
                if let Value::Bool(true) = *x {
                    return Ok(Cow::Owned(Value::Bool(true)));
                }
                let y = b.eval(row)?;
                match (&*x, &*y) {
                    (_, Value::Bool(true)) => Ok(Cow::Owned(Value::Bool(true))),
                    (Value::Bool(false), Value::Bool(false)) => Ok(Cow::Owned(Value::Bool(false))),
                    (Value::Null, _) | (_, Value::Null) => Ok(Cow::Owned(Value::Null)),
                    (x, y) => Err(RelationError::TypeMismatch {
                        context: format!("OR on non-boolean operands `{x}`, `{y}`"),
                    }),
                }
            }
            CompiledExpr::Not(a) => match &*a.eval(row)? {
                Value::Bool(b) => Ok(Cow::Owned(Value::Bool(!b))),
                Value::Null => Ok(Cow::Owned(Value::Null)),
                v => Err(RelationError::TypeMismatch {
                    context: format!("NOT on non-boolean operand `{v}`"),
                }),
            },
            CompiledExpr::IsNull(a) => Ok(Cow::Owned(Value::Bool(a.eval(row)?.is_null()))),
            CompiledExpr::Like(a, pattern) => match &*a.eval(row)? {
                Value::Null => Ok(Cow::Owned(Value::Null)),
                Value::Str(s) => Ok(Cow::Owned(Value::Bool(like_match(pattern, s.as_str())))),
                v => Err(RelationError::TypeMismatch {
                    context: format!("LIKE on non-string operand `{v}`"),
                }),
            },
            CompiledExpr::If(cond, then, otherwise) => {
                if cond.eval(row)?.is_true() {
                    then.eval(row)
                } else {
                    otherwise.eval(row)
                }
            }
        }
    }

    /// Evaluate to an owned value (for filling column buffers).
    pub fn eval_owned<R: RowAccess + ?Sized>(&self, row: &R) -> Result<Value> {
        Ok(self.eval(row)?.into_owned())
    }

    /// Evaluate as a predicate: `true` iff the result is `Bool(true)`,
    /// `false` for `Bool(false)`/`Null`. Other results raise
    /// [`RelationError::NotBoolean`], mirroring [`Expr::matches`].
    pub fn matches<R: RowAccess + ?Sized>(&self, row: &R) -> Result<bool> {
        match &*self.eval(row)? {
            Value::Bool(b) => Ok(*b),
            Value::Null => Ok(false),
            v => Err(RelationError::NotBoolean {
                found: v.to_string(),
            }),
        }
    }
}

/// An [`Expr`] bound to one fixed [`Schema`]: every column name resolved
/// to its index exactly once, at [`Expr::bind`] time. The hot loops of
/// the hash-join engine evaluate these against [`RowAccess`] rows and
/// never touch `Schema::index_of` per row.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundExpr {
    compiled: CompiledExpr,
}

impl Expr {
    /// Bind this expression to `schema`, resolving every column reference
    /// to its index. Unknown columns error here — once — instead of on
    /// the first row evaluated.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        let compiled = CompiledExpr::compile(self, &mut |name| schema.index_of(name).ok())?;
        Ok(BoundExpr { compiled })
    }
}

impl BoundExpr {
    /// Evaluate against one row (semantics of [`Expr::eval`]).
    pub fn eval<R: RowAccess + ?Sized>(&self, row: &R) -> Result<Value> {
        self.compiled.eval_owned(row)
    }

    /// Evaluate as a predicate (semantics of [`Expr::matches`]).
    pub fn matches<R: RowAccess + ?Sized>(&self, row: &R) -> Result<bool> {
        self.compiled.matches(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::ValueType::{Int, Str};

    fn compile_for(schema: &Schema, e: &Expr) -> CompiledExpr {
        CompiledExpr::compile(e, &mut |n| schema.index_of(n).ok()).unwrap()
    }

    #[test]
    fn compiled_matches_interpreted() {
        let schema = Schema::of(&[("Model", Str), ("Price", Int), ("Year", Int)]);
        let rows = [
            tuple!["Jetta", 14500, 2005],
            tuple!["Civic", 16000, 2006],
            tuple![Value::Null, 13000, 2004],
        ];
        let exprs = [
            Expr::col("Price").lt(Expr::lit(15000)),
            Expr::col("Model")
                .eq(Expr::lit("Jetta"))
                .or(Expr::col("Year").ge(Expr::lit(2006))),
            Expr::col("Price").add(Expr::col("Year")).mul(Expr::lit(2)),
            Expr::Neg(Box::new(Expr::col("Price"))),
            Expr::IsNull(Box::new(Expr::col("Model"))),
            Expr::Like(Box::new(Expr::col("Model")), "J%".into()),
            Expr::if_else(
                Expr::col("Year").gt(Expr::lit(2005)),
                Expr::lit("new"),
                Expr::lit("old"),
            ),
            Expr::col("Model").eq(Expr::lit("Jetta")).not(),
            Expr::col("Price")
                .gt(Expr::lit(0))
                .and(Expr::col("Year").gt(Expr::lit(2005))),
        ];
        for e in &exprs {
            let c = compile_for(&schema, e);
            for t in &rows {
                assert_eq!(
                    c.eval_owned(t).unwrap(),
                    e.eval(&schema, t).unwrap(),
                    "expr {e} on {t}"
                );
            }
        }
    }

    #[test]
    fn leaves_are_borrowed() {
        let schema = Schema::of(&[("Model", Str)]);
        let t = tuple!["Jetta"];
        let c = compile_for(&schema, &Expr::col("Model"));
        assert!(matches!(c.eval(&t).unwrap(), Cow::Borrowed(_)));
        let c = compile_for(&schema, &Expr::lit(5));
        assert!(matches!(c.eval(&t).unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn unknown_column_fails_at_compile_time() {
        let schema = Schema::of(&[("x", Int)]);
        let err = CompiledExpr::compile(&Expr::col("Ghost").gt(Expr::lit(1)), &mut |n| {
            schema.index_of(n).ok()
        })
        .unwrap_err();
        assert!(matches!(err, RelationError::UnknownColumn { .. }));
    }

    #[test]
    fn errors_match_interpreted_semantics() {
        let schema = Schema::of(&[("x", Int)]);
        let t = tuple![1];
        // AND on a non-boolean operand errors in both paths.
        let e = Expr::col("x").and(Expr::lit(true));
        let c = compile_for(&schema, &e);
        assert!(c.eval_owned(&t).is_err());
        assert!(e.eval(&schema, &t).is_err());
        // short-circuit still hides the unevaluated side
        let e = Expr::lit(false).and(Expr::col("x"));
        let c = compile_for(&schema, &e);
        assert_eq!(c.eval_owned(&t).unwrap(), Value::Bool(false));
    }

    #[test]
    fn slice_of_refs_is_a_row() {
        let a = Value::Int(10);
        let b = Value::Int(32);
        let row: Vec<&Value> = vec![&a, &b];
        let e = CompiledExpr::Arith(
            Box::new(CompiledExpr::Slot(0)),
            ArithOp::Add,
            Box::new(CompiledExpr::Slot(1)),
        );
        assert_eq!(e.eval_owned(row.as_slice()).unwrap(), Value::Int(42));
    }
}
