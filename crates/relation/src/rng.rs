//! Deterministic pseudo-random numbers for generators, fixtures, and tests.
//!
//! The workspace builds with no registry access, so this tiny xorshift64*
//! generator stands in for an external PRNG crate everywhere randomness is
//! load-bearing (the TPC-H generator, the simulated user study, randomized
//! property tests). It is seedable, reproducible across platforms, and fast;
//! it makes no cryptographic claims whatsoever.

use std::ops::{Range, RangeInclusive};

/// A seedable xorshift64* generator (Vigna 2016). State is never zero.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Build a generator from a 64-bit seed. The seed is pre-mixed with
    /// SplitMix64 so that nearby seeds (0, 1, 2, …) produce unrelated
    /// streams.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value from a half-open or inclusive range; panics on an
    /// empty range, matching the convention of mainstream PRNG crates.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform choice from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.gen_range(0..items.len())]
    }

    /// Fisher-Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Uniform `u64` below `bound` (debiased via 128-bit widening multiply
    /// with rejection on the low word, Lemire 2019).
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range on an empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Ranges a [`Rng`] can sample uniformly. Implemented for the integer and
/// float ranges the workspace actually uses; extend as call sites need.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range!(i32, i64, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on an empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let mut c = Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(3..=3i32);
            assert_eq!(w, 3);
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
            let f = rng.gen_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn all_residues_reachable() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(9);
        let mut v: Vec<i32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
