//! Aggregate functions (Def. 11's `f` parameter).
//!
//! Aggregates apply to individual tuples, never to sub-groups: "the result
//! of COUNT is the number of tuples in the group being counted, and not the
//! number of sub-groups" (Sec. III-B). NULLs are ignored by every function
//! except COUNT(*); empty (or all-NULL) inputs yield NULL, except COUNT
//! which yields 0 — SQL semantics, which the PostgreSQL-backed prototype
//! inherited.

use crate::error::{RelationError, Result};
use crate::value::Value;
use std::fmt;

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of tuples (NULLs included — COUNT(*) semantics).
    Count,
    /// Number of non-NULL values (COUNT(col)).
    CountNonNull,
    /// Number of distinct non-NULL values.
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
    /// Population standard deviation (used by the evaluation harness for
    /// Fig. 4-style reporting over data columns).
    StdDev,
}

impl AggFunc {
    /// All functions, for UI menus and property-test generators.
    pub const ALL: [AggFunc; 8] = [
        AggFunc::Count,
        AggFunc::CountNonNull,
        AggFunc::CountDistinct,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::StdDev,
    ];

    /// The short name used in generated column names (`Avg_Price`),
    /// matching the paper's Table III.
    pub fn short_name(self) -> &'static str {
        match self {
            AggFunc::Count => "Count",
            AggFunc::CountNonNull => "CountNN",
            AggFunc::CountDistinct => "CountD",
            AggFunc::Sum => "Sum",
            AggFunc::Avg => "Avg",
            AggFunc::Min => "Min",
            AggFunc::Max => "Max",
            AggFunc::StdDev => "StdDev",
        }
    }

    /// Whether this function needs numeric input.
    pub fn requires_numeric(self) -> bool {
        matches!(self, AggFunc::Sum | AggFunc::Avg | AggFunc::StdDev)
    }

    /// Apply the aggregate to the values of one group.
    pub fn apply(self, values: &[Value]) -> Result<Value> {
        let refs: Vec<&Value> = values.iter().collect();
        self.apply_refs(&refs)
    }

    /// Like [`Self::apply`], over borrowed values — the index-vector
    /// engine aggregates straight out of column buffers without cloning
    /// the group's inputs.
    pub fn apply_refs(self, values: &[&Value]) -> Result<Value> {
        match self {
            AggFunc::Count => Ok(Value::Int(values.len() as i64)),
            AggFunc::CountNonNull => Ok(Value::Int(
                values.iter().filter(|v| !v.is_null()).count() as i64
            )),
            AggFunc::CountDistinct => {
                let mut seen: Vec<&Value> =
                    values.iter().copied().filter(|v| !v.is_null()).collect();
                seen.sort();
                seen.dedup();
                Ok(Value::Int(seen.len() as i64))
            }
            AggFunc::Sum => {
                let nums = numeric(values, "SUM")?;
                if nums.is_empty() {
                    return Ok(Value::Null);
                }
                // Preserve integer typing when every input was an integer.
                if values
                    .iter()
                    .filter(|v| !v.is_null())
                    .all(|v| matches!(**v, Value::Int(_)))
                {
                    let mut acc: i64 = 0;
                    for v in values.iter().filter(|v| !v.is_null()) {
                        if let Value::Int(i) = *v {
                            acc = acc.checked_add(*i).ok_or(RelationError::BadAggregate {
                                context: "integer overflow in SUM".into(),
                            })?;
                        }
                    }
                    Ok(Value::Int(acc))
                } else {
                    Ok(Value::Float(nums.iter().sum()))
                }
            }
            AggFunc::Avg => {
                let nums = numeric(values, "AVG")?;
                if nums.is_empty() {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Float(nums.iter().sum::<f64>() / nums.len() as f64))
                }
            }
            AggFunc::Min => Ok(values
                .iter()
                .copied()
                .filter(|v| !v.is_null())
                .min()
                .cloned()
                .unwrap_or(Value::Null)),
            AggFunc::Max => Ok(values
                .iter()
                .copied()
                .filter(|v| !v.is_null())
                .max()
                .cloned()
                .unwrap_or(Value::Null)),
            AggFunc::StdDev => {
                let nums = numeric(values, "STDDEV")?;
                if nums.is_empty() {
                    return Ok(Value::Null);
                }
                let mean = nums.iter().sum::<f64>() / nums.len() as f64;
                let var =
                    nums.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / nums.len() as f64;
                Ok(Value::Float(var.sqrt()))
            }
        }
    }
}

fn numeric(values: &[&Value], func: &str) -> Result<Vec<f64>> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_null())
        .map(|v| {
            v.as_f64().ok_or_else(|| RelationError::BadAggregate {
                context: format!("{func} on non-numeric value `{v}`"),
            })
        })
        .collect()
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Parse an aggregate function name, accepting SQL spellings
/// (`COUNT`, `SUM`, `AVG`, `MIN`, `MAX`, `STDDEV`, `COUNT_DISTINCT`).
pub fn parse_agg_func(name: &str) -> Result<AggFunc> {
    let up = name.to_ascii_uppercase();
    Ok(match up.as_str() {
        "COUNT" => AggFunc::Count,
        "COUNT_NON_NULL" | "COUNTNN" => AggFunc::CountNonNull,
        "COUNT_DISTINCT" | "COUNTD" => AggFunc::CountDistinct,
        "SUM" => AggFunc::Sum,
        "AVG" | "AVERAGE" => AggFunc::Avg,
        "MIN" => AggFunc::Min,
        "MAX" => AggFunc::Max,
        "STDDEV" | "STDEV" => AggFunc::StdDev,
        _ => {
            return Err(RelationError::BadAggregate {
                context: format!("unknown aggregate function `{name}`"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn count_variants() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(1), Value::Int(2)];
        assert_eq!(AggFunc::Count.apply(&vals).unwrap(), Value::Int(4));
        assert_eq!(AggFunc::CountNonNull.apply(&vals).unwrap(), Value::Int(3));
        assert_eq!(AggFunc::CountDistinct.apply(&vals).unwrap(), Value::Int(2));
    }

    #[test]
    fn sum_preserves_int_typing() {
        assert_eq!(
            AggFunc::Sum.apply(&ints(&[1, 2, 3])).unwrap(),
            Value::Int(6)
        );
        let mixed = vec![Value::Int(1), Value::Float(0.5)];
        assert_eq!(AggFunc::Sum.apply(&mixed).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn avg_matches_paper_table_iii() {
        // Jetta 2005: 14500, 15000, 16000 → 15166.67 (paper rounds to 15,167)
        let avg = AggFunc::Avg.apply(&ints(&[14500, 15000, 16000])).unwrap();
        let Value::Float(f) = avg else {
            panic!("avg must be float")
        };
        assert!((f - 15166.666666).abs() < 1e-3);
        assert_eq!(f.round() as i64, 15167);
    }

    #[test]
    fn min_max_work_on_strings() {
        let vals = vec![Value::str("Jetta"), Value::str("Civic")];
        assert_eq!(AggFunc::Min.apply(&vals).unwrap(), Value::str("Civic"));
        assert_eq!(AggFunc::Max.apply(&vals).unwrap(), Value::str("Jetta"));
    }

    #[test]
    fn empty_and_all_null_inputs() {
        assert_eq!(AggFunc::Count.apply(&[]).unwrap(), Value::Int(0));
        assert_eq!(AggFunc::Sum.apply(&[]).unwrap(), Value::Null);
        assert_eq!(AggFunc::Avg.apply(&[Value::Null]).unwrap(), Value::Null);
        assert_eq!(AggFunc::Min.apply(&[]).unwrap(), Value::Null);
        assert_eq!(AggFunc::StdDev.apply(&[]).unwrap(), Value::Null);
    }

    #[test]
    fn nulls_ignored_by_sum_avg() {
        let vals = vec![Value::Int(2), Value::Null, Value::Int(4)];
        assert_eq!(AggFunc::Sum.apply(&vals).unwrap(), Value::Int(6));
        assert_eq!(AggFunc::Avg.apply(&vals).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn stddev_population() {
        let v = AggFunc::StdDev
            .apply(&ints(&[2, 4, 4, 4, 5, 5, 7, 9]))
            .unwrap();
        let Value::Float(f) = v else { panic!() };
        assert!((f - 2.0).abs() < 1e-12);
    }

    #[test]
    fn numeric_aggregates_reject_strings() {
        let vals = vec![Value::str("a")];
        assert!(AggFunc::Sum.apply(&vals).is_err());
        assert!(AggFunc::Avg.apply(&vals).is_err());
        assert!(AggFunc::StdDev.apply(&vals).is_err());
        // but MIN/MAX/COUNT are fine
        assert!(AggFunc::Min.apply(&vals).is_ok());
        assert!(AggFunc::Count.apply(&vals).is_ok());
    }

    #[test]
    fn sum_overflow_is_error() {
        assert!(AggFunc::Sum.apply(&ints(&[i64::MAX, 1])).is_err());
    }

    #[test]
    fn parse_names() {
        assert_eq!(parse_agg_func("avg").unwrap(), AggFunc::Avg);
        assert_eq!(parse_agg_func("COUNT").unwrap(), AggFunc::Count);
        assert_eq!(
            parse_agg_func("count_distinct").unwrap(),
            AggFunc::CountDistinct
        );
        assert!(parse_agg_func("median").is_err());
    }

    #[test]
    fn short_names_match_paper_style() {
        assert_eq!(AggFunc::Avg.short_name(), "Avg");
        // Table III's generated column is "Avg_Price"
        assert_eq!(format!("{}_{}", AggFunc::Avg, "Price"), "Avg_Price");
    }
}
