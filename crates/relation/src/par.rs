//! Scoped-thread chunking shared by the relational operators and the
//! core evaluation engine.
//!
//! One pattern serves every data-parallel loop in the workspace: split a
//! slice into one chunk per available core, run the worker on scoped
//! threads, and hand the per-chunk results back *in order* so callers can
//! concatenate without re-sorting. Sequential execution (one chunk) is
//! the degenerate case, so call sites stay branch-free: they compute the
//! `parallel` decision from their row counts and a threshold and let
//! `chunk_map` do the rest.

/// Default number of rows below which the operators and the evaluation
/// engine stay single-threaded: thread spawning costs microseconds, so
/// small relations are faster sequentially.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 8192;

/// Run `f` over `items`, chunked across scoped threads when `parallel`
/// (and the machine has them); chunk results come back in order.
pub fn chunk_map<T, R, F>(items: &[T], parallel: bool, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let workers = if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        1
    };
    let workers = workers.min(items.len().max(1));
    if workers <= 1 {
        return vec![f(items)];
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items.chunks(chunk).map(|c| s.spawn(move || f(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chunk worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_order() {
        let items: Vec<u32> = (0..10_000).collect();
        for parallel in [false, true] {
            let sums = chunk_map(&items, parallel, |c| {
                c.iter().map(|&x| x as u64).sum::<u64>()
            });
            assert_eq!(sums.iter().sum::<u64>(), 49_995_000);
            let firsts = chunk_map(&items, parallel, |c| c[0]);
            let mut sorted = firsts.clone();
            sorted.sort_unstable();
            assert_eq!(firsts, sorted, "chunks must arrive in slice order");
        }
    }

    #[test]
    fn empty_input_yields_one_empty_chunk() {
        let out = chunk_map(&[] as &[u32], true, <[u32]>::len);
        assert_eq!(out, vec![0]);
    }
}
