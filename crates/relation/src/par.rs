//! Scoped-thread chunking shared by the relational operators and the
//! core evaluation engine.
//!
//! One pattern serves every data-parallel loop in the workspace: split a
//! slice into one chunk per available core, run the worker on scoped
//! threads, and hand the per-chunk results back *in order* so callers can
//! concatenate without re-sorting. Sequential execution (one chunk) is
//! the degenerate case, so call sites stay branch-free: they compute the
//! `parallel` decision from their row counts and a threshold and let
//! `chunk_map` do the rest.
//!
//! Worker panics never abort the process: both the sequential path
//! (via `catch_unwind`) and the threaded path (via the `join` result)
//! surface them as [`RelationError::WorkerPanicked`], so the panic policy
//! is uniform on both sides of the parallelism threshold.

use crate::error::{RelationError, Result};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default number of rows below which the operators and the evaluation
/// engine stay single-threaded: thread spawning costs microseconds, so
/// small relations are faster sequentially.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 8192;

/// Render a caught panic payload for [`RelationError::WorkerPanicked`].
/// `&str` and `String` payloads (everything `panic!` produces in this
/// workspace, including armed failpoints) pass through verbatim.
pub(crate) fn panic_site(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Join a set of scoped-thread handles in order, converting any worker
/// panic into [`RelationError::WorkerPanicked`] instead of resuming the
/// unwind on the caller. Used by `chunk_map` and by the hand-rolled
/// scoped loops in the evaluation engine.
pub fn join_all<R>(handles: Vec<std::thread::ScopedJoinHandle<'_, R>>) -> Result<Vec<R>> {
    let mut out = Vec::with_capacity(handles.len());
    let mut panicked: Option<RelationError> = None;
    for h in handles {
        match h.join() {
            Ok(r) => out.push(r),
            Err(payload) => {
                // Keep joining the rest so the scope exits cleanly, but
                // report the first panic.
                panicked.get_or_insert(RelationError::WorkerPanicked {
                    site: panic_site(payload),
                });
            }
        }
    }
    match panicked {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Run `f` over `items`, chunked across scoped threads when `parallel`
/// (and the machine has them); chunk results come back in order. A panic
/// inside `f` — on any thread, or inline on the sequential path — is
/// caught and returned as [`RelationError::WorkerPanicked`].
pub fn chunk_map<T, R, F>(items: &[T], parallel: bool, f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let workers = if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        1
    };
    let workers = workers.min(items.len().max(1));
    if workers <= 1 {
        // The closure is re-entered nowhere after a panic, and all results
        // flow through the return value, so broken-invariant observation
        // is impossible: AssertUnwindSafe is sound here.
        return match catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "fault-injection")]
            crate::fault::maybe_panic("par.chunk");
            f(items)
        })) {
            Ok(r) => Ok(vec![r]),
            Err(payload) => Err(RelationError::WorkerPanicked {
                site: panic_site(payload),
            }),
        };
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                s.spawn(move || {
                    #[cfg(feature = "fault-injection")]
                    crate::fault::maybe_panic("par.chunk");
                    f(c)
                })
            })
            .collect();
        join_all(handles)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_order() {
        let items: Vec<u32> = (0..10_000).collect();
        for parallel in [false, true] {
            let sums = chunk_map(&items, parallel, |c| {
                c.iter().map(|&x| x as u64).sum::<u64>()
            })
            .unwrap();
            assert_eq!(sums.iter().sum::<u64>(), 49_995_000);
            let firsts = chunk_map(&items, parallel, |c| c[0]).unwrap();
            let mut sorted = firsts.clone();
            sorted.sort_unstable();
            assert_eq!(firsts, sorted, "chunks must arrive in slice order");
        }
    }

    #[test]
    fn empty_input_yields_one_empty_chunk() {
        let out = chunk_map(&[] as &[u32], true, <[u32]>::len).unwrap();
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn worker_panic_becomes_typed_error_on_both_paths() {
        let items: Vec<u32> = (0..20_000).collect();
        for parallel in [false, true] {
            let out = chunk_map(&items, parallel, |c| {
                if c.contains(&7) {
                    panic!("boom in chunk");
                }
                c.len()
            });
            assert_eq!(
                out,
                Err(RelationError::WorkerPanicked {
                    site: "boom in chunk".to_string()
                }),
                "parallel={parallel}"
            );
        }
    }
}
