//! # ssa-relation — relational substrate for the spreadsheet algebra
//!
//! The ICDE 2009 paper's prototype (SheetMusiq) ran against PostgreSQL.
//! This crate is the reproduction's stand-in backend: an in-memory
//! relational engine with
//!
//! * a scalar [`value::Value`] system with a total order and SQL-style
//!   NULL propagation,
//! * [`schema::Schema`] / [`tuple::Tuple`] / [`relation::Relation`]
//!   (multiset semantics),
//! * a scalar expression language ([`expr::Expr`]) with a parser
//!   ([`expr_parse`]) shared by the SheetMusiq script language and the SQL
//!   front end,
//! * aggregate functions ([`agg`]),
//! * the classical relational operators ([`ops`]) used both as reference
//!   semantics and as the machinery underneath the spreadsheet algebra,
//! * CSV I/O ([`csv`]) and a base-relation [`catalog::Catalog`].
//!
//! Everything downstream (`spreadsheet-algebra`, `ssa-sql`, `ssa-tpch`,
//! `sheetmusiq`, `ssa-study`) builds on these types.

// Test modules assert freely; the unwrap ban applies to library code only
// (see scripts/verify.sh for the scoped clippy gate).
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod agg;
pub mod catalog;
pub mod compiled;
pub mod csv;
pub mod error;
pub mod expr;
pub mod expr_parse;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod intern;
pub mod ops;
pub mod par;
pub mod relation;
pub mod rng;
pub mod schema;
pub mod tuple;
pub mod value;

/// Failpoint probe: expands to `fault::check(site)?` under the expanding
/// crate's `fault-injection` feature and to nothing otherwise, so the
/// injection sites cost zero in production builds. Each crate that hosts
/// sites forwards its own `fault-injection` feature to ssa-relation's.
#[macro_export]
macro_rules! fault_check {
    ($site:literal) => {
        #[cfg(feature = "fault-injection")]
        $crate::fault::check($site)?;
    };
}

pub use agg::AggFunc;
pub use catalog::Catalog;
pub use compiled::{BoundExpr, CompiledExpr, PairRow, RowAccess};
pub use error::{RelationError, Result};
pub use expr::{ArithOp, CmpOp, Expr};
pub use intern::Sym;
pub use relation::{ColumnSlice, Relation};
pub use schema::{Column, Schema};
pub use tuple::Tuple;
pub use value::{Value, ValueType};
