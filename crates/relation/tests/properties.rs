//! Property tests for the relational substrate: value ordering laws,
//! multiset-operator algebra, sort stability, CSV round-trips, and
//! expression-parser round-trips.

use proptest::prelude::*;
use ssa_relation::expr_parse::parse_expr;
use ssa_relation::ops::{self, SortKey};
use ssa_relation::schema::Schema;
use ssa_relation::{Expr, Relation, Tuple, Value};
use ssa_relation::ValueType::{Int, Str};
use std::cmp::Ordering;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|i| Value::Float(i as f64 / 4.0)),
        "[a-z]{0,6}".prop_map(Value::Str),
    ]
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, String)>> {
    proptest::collection::vec((0..20i64, "[a-c]{1,2}"), 0..30)
}

fn rel_of(name: &str, rows: &[(i64, String)]) -> Relation {
    Relation::with_rows(
        name,
        Schema::of(&[("x", Int), ("s", Str)]),
        rows.iter()
            .map(|(x, s)| Tuple::new(vec![Value::Int(*x), Value::Str(s.clone())]))
            .collect(),
    )
    .expect("widths match")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Value's Ord is a total order: antisymmetric and transitive.
    #[test]
    fn value_order_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        // antisymmetry
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.cmp(&a), Ordering::Equal),
        }
        // transitivity
        if a <= b && b <= c {
            prop_assert!(a <= c, "{a:?} <= {b:?} <= {c:?} but not {a:?} <= {c:?}");
        }
        // consistency of eq with cmp
        prop_assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
    }

    /// Hash agrees with equality.
    #[test]
    fn value_hash_consistent_with_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// |A ∪ B| = |A| + |B| and per-tuple counts add.
    #[test]
    fn union_adds_histograms(xs in arb_rows(), ys in arb_rows()) {
        let a = rel_of("a", &xs);
        let b = rel_of("b", &ys);
        let u = ops::union_all(&a, &b).unwrap();
        prop_assert_eq!(u.len(), a.len() + b.len());
        let (ha, hb, hu) = (a.histogram(), b.histogram(), u.histogram());
        for (t, n) in &hu {
            let expect = ha.get(t).copied().unwrap_or(0) + hb.get(t).copied().unwrap_or(0);
            prop_assert_eq!(*n, expect);
        }
    }

    /// Multiset difference: count(A − B, t) = max(0, count(A,t) − count(B,t)).
    #[test]
    fn difference_saturating_counts(xs in arb_rows(), ys in arb_rows()) {
        let a = rel_of("a", &xs);
        let b = rel_of("b", &ys);
        let d = ops::difference(&a, &b).unwrap();
        let (ha, hb, hd) = (a.histogram(), b.histogram(), d.histogram());
        for (t, n) in &ha {
            let expect = n.saturating_sub(hb.get(t).copied().unwrap_or(0));
            prop_assert_eq!(hd.get(t).copied().unwrap_or(0), expect);
        }
        // nothing new appears
        for t in hd.keys() {
            prop_assert!(ha.contains_key(t));
        }
    }

    /// (A ∪ B) − B == A.
    #[test]
    fn union_difference_inverse(xs in arb_rows(), ys in arb_rows()) {
        let a = rel_of("a", &xs);
        let b = rel_of("b", &ys);
        let u = ops::union_all(&a, &b).unwrap();
        let back = ops::difference(&u, &b).unwrap();
        prop_assert!(back.multiset_eq(&a));
    }

    /// distinct is idempotent and dominated by the original.
    #[test]
    fn distinct_idempotent(xs in arb_rows()) {
        let a = rel_of("a", &xs);
        let d1 = ops::distinct(&a).unwrap();
        let d2 = ops::distinct(&d1).unwrap();
        prop_assert!(d1.multiset_eq(&d2));
        for (t, n) in d1.histogram() {
            prop_assert_eq!(n, 1);
            prop_assert!(a.histogram().contains_key(&t));
        }
    }

    /// Selection distributes over union: σ(A ∪ B) == σ(A) ∪ σ(B).
    #[test]
    fn selection_distributes_over_union(xs in arb_rows(), ys in arb_rows(), k in 0..20i64) {
        let a = rel_of("a", &xs);
        let b = rel_of("b", &ys);
        let pred = Expr::col("x").lt(Expr::lit(k));
        let lhs = ops::select(&ops::union_all(&a, &b).unwrap(), &pred).unwrap();
        let rhs = ops::union_all(
            &ops::select(&a, &pred).unwrap(),
            &ops::select(&b, &pred).unwrap(),
        )
        .unwrap();
        prop_assert!(lhs.multiset_eq(&rhs));
    }

    /// Sorting is a permutation, ordered by the key, and stable.
    #[test]
    fn sort_is_stable_permutation(xs in arb_rows()) {
        let a = rel_of("a", &xs);
        let sorted = ops::sort(&a, &[SortKey::asc("x")]).unwrap();
        prop_assert!(sorted.multiset_eq(&a));
        let col = sorted.column_values("x").unwrap();
        prop_assert!(col.windows(2).all(|w| w[0] <= w[1]));
        // stability: rows with equal x keep their original relative order
        let orig: Vec<&Tuple> = a.rows().iter().collect();
        for w in sorted.rows().windows(2) {
            if w[0].get(0) == w[1].get(0) {
                let i = orig.iter().position(|t| *t == &w[0]).unwrap();
                let j = orig.iter().rposition(|t| *t == &w[1]).unwrap();
                prop_assert!(i <= j);
            }
        }
    }

    /// Product cardinality and join-as-product-plus-selection.
    #[test]
    fn join_equals_filtered_product(xs in arb_rows(), ys in arb_rows()) {
        let a = rel_of("a", &xs);
        let mut b = rel_of("b", &ys);
        b.schema_mut().rename("x", "y").unwrap();
        b.schema_mut().rename("s", "t").unwrap();
        let p = ops::product(&a, &b).unwrap();
        prop_assert_eq!(p.len(), a.len() * b.len());
        let cond = Expr::col("x").eq(Expr::col("y"));
        let j = ops::join(&a, &b, &cond).unwrap();
        let filtered = ops::select(&p, &cond).unwrap();
        prop_assert!(j.multiset_eq(&filtered));
    }

    /// CSV round-trip: parse(to_csv(R)) == R for string/int relations.
    #[test]
    fn csv_round_trip(xs in proptest::collection::vec((0..1000i64, "[a-zA-Z ,\"]{0,8}"), 0..20)) {
        let schema = Schema::of(&[("n", Int), ("text", Str)]);
        let rel = Relation::with_rows(
            "r",
            schema,
            xs.iter()
                .map(|(n, s)| {
                    // avoid strings that parse back as numbers, empties,
                    // or values with leading/trailing whitespace (the CSV
                    // reader trims unquoted fields)
                    let s = format!("s{s}e");
                    Tuple::new(vec![Value::Int(*n), Value::Str(s)])
                })
                .collect(),
        )
        .unwrap();
        prop_assume!(!rel.is_empty());
        let text = ssa_relation::csv::to_csv(&rel);
        let back = ssa_relation::csv::parse_csv("r", &text).unwrap();
        prop_assert!(rel.multiset_eq(&back));
    }

    /// Expression Display output re-parses to the same AST.
    #[test]
    fn expr_display_round_trips(k in -100..100i64, m in -100..100i64) {
        let exprs = [
            Expr::col("x").lt(Expr::lit(k)).and(Expr::col("s").eq(Expr::lit("ab"))),
            Expr::col("x").add(Expr::lit(m)).mul(Expr::lit(k)).ge(Expr::lit(0)),
            Expr::if_else(
                Expr::col("x").gt(Expr::lit(k)),
                Expr::lit("hi"),
                Expr::lit("lo"),
            ),
            Expr::col("s").cmp(ssa_relation::CmpOp::Ne, Expr::lit("q")).or(
                Expr::IsNull(Box::new(Expr::col("x"))),
            ),
        ];
        for e in exprs {
            let text = e.to_string();
            let back = parse_expr(&text).unwrap();
            prop_assert_eq!(back, e, "round trip failed for `{}`", text);
        }
    }

    /// Aggregates of a concatenation: COUNT adds, SUM adds, MIN/MAX are
    /// the min/max of parts.
    #[test]
    fn aggregate_concat_laws(xs in proptest::collection::vec(-100..100i64, 1..20),
                             ys in proptest::collection::vec(-100..100i64, 1..20)) {
        use ssa_relation::AggFunc;
        let vx: Vec<Value> = xs.iter().map(|&v| Value::Int(v)).collect();
        let vy: Vec<Value> = ys.iter().map(|&v| Value::Int(v)).collect();
        let both: Vec<Value> = vx.iter().chain(vy.iter()).cloned().collect();
        let count = |v: &[Value]| AggFunc::Count.apply(v).unwrap();
        let sum = |v: &[Value]| AggFunc::Sum.apply(v).unwrap();
        prop_assert_eq!(
            count(&both),
            count(&vx).add(&count(&vy)).unwrap()
        );
        prop_assert_eq!(sum(&both), sum(&vx).add(&sum(&vy)).unwrap());
        let min_both = AggFunc::Min.apply(&both).unwrap();
        let min_parts = std::cmp::min(
            AggFunc::Min.apply(&vx).unwrap(),
            AggFunc::Min.apply(&vy).unwrap(),
        );
        prop_assert_eq!(min_both, min_parts);
    }
}
