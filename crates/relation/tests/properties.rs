//! Property tests for the relational substrate: value ordering laws,
//! multiset-operator algebra, sort stability, CSV round-trips, and
//! expression-parser round-trips. Cases are drawn from the in-tree
//! [`Rng`] with fixed per-test seeds, so failures are replayable.

use ssa_relation::expr_parse::parse_expr;
use ssa_relation::ops::{self, SortKey};
use ssa_relation::rng::Rng;
use ssa_relation::schema::Schema;
use ssa_relation::ValueType::{Int, Str};
use ssa_relation::{Expr, Relation, Tuple, Value};
use std::cmp::Ordering;

fn arb_value(rng: &mut Rng) -> Value {
    match rng.gen_range(0..5usize) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.gen_range(-1000..1000i64)),
        3 => Value::Float(rng.gen_range(-1000..1000i64) as f64 / 4.0),
        _ => {
            let len = rng.gen_range(0..=6usize);
            Value::from(
                (0..len)
                    .map(|_| *rng.pick(&['a', 'b', 'c', 'x', 'y', 'z']))
                    .collect::<String>(),
            )
        }
    }
}

fn arb_rows(rng: &mut Rng) -> Vec<(i64, String)> {
    (0..rng.gen_range(0..30usize))
        .map(|_| {
            let len = rng.gen_range(1..=2usize);
            let s: String = (0..len).map(|_| *rng.pick(&['a', 'b', 'c'])).collect();
            (rng.gen_range(0..20i64), s)
        })
        .collect()
}

fn rel_of(name: &str, rows: &[(i64, String)]) -> Relation {
    Relation::with_rows(
        name,
        Schema::of(&[("x", Int), ("s", Str)]),
        rows.iter()
            .map(|(x, s)| Tuple::new(vec![Value::Int(*x), Value::str(s.as_str())]))
            .collect(),
    )
    .expect("widths match")
}

/// Value's Ord is a total order: antisymmetric and transitive.
#[test]
fn value_order_is_total() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x01 ^ (case << 8));
        let (a, b, c) = (
            arb_value(&mut rng),
            arb_value(&mut rng),
            arb_value(&mut rng),
        );
        // antisymmetry
        match a.cmp(&b) {
            Ordering::Less => assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => assert_eq!(b.cmp(&a), Ordering::Equal),
        }
        // transitivity
        if a <= b && b <= c {
            assert!(a <= c, "{a:?} <= {b:?} <= {c:?} but not {a:?} <= {c:?}");
        }
        // consistency of eq with cmp
        assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
    }
}

/// Hash agrees with equality.
#[test]
fn value_hash_consistent_with_eq() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x02 ^ (case << 8));
        let (a, b) = (arb_value(&mut rng), arb_value(&mut rng));
        if a == b {
            assert_eq!(h(&a), h(&b));
        }
    }
}

/// The interned representation is invisible: string values order,
/// equate and hash exactly as their text does, so Def. 1's total order
/// is byte-for-byte what it was before `Value::Str` became a `Sym`.
#[test]
fn interned_values_match_plain_string_semantics() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }
    let alphabet = ['a', 'b', 'A', 'B', 'z', ' ', '0', 'é'];
    for case in 0..512u64 {
        let mut rng = Rng::seed_from_u64(0x0D ^ (case << 8));
        let arb_s = |rng: &mut Rng| -> String {
            let len = rng.gen_range(0..=10usize);
            (0..len).map(|_| *rng.pick(&alphabet)).collect()
        };
        let (a, b) = (arb_s(&mut rng), arb_s(&mut rng));
        let (va, vb) = (Value::from(a.clone()), Value::from(b.clone()));
        // Ord/Eq/Hash delegate to the text, not the interner ids.
        assert_eq!(va.cmp(&vb), a.cmp(&b), "case {case}: {a:?} vs {b:?}");
        assert_eq!(va == vb, a == b, "case {case}");
        if va == vb {
            assert_eq!(h(&va), h(&vb), "case {case}");
        }
        // NULL-first and the cross-type rank of Def. 1 are untouched:
        // strings still sort after every non-string value.
        assert!(Value::Null < va);
        assert!(Value::Bool(true) < va);
        assert!(Value::Int(i64::MAX) < va);
        assert!(Value::Float(f64::INFINITY) < va);
    }
    // Numeric ties keep their Int-before-Float tie-break.
    assert_eq!(Value::Int(2).cmp(&Value::Float(2.0)), Ordering::Less);
    assert_eq!(Value::Float(2.0).cmp(&Value::Int(2)), Ordering::Greater);
}

/// Sorting interned string values is identical to sorting their texts,
/// and the interner's bulk rank snapshot induces the same order as
/// `Value`'s own comparator — the invariant the index-vector engine's
/// string sort-key fast path relies on.
#[test]
fn interned_sort_matches_text_sort() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0x0E ^ (case << 8));
        let mut texts: Vec<String> = (0..rng.gen_range(0..40usize))
            .map(|_| {
                let len = rng.gen_range(0..=6usize);
                (0..len)
                    .map(|_| *rng.pick(&['m', 'a', 'z', 'M', '1', ' ']))
                    .collect()
            })
            .collect();
        let mut values: Vec<Value> = texts.iter().map(|s| Value::str(s.as_str())).collect();
        values.sort();
        texts.sort();
        let resolved: Vec<&str> = values.iter().map(|v| v.as_str().unwrap()).collect();
        assert_eq!(resolved, texts, "case {case}");

        let snap = ssa_relation::intern::rank_snapshot();
        for w in values.windows(2) {
            if let (Value::Str(a), Value::Str(b)) = (&w[0], &w[1]) {
                assert!(
                    snap[a.id() as usize] <= snap[b.id() as usize],
                    "case {case}: rank snapshot disagrees with Value order"
                );
            }
        }
    }
}

/// |A ∪ B| = |A| + |B| and per-tuple counts add.
#[test]
fn union_adds_histograms() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x03 ^ (case << 8));
        let a = rel_of("a", &arb_rows(&mut rng));
        let b = rel_of("b", &arb_rows(&mut rng));
        let u = ops::union_all(&a, &b).unwrap();
        assert_eq!(u.len(), a.len() + b.len());
        let (ha, hb, hu) = (a.histogram(), b.histogram(), u.histogram());
        for (t, n) in &hu {
            let expect = ha.get(t).copied().unwrap_or(0) + hb.get(t).copied().unwrap_or(0);
            assert_eq!(*n, expect);
        }
    }
}

/// Multiset difference: count(A − B, t) = max(0, count(A,t) − count(B,t)).
#[test]
fn difference_saturating_counts() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x04 ^ (case << 8));
        let a = rel_of("a", &arb_rows(&mut rng));
        let b = rel_of("b", &arb_rows(&mut rng));
        let d = ops::difference(&a, &b).unwrap();
        let (ha, hb, hd) = (a.histogram(), b.histogram(), d.histogram());
        for (t, n) in &ha {
            let expect = n.saturating_sub(hb.get(t).copied().unwrap_or(0));
            assert_eq!(hd.get(t).copied().unwrap_or(0), expect);
        }
        // nothing new appears
        for t in hd.keys() {
            assert!(ha.contains_key(t));
        }
    }
}

/// (A ∪ B) − B == A.
#[test]
fn union_difference_inverse() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x05 ^ (case << 8));
        let a = rel_of("a", &arb_rows(&mut rng));
        let b = rel_of("b", &arb_rows(&mut rng));
        let u = ops::union_all(&a, &b).unwrap();
        let back = ops::difference(&u, &b).unwrap();
        assert!(back.multiset_eq(&a), "case {case}");
    }
}

/// distinct is idempotent and dominated by the original.
#[test]
fn distinct_idempotent() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x06 ^ (case << 8));
        let a = rel_of("a", &arb_rows(&mut rng));
        let d1 = ops::distinct(&a).unwrap();
        let d2 = ops::distinct(&d1).unwrap();
        assert!(d1.multiset_eq(&d2));
        for (t, n) in d1.histogram() {
            assert_eq!(n, 1);
            assert!(a.histogram().contains_key(&t));
        }
    }
}

/// Selection distributes over union: σ(A ∪ B) == σ(A) ∪ σ(B).
#[test]
fn selection_distributes_over_union() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x07 ^ (case << 8));
        let a = rel_of("a", &arb_rows(&mut rng));
        let b = rel_of("b", &arb_rows(&mut rng));
        let k = rng.gen_range(0..20i64);
        let pred = Expr::col("x").lt(Expr::lit(k));
        let lhs = ops::select(&ops::union_all(&a, &b).unwrap(), &pred).unwrap();
        let rhs = ops::union_all(
            &ops::select(&a, &pred).unwrap(),
            &ops::select(&b, &pred).unwrap(),
        )
        .unwrap();
        assert!(lhs.multiset_eq(&rhs), "case {case}");
    }
}

/// Sorting is a permutation, ordered by the key, and stable.
#[test]
fn sort_is_stable_permutation() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x08 ^ (case << 8));
        let a = rel_of("a", &arb_rows(&mut rng));
        let sorted = ops::sort(&a, &[SortKey::asc("x")]).unwrap();
        assert!(sorted.multiset_eq(&a));
        let col = sorted.column_values("x").unwrap();
        assert!(col.windows(2).all(|w| w[0] <= w[1]));
        // stability: rows with equal x keep their original relative order
        let orig: Vec<&Tuple> = a.rows().iter().collect();
        for w in sorted.rows().windows(2) {
            if w[0].get(0) == w[1].get(0) {
                let i = orig.iter().position(|t| *t == &w[0]).unwrap();
                let j = orig.iter().rposition(|t| *t == &w[1]).unwrap();
                assert!(i <= j);
            }
        }
    }
}

/// Product cardinality and join-as-product-plus-selection.
#[test]
fn join_equals_filtered_product() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0x09 ^ (case << 8));
        let a = rel_of("a", &arb_rows(&mut rng));
        let mut b = rel_of("b", &arb_rows(&mut rng));
        b.schema_mut().rename("x", "y").unwrap();
        b.schema_mut().rename("s", "t").unwrap();
        let p = ops::product(&a, &b).unwrap();
        assert_eq!(p.len(), a.len() * b.len());
        let cond = Expr::col("x").eq(Expr::col("y"));
        let j = ops::join(&a, &b, &cond).unwrap();
        let filtered = ops::select(&p, &cond).unwrap();
        assert!(j.multiset_eq(&filtered), "case {case}");
    }
}

/// CSV round-trip: parse(to_csv(R)) == R for string/int relations.
#[test]
fn csv_round_trip() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x0A ^ (case << 8));
        let schema = Schema::of(&[("n", Int), ("text", Str)]);
        let n_rows = rng.gen_range(1..20usize);
        let rel = Relation::with_rows(
            "r",
            schema,
            (0..n_rows)
                .map(|_| {
                    // avoid strings that parse back as numbers, empties,
                    // or values with leading/trailing whitespace (the CSV
                    // reader trims unquoted fields)
                    let len = rng.gen_range(0..=8usize);
                    let body: String = (0..len)
                        .map(|_| *rng.pick(&['q', 'W', ' ', ',', '"', 'z', 'A']))
                        .collect();
                    Tuple::new(vec![
                        Value::Int(rng.gen_range(0..1000i64)),
                        Value::from(format!("s{body}e")),
                    ])
                })
                .collect(),
        )
        .unwrap();
        let text = ssa_relation::csv::to_csv(&rel);
        let back = ssa_relation::csv::parse_csv("r", &text).unwrap();
        assert!(rel.multiset_eq(&back), "case {case}");
    }
}

/// Expression Display output re-parses to the same AST.
#[test]
fn expr_display_round_trips() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x0B ^ (case << 8));
        let k = rng.gen_range(-100..100i64);
        let m = rng.gen_range(-100..100i64);
        let exprs = [
            Expr::col("x")
                .lt(Expr::lit(k))
                .and(Expr::col("s").eq(Expr::lit("ab"))),
            Expr::col("x")
                .add(Expr::lit(m))
                .mul(Expr::lit(k))
                .ge(Expr::lit(0)),
            Expr::if_else(
                Expr::col("x").gt(Expr::lit(k)),
                Expr::lit("hi"),
                Expr::lit("lo"),
            ),
            Expr::col("s")
                .cmp(ssa_relation::CmpOp::Ne, Expr::lit("q"))
                .or(Expr::IsNull(Box::new(Expr::col("x")))),
        ];
        for e in exprs {
            let text = e.to_string();
            let back = parse_expr(&text).unwrap();
            assert_eq!(back, e, "round trip failed for `{text}`");
        }
    }
}

/// Aggregates of a concatenation: COUNT adds, SUM adds, MIN/MAX are
/// the min/max of parts.
#[test]
fn aggregate_concat_laws() {
    use ssa_relation::AggFunc;
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x0C ^ (case << 8));
        let vx: Vec<Value> = (0..rng.gen_range(1..20usize))
            .map(|_| Value::Int(rng.gen_range(-100..100i64)))
            .collect();
        let vy: Vec<Value> = (0..rng.gen_range(1..20usize))
            .map(|_| Value::Int(rng.gen_range(-100..100i64)))
            .collect();
        let both: Vec<Value> = vx.iter().chain(vy.iter()).cloned().collect();
        let count = |v: &[Value]| AggFunc::Count.apply(v).unwrap();
        let sum = |v: &[Value]| AggFunc::Sum.apply(v).unwrap();
        assert_eq!(count(&both), count(&vx).add(&count(&vy)).unwrap());
        assert_eq!(sum(&both), sum(&vx).add(&sum(&vy)).unwrap());
        let min_both = AggFunc::Min.apply(&both).unwrap();
        let min_parts = std::cmp::min(
            AggFunc::Min.apply(&vx).unwrap(),
            AggFunc::Min.apply(&vy).unwrap(),
        );
        assert_eq!(min_both, min_parts);
    }
}
