//! Precedence and commutativity between operator instances (Sec. IV-B).
//!
//! "We say that a spreadsheet operator instance p *precedes* operator
//! instance q if q requires columns created by p or q removes a column
//! that p requires. In order for two operator instances to commute,
//! neither of them can precede the other." Binary operators create a
//! *point of non-commutativity*.
//!
//! This module makes those notions executable: [`AlgebraOp`] is a
//! first-class description of one unary operator invocation,
//! [`OpSignature`] captures what it creates / requires / removes, and
//! [`may_commute`] is a conservative decision procedure — when it says
//! `true`, applying the two operators in either order provably yields the
//! same spreadsheet (the property tests in `tests/commutativity.rs` check
//! this against the evaluator). Beyond the paper's column-based rule we
//! also track *grouping levels*, since an aggregate instance additionally
//! requires its grouping level to exist and keep its basis.

use crate::error::Result;
use crate::sheet::Spreadsheet;
use crate::spec::Direction;
use ssa_relation::{AggFunc, Expr};
use std::collections::BTreeSet;
use std::fmt;

/// One unary operator invocation, as data. (Binary operators are points
/// of non-commutativity by definition and have no entry here.)
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraOp {
    Select {
        predicate: Expr,
    },
    Project {
        column: String,
    },
    Reinstate {
        column: String,
    },
    Aggregate {
        func: AggFunc,
        column: String,
        level: usize,
    },
    Formula {
        name: Option<String>,
        expr: Expr,
    },
    Dedup,
    Group {
        basis: Vec<String>,
        order: Direction,
    },
    Order {
        attribute: String,
        order: Direction,
        level: usize,
    },
}

impl AlgebraOp {
    /// Apply this operator to a sheet.
    pub fn apply(&self, sheet: &mut Spreadsheet) -> Result<()> {
        match self {
            AlgebraOp::Select { predicate } => {
                sheet.select(predicate.clone())?;
            }
            AlgebraOp::Project { column } => sheet.project_out(column)?,
            AlgebraOp::Reinstate { column } => sheet.reinstate(column)?,
            AlgebraOp::Aggregate {
                func,
                column,
                level,
            } => {
                sheet.aggregate(*func, column, *level)?;
            }
            AlgebraOp::Formula { name, expr } => {
                sheet.formula(name.as_deref(), expr.clone())?;
            }
            AlgebraOp::Dedup => sheet.dedup()?,
            AlgebraOp::Group { basis, order } => {
                let refs: Vec<&str> = basis.iter().map(|s| s.as_str()).collect();
                sheet.group(&refs, *order)?;
            }
            AlgebraOp::Order {
                attribute,
                order,
                level,
            } => {
                sheet.order(attribute, *order, *level)?;
            }
        }
        Ok(())
    }

    /// Compute the signature of this instance against the sheet it would
    /// be applied to.
    pub fn signature(&self, sheet: &Spreadsheet) -> OpSignature {
        let mut sig = OpSignature::default();
        match self {
            AlgebraOp::Select { predicate } => {
                sig.requires = predicate.columns();
            }
            AlgebraOp::Project { column } => {
                // Removing a computed column kills its definition; hiding a
                // base column is treated as a removal too for conflict
                // purposes (conservative).
                sig.removes.insert(column.clone());
            }
            AlgebraOp::Reinstate { column } => {
                sig.creates.insert(column.clone());
            }
            AlgebraOp::Aggregate {
                func,
                column,
                level,
            } => {
                sig.requires.insert(column.clone());
                sig.requires
                    .extend(sheet.state().spec.absolute_basis(*level));
                sig.creates.insert(predicted_name(
                    sheet,
                    &format!("{}_{}", func.short_name(), column),
                ));
                sig.needs_level = Some(*level);
            }
            AlgebraOp::Formula { name, expr } => {
                sig.requires = expr.columns();
                let base = match name {
                    Some(n) => n.clone(),
                    None => "F?".to_string(), // auto-names always conflict
                };
                sig.creates.insert(predicted_name(sheet, &base));
            }
            AlgebraOp::Dedup => {}
            AlgebraOp::Group { basis, order: _ } => {
                sig.requires.extend(basis.iter().cloned());
                sig.structural = true;
                // Adding a level never disturbs existing levels' bases.
                sig.creates_level = Some(sheet.state().spec.level_count() + 1);
            }
            AlgebraOp::Order {
                attribute,
                order: _,
                level,
            } => {
                sig.requires.insert(attribute.clone());
                sig.structural = true;
                let spec = &sheet.state().spec;
                let n = spec.level_count();
                if *level < n && !spec.in_relative_basis(attribute, level + 1) {
                    // Def. 4 case 1: destroys levels deeper than `level`.
                    sig.destroys_levels_above = Some(*level);
                }
            }
        }
        sig
    }
}

fn predicted_name(sheet: &Spreadsheet, base: &str) -> String {
    let exists = |n: &str| sheet.base().schema().contains(n) || sheet.state().is_computed(n);
    if !exists(base) {
        return base.to_string();
    }
    let mut i = 2;
    loop {
        let candidate = format!("{base}_{i}");
        if !exists(&candidate) {
            return candidate;
        }
        i += 1;
    }
}

impl fmt::Display for AlgebraOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraOp::Select { predicate } => write!(f, "σ[{predicate}]"),
            AlgebraOp::Project { column } => write!(f, "π[{column}]"),
            AlgebraOp::Reinstate { column } => write!(f, "π̄[{column}]"),
            AlgebraOp::Aggregate {
                func,
                column,
                level,
            } => {
                write!(f, "η[{func}({column}) @L{level}]")
            }
            AlgebraOp::Formula { name, expr } => {
                write!(f, "θ[{} = {expr}]", name.as_deref().unwrap_or("<auto>"))
            }
            AlgebraOp::Dedup => write!(f, "δ[DE]"),
            AlgebraOp::Group { basis, order } => write!(f, "τ[{{{}}} {order}]", basis.join(",")),
            AlgebraOp::Order {
                attribute,
                order,
                level,
            } => {
                write!(f, "λ[{attribute} {order} @L{level}]")
            }
        }
    }
}

/// What one operator instance touches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpSignature {
    /// Columns this instance creates.
    pub creates: BTreeSet<String>,
    /// Columns this instance reads.
    pub requires: BTreeSet<String>,
    /// Columns this instance removes (or hides).
    pub removes: BTreeSet<String>,
    /// Grouping/ordering instance (these never commute with each other).
    pub structural: bool,
    /// For aggregates: the grouping level that must exist and keep its
    /// basis.
    pub needs_level: Option<usize>,
    /// For grouping: the new level it introduces.
    pub creates_level: Option<usize>,
    /// For ordering case 1: every level above this one is destroyed.
    pub destroys_levels_above: Option<usize>,
}

/// The paper's precedence relation: does `p` precede `q`?
pub fn precedes(p: &OpSignature, q: &OpSignature) -> bool {
    // q requires columns created by p
    if q.requires.intersection(&p.creates).next().is_some() {
        return true;
    }
    // q removes a column that p requires
    if q.removes.intersection(&p.requires).next().is_some() {
        return true;
    }
    // level-structure refinement: q needs a level p creates
    if let (Some(need), Some(created)) = (q.needs_level, p.creates_level) {
        if need >= created {
            return true;
        }
    }
    false
}

/// Conservative commutativity check for two instances against the sheet
/// both would start from. `true` ⇒ the two orders produce identical
/// spreadsheets (Theorem 2, with precedence satisfied).
pub fn may_commute(a: &AlgebraOp, b: &AlgebraOp, sheet: &Spreadsheet) -> bool {
    let sa = a.signature(sheet);
    let sb = b.signature(sheet);
    // Grouping and ordering do not commute with each other (Sec. IV-B).
    if sa.structural && sb.structural {
        return false;
    }
    if precedes(&sa, &sb) || precedes(&sb, &sa) {
        return false;
    }
    // Name conflicts: creating/removing/touching the same column.
    if sa.creates.intersection(&sb.creates).next().is_some() {
        return false;
    }
    if sa.removes.intersection(&sb.removes).next().is_some() {
        return false;
    }
    if sa.creates.intersection(&sb.removes).next().is_some()
        || sb.creates.intersection(&sa.removes).next().is_some()
    {
        return false;
    }
    // An aggregate whose level would be destroyed by an ordering: those
    // two conflict (the engine refuses one order and allows the other).
    for (x, y) in [(&sa, &sb), (&sb, &sa)] {
        if let (Some(level), Some(destroyed_above)) = (x.needs_level, y.destroys_levels_above) {
            if level > destroyed_above {
                return false;
            }
        }
        // An aggregate at a level that does not exist yet cannot run first.
        if let Some(level) = x.needs_level {
            if level > sheet.state().spec.level_count() {
                return false;
            }
        }
        let _ = y;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::used_cars;

    fn sheet() -> Spreadsheet {
        Spreadsheet::over(used_cars())
    }

    fn sel(col: &str, v: i64) -> AlgebraOp {
        AlgebraOp::Select {
            predicate: Expr::col(col).lt(Expr::lit(v)),
        }
    }

    #[test]
    fn independent_selections_commute() {
        let s = sheet();
        assert!(may_commute(&sel("Price", 16000), &sel("Year", 2006), &s));
    }

    #[test]
    fn aggregation_then_dependent_selection_is_precedence() {
        let s = sheet();
        let agg = AlgebraOp::Aggregate {
            func: AggFunc::Avg,
            column: "Price".into(),
            level: 1,
        };
        let dep = AlgebraOp::Select {
            predicate: Expr::col("Price").lt(Expr::col("Avg_Price")),
        };
        assert!(!may_commute(&agg, &dep, &s));
        let sa = agg.signature(&s);
        let sd = dep.signature(&s);
        assert!(precedes(&sa, &sd));
        assert!(!precedes(&sd, &sa));
    }

    #[test]
    fn aggregation_and_independent_selection_commute() {
        // The surprising pair from Theorem 2's proof sketch.
        let s = sheet();
        let agg = AlgebraOp::Aggregate {
            func: AggFunc::Avg,
            column: "Price".into(),
            level: 1,
        };
        assert!(may_commute(&agg, &sel("Year", 2006), &s));
    }

    #[test]
    fn projection_conflicts_with_selection_on_same_column() {
        let s = sheet();
        let p = AlgebraOp::Project {
            column: "Price".into(),
        };
        assert!(!may_commute(&p, &sel("Price", 16000), &s));
        // but projection of an unrelated column commutes
        let p2 = AlgebraOp::Project {
            column: "Mileage".into(),
        };
        assert!(may_commute(&p2, &sel("Price", 16000), &s));
    }

    #[test]
    fn two_aggregates_with_same_generated_name_conflict() {
        let s = sheet();
        let a = AlgebraOp::Aggregate {
            func: AggFunc::Avg,
            column: "Price".into(),
            level: 1,
        };
        assert!(!may_commute(&a, &a.clone(), &s));
        let b = AlgebraOp::Aggregate {
            func: AggFunc::Max,
            column: "Price".into(),
            level: 1,
        };
        assert!(may_commute(&a, &b, &s));
    }

    #[test]
    fn grouping_and_ordering_do_not_commute() {
        let s = sheet();
        let g = AlgebraOp::Group {
            basis: vec!["Model".into()],
            order: Direction::Asc,
        };
        let o = AlgebraOp::Order {
            attribute: "Price".into(),
            order: Direction::Asc,
            level: 1,
        };
        assert!(!may_commute(&g, &o, &s));
    }

    #[test]
    fn grouping_commutes_with_dedup_and_selection() {
        let s = sheet();
        let g = AlgebraOp::Group {
            basis: vec!["Model".into()],
            order: Direction::Asc,
        };
        assert!(may_commute(&g, &AlgebraOp::Dedup, &s));
        assert!(may_commute(&g, &sel("Price", 16000), &s));
    }

    #[test]
    fn aggregate_needing_new_level_is_preceded_by_group() {
        let s = sheet();
        let g = AlgebraOp::Group {
            basis: vec!["Model".into()],
            order: Direction::Asc,
        };
        let a = AlgebraOp::Aggregate {
            func: AggFunc::Avg,
            column: "Price".into(),
            level: 2,
        };
        assert!(!may_commute(&g, &a, &s));
        let sg = g.signature(&s);
        let sa = a.signature(&s);
        assert!(precedes(&sg, &sa));
    }

    #[test]
    fn ordering_that_destroys_levels_conflicts_with_deep_aggregate() {
        let mut s = sheet();
        s.group(&["Model"], Direction::Asc).unwrap();
        s.group(&["Model", "Year"], Direction::Asc).unwrap();
        let destroyer = AlgebraOp::Order {
            attribute: "Mileage".into(),
            order: Direction::Asc,
            level: 2,
        };
        let deep_agg = AlgebraOp::Aggregate {
            func: AggFunc::Avg,
            column: "Price".into(),
            level: 3,
        };
        assert!(!may_commute(&destroyer, &deep_agg, &s));
        // a level-1 aggregate is untouched by the destruction
        let shallow = AlgebraOp::Aggregate {
            func: AggFunc::Avg,
            column: "Price".into(),
            level: 1,
        };
        assert!(may_commute(&destroyer, &shallow, &s));
    }

    #[test]
    fn apply_executes_each_variant() {
        let mut s = sheet();
        for op in [
            AlgebraOp::Group {
                basis: vec!["Model".into()],
                order: Direction::Asc,
            },
            AlgebraOp::Order {
                attribute: "Price".into(),
                order: Direction::Asc,
                level: 2,
            },
            sel("Price", 20000),
            AlgebraOp::Aggregate {
                func: AggFunc::Avg,
                column: "Price".into(),
                level: 2,
            },
            AlgebraOp::Formula {
                name: Some("Delta".into()),
                expr: Expr::col("Price").sub(Expr::col("Avg_Price")),
            },
            AlgebraOp::Dedup,
            AlgebraOp::Project {
                column: "Mileage".into(),
            },
            AlgebraOp::Reinstate {
                column: "Mileage".into(),
            },
        ] {
            op.apply(&mut s)
                .unwrap_or_else(|e| panic!("{op} failed: {e}"));
        }
        assert_eq!(s.evaluate_now().unwrap().len(), 9);
    }

    #[test]
    fn display_uses_algebra_symbols() {
        assert_eq!(sel("Price", 1).to_string(), "σ[Price < 1]");
        assert_eq!(AlgebraOp::Dedup.to_string(), "δ[DE]");
    }
}
