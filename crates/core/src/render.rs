//! Text rendering of evaluated spreadsheets — the continuously-presented
//! data view of a direct-manipulation interface, in plain text.
//!
//! The plain renderer reproduces the look of the paper's tables (I–V);
//! the tree renderer makes the recursive grouping explicit with
//! indentation, and the markdown renderer serves documentation and the
//! `repro` harness.

use crate::eval::Derived;
use crate::tree::GroupNode;
use ssa_relation::Value;

/// Column-aligned plain-text table of the visible spreadsheet, with a
/// blank separator line between level-2 groups (when grouping exists).
pub fn render_table(view: &Derived) -> String {
    let cols = &view.visible;
    let idx: Vec<usize> = cols
        .iter()
        .map(|c| {
            view.data
                .schema()
                .index_of(c)
                .expect("visible column exists")
        })
        .collect();

    let mut widths: Vec<usize> = cols.iter().map(|c| c.len()).collect();
    let cell = |r: usize, k: usize| -> String { format_value(view.data.rows()[r].get(idx[k])) };
    for r in 0..view.data.len() {
        for (k, w) in widths.iter_mut().enumerate() {
            *w = (*w).max(cell(r, k).len());
        }
    }

    let mut out = String::new();
    let mut line = String::new();
    for (k, c) in cols.iter().enumerate() {
        line.push_str(&format!("| {:width$} ", c, width = widths[k]));
    }
    line.push('|');
    out.push_str(&line);
    out.push('\n');
    let mut rule = String::new();
    for w in &widths {
        rule.push_str(&format!("|{}", "-".repeat(w + 2)));
    }
    rule.push('|');
    out.push_str(&rule);
    out.push('\n');

    // Row blocks follow the level-2 groups when present.
    let blocks: Vec<std::ops::Range<usize>> = if view.tree.root.children.is_empty() {
        vec![view.tree.root.rows.iter()]
    } else {
        view.tree
            .root
            .children
            .iter()
            .map(|g| g.rows.iter())
            .collect()
    };
    for (bi, block) in blocks.iter().enumerate() {
        if bi > 0 {
            out.push_str(&rule);
            out.push('\n');
        }
        for r in block.clone() {
            let mut line = String::new();
            for (k, width) in widths.iter().enumerate() {
                line.push_str(&format!("| {:width$} ", cell(r, k), width = width));
            }
            line.push('|');
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// GitHub-flavoured markdown table (no group separators).
pub fn render_markdown(view: &Derived) -> String {
    let cols = &view.visible;
    let idx: Vec<usize> = cols
        .iter()
        .map(|c| {
            view.data
                .schema()
                .index_of(c)
                .expect("visible column exists")
        })
        .collect();
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", cols.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        cols.iter().map(|_| "---|").collect::<String>()
    ));
    for r in 0..view.data.len() {
        let fields: Vec<String> = idx
            .iter()
            .map(|&i| format_value(view.data.rows()[r].get(i)))
            .collect();
        out.push_str(&format!("| {} |\n", fields.join(" | ")));
    }
    out
}

/// Indented group-tree rendering: each group header shows its key, each
/// leaf row its visible values.
pub fn render_tree(view: &Derived) -> String {
    fn rec(view: &Derived, node: &GroupNode, out: &mut String) {
        let indent = "  ".repeat(node.level.saturating_sub(1));
        if !node.key.is_empty() {
            let key = node
                .key
                .iter()
                .map(|(a, v)| format!("{a}={}", format_value(v)))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("{indent}[{key}] ({} rows)\n", node.rows.len()));
        }
        if node.children.is_empty() {
            let idx: Vec<usize> = view
                .visible
                .iter()
                .map(|c| {
                    view.data
                        .schema()
                        .index_of(c)
                        .expect("visible column exists")
                })
                .collect();
            for r in node.rows.iter() {
                let fields: Vec<String> = idx
                    .iter()
                    .map(|&i| format_value(view.data.rows()[r].get(i)))
                    .collect();
                out.push_str(&format!("{indent}  {}\n", fields.join(", ")));
            }
        } else {
            for c in &node.children {
                rec(view, c, out);
            }
        }
    }
    let mut out = String::new();
    rec(view, &view.tree.root, &mut out);
    out
}

/// Render a value the way the paper's tables do: NULL as empty, floats
/// trimmed.
pub fn format_value(v: &Value) -> String {
    match v {
        Value::Float(f) if f.fract().abs() > 1e-9 => format!("{f:.2}"),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::used_cars;
    use crate::sheet::Spreadsheet;
    use crate::spec::Direction;
    use ssa_relation::AggFunc;

    fn grouped_view() -> Derived {
        let mut s = Spreadsheet::over(used_cars());
        s.group(&["Model"], Direction::Desc).unwrap();
        s.group(&["Model", "Year"], Direction::Asc).unwrap();
        s.order("Price", Direction::Asc, 3).unwrap();
        s.evaluate_now().unwrap()
    }

    #[test]
    fn table_contains_all_rows_and_headers() {
        let t = render_table(&grouped_view());
        assert!(t.contains("| ID "));
        assert!(t.contains("Jetta"));
        assert_eq!(t.lines().filter(|l| l.contains("Jetta")).count(), 6);
        // one separator between the two Model groups + header rule
        assert!(
            t.lines()
                .filter(|l| l.starts_with("|--") || l.starts_with("|-"))
                .count()
                >= 2
        );
    }

    #[test]
    fn markdown_has_header_and_rows() {
        let m = render_markdown(&grouped_view());
        assert!(m.starts_with("| ID | Model |"));
        assert_eq!(m.lines().count(), 2 + 9);
    }

    #[test]
    fn tree_rendering_shows_group_keys() {
        let t = render_tree(&grouped_view());
        assert!(t.contains("[Model=Jetta] (6 rows)"));
        assert!(t.contains("[Model=Jetta, Year=2005] (3 rows)"));
    }

    #[test]
    fn ungrouped_sheet_renders_single_block() {
        let s = Spreadsheet::over(used_cars());
        let v = s.evaluate_now().unwrap();
        let t = render_table(&v);
        assert_eq!(t.lines().count(), 2 + 9);
    }

    #[test]
    fn aggregate_column_renders_rounded() {
        let mut s = Spreadsheet::over(used_cars());
        s.aggregate(AggFunc::Avg, "Price", 1).unwrap();
        let v = s.evaluate_now().unwrap();
        let t = render_table(&v);
        assert!(t.contains("15833.33"), "got:\n{t}");
    }

    #[test]
    fn format_value_cases() {
        assert_eq!(format_value(&Value::Null), "");
        assert_eq!(format_value(&Value::Int(5)), "5");
        assert_eq!(format_value(&Value::Float(1.5)), "1.50");
        assert_eq!(format_value(&Value::Float(2.0)), "2.0");
    }
}
