//! Replicated operation log: the spreadsheet algebra as an
//! operation-based CRDT.
//!
//! The paper already does most of the work. Query state is an *unordered*
//! set of operator instances (Sec. IV): Theorem 2 says unary operators
//! commute outside explicit non-commutativity points, and Theorem 3 says
//! any modification of a past operator is equivalent to rewriting history
//! and replaying. Those two theorems are exactly the obligations of a
//! convergent replicated log:
//!
//! * every committed mutation becomes an [`OpEvent`] carrying a replica
//!   id, a per-replica sequence number, and a version vector;
//! * replicas exchange events in any order, any number of times;
//! * a replica's sheet is always the **pure function** of its genesis
//!   snapshot and its event *set*, replayed in one canonical total order
//!   — `(version-vector weight, replica id, seq)` — which respects
//!   causality (an event's vector covers everything its author had seen,
//!   so causes always weigh strictly less than effects).
//!
//! Merging is therefore: union the event sets, and reconcile. Three paths,
//! cheapest first:
//!
//! 1. **Fast-forward** — all incoming events sort after the local tail:
//!    apply them in order (replay-from-genesis would do the same).
//! 2. **Direct commute** (Theorem 2) — incoming events are all σ and the
//!    local events they sort *before* are all selection-family and none
//!    were skipped: selections are kept sorted by id
//!    ([`crate::state::QueryState::add_selection_with_id`]), so applying
//!    out of order lands bitwise-identical state.
//! 3. **History rewrite** (Theorem 3) — anything else: restore the
//!    genesis snapshot and replay the whole log in canonical order.
//!
//! An event whose operator fails to apply (e.g. a selection on a column a
//! causally-concurrent event renamed away) is **deterministically
//! skipped**: the failure is a pure function of the replayed state, so
//! every replica skips the same events and still converges. Binary
//! operators (product/join/union/difference) are points of
//! non-commutativity in the paper and are deliberately *not* replicated
//! ops — they seal history, which is what [`Replica::mark_compacted`]
//! models explicitly.

use crate::error::{Result, SheetError};
use crate::persist::{
    self, agg_func_from_name, expr_from_json, expr_to_json, value_from_json, value_to_json, Json,
};
use crate::sheet::{Spreadsheet, StoredSheet};
use crate::spec::Direction;
use crate::state::QueryState;
use ssa_relation::{AggFunc, Expr, Relation, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Replica ids are packed into the upper bits of selection ids, so they
/// are capped at 16 bits; sequence numbers get the remaining 48.
pub const MAX_REPLICA_ID: u64 = (1 << 16) - 1;
const SEQ_BITS: u64 = 48;
const MAX_SEQ: u64 = (1 << SEQ_BITS) - 1;

fn bad_event(detail: impl std::fmt::Display) -> SheetError {
    SheetError::Persist {
        message: format!("op event: {detail}"),
    }
}

// ---------------------------------------------------------------------------
// Event identity and version vectors
// ---------------------------------------------------------------------------

/// Globally unique identity of one event: which replica created it, and
/// its position in that replica's local sequence (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    pub replica: u64,
    pub seq: u64,
}

impl EventId {
    /// Pack into one u64 — used as the selection id for σ events, so a
    /// selection's id is a pure function of the event that created it
    /// and all replicas agree on it without coordination.
    pub fn packed(self) -> u64 {
        (self.replica << SEQ_BITS) | self.seq
    }
}

/// Map from replica id to the highest sequence number seen from it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionVector {
    entries: BTreeMap<u64, u64>,
}

impl VersionVector {
    pub fn new() -> VersionVector {
        VersionVector::default()
    }

    pub fn get(&self, replica: u64) -> u64 {
        self.entries.get(&replica).copied().unwrap_or(0)
    }

    /// Whether this vector claims to have seen `id`.
    pub fn covers(&self, id: EventId) -> bool {
        self.get(id.replica) >= id.seq
    }

    /// Raise the entry for `id.replica` to at least `id.seq`.
    pub fn record(&mut self, id: EventId) {
        let e = self.entries.entry(id.replica).or_insert(0);
        *e = (*e).max(id.seq);
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VersionVector) {
        for (&r, &s) in &other.entries {
            let e = self.entries.entry(r).or_insert(0);
            *e = (*e).max(s);
        }
    }

    /// Pointwise ≥: everything `other` has seen, this vector has too.
    pub fn dominates(&self, other: &VersionVector) -> bool {
        other.entries.iter().all(|(&r, &s)| self.get(r) >= s)
    }

    /// Sum of all entries — the scalar spine of the canonical total
    /// order. Causality is respected because an event's vector covers
    /// its causes' vectors pointwise, and strictly exceeds them at the
    /// author's own entry.
    pub fn weight(&self) -> u64 {
        self.entries.values().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() || self.entries.values().all(|&s| s == 0)
    }

    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.entries.iter().map(|(&r, &s)| (r, s))
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(r, s)| Json::Arr(vec![Json::num(r), Json::num(s)]))
                .collect(),
        )
    }

    pub(crate) fn from_json(j: &Json) -> Result<VersionVector> {
        let mut vv = VersionVector::new();
        for pair in j.arr_value()? {
            let pair = pair.arr_value()?;
            if pair.len() != 2 {
                return Err(bad_event(
                    "version vector entry is not a [replica, seq] pair",
                ));
            }
            let (r, s) = (pair[0].u64_value()?, pair[1].u64_value()?);
            vv.record(EventId { replica: r, seq: s });
        }
        Ok(vv)
    }
}

/// Canonical total-order key of an event: `(vv weight, replica, seq)`.
pub type EventKey = (u64, u64, u64);

// ---------------------------------------------------------------------------
// Replicated operators
// ---------------------------------------------------------------------------

/// One replicable mutation: a base-data delta (Sec. §14's streaming
/// deltas) or a unary query-state operator (Sec. III). Binary operators
/// are excluded — they are points of non-commutativity and seal history
/// via compaction instead.
#[derive(Debug, Clone, PartialEq)]
pub enum SheetOp {
    AppendRows {
        rows: Vec<Tuple>,
    },
    DeleteRows {
        ids: Vec<u32>,
    },
    UpdateCell {
        row: u32,
        column: String,
        value: Value,
    },
    Rename {
        from: String,
        to: String,
    },
    /// σ — the new selection's id is the creating event's packed id.
    Select {
        predicate: Expr,
    },
    /// Query modification: swap the predicate of selection `target`.
    ReplaceSelection {
        target: u64,
        predicate: Expr,
    },
    RemoveSelection {
        target: u64,
    },
    /// Extend the grouping basis (relative, like `group_add`).
    Group {
        attributes: Vec<String>,
        direction: Direction,
    },
    Regroup {
        attributes: Vec<String>,
        direction: Direction,
    },
    Ungroup,
    Order {
        attribute: String,
        direction: Direction,
        level: usize,
    },
    ProjectOut {
        column: String,
    },
    Reinstate {
        column: String,
    },
    /// The aggregate's column name is derived deterministically from the
    /// query state at its canonical position, so replicas agree on it.
    Aggregate {
        func: AggFunc,
        column: String,
        level: usize,
    },
    Formula {
        name: String,
        expr: Expr,
    },
    RemoveComputed {
        name: String,
    },
    Dedup,
}

impl SheetOp {
    /// Short tag used in the wire encoding and in diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            SheetOp::AppendRows { .. } => "append",
            SheetOp::DeleteRows { .. } => "delete",
            SheetOp::UpdateCell { .. } => "setcell",
            SheetOp::Rename { .. } => "rename",
            SheetOp::Select { .. } => "select",
            SheetOp::ReplaceSelection { .. } => "replace-selection",
            SheetOp::RemoveSelection { .. } => "remove-selection",
            SheetOp::Group { .. } => "group",
            SheetOp::Regroup { .. } => "regroup",
            SheetOp::Ungroup => "ungroup",
            SheetOp::Order { .. } => "order",
            SheetOp::ProjectOut { .. } => "project-out",
            SheetOp::Reinstate { .. } => "reinstate",
            SheetOp::Aggregate { .. } => "aggregate",
            SheetOp::Formula { .. } => "formula",
            SheetOp::RemoveComputed { .. } => "remove-computed",
            SheetOp::Dedup => "dedup",
        }
    }

    /// Ops that only touch the selection set. This is the Theorem-2
    /// σσ′-commuting family the direct merge path reasons about: none of
    /// them changes the schema, grouping, or base data.
    pub fn is_selection_family(&self) -> bool {
        matches!(
            self,
            SheetOp::Select { .. }
                | SheetOp::ReplaceSelection { .. }
                | SheetOp::RemoveSelection { .. }
        )
    }

    /// Apply to a sheet on behalf of event `id`. Errors are the
    /// operator's own (unknown column, bad level, ...) and are
    /// deterministic functions of the sheet state.
    pub fn apply(&self, sheet: &mut Spreadsheet, id: EventId) -> Result<()> {
        match self {
            SheetOp::AppendRows { rows } => sheet.append_rows(rows.clone()).map(|_| ()),
            SheetOp::DeleteRows { ids } => sheet.delete_rows(ids).map(|_| ()),
            SheetOp::UpdateCell { row, column, value } => {
                sheet.update_cell(*row, column, *value).map(|_| ())
            }
            SheetOp::Rename { from, to } => sheet.rename(from, to),
            SheetOp::Select { predicate } => sheet
                .select_with_id(id.packed(), predicate.clone())
                .map(|_| ()),
            SheetOp::ReplaceSelection { target, predicate } => {
                sheet.replace_selection(*target, predicate.clone())
            }
            SheetOp::RemoveSelection { target } => sheet.remove_selection(*target),
            SheetOp::Group {
                attributes,
                direction,
            } => {
                let attrs: Vec<&str> = attributes.iter().map(String::as_str).collect();
                sheet.group_add(&attrs, *direction)
            }
            SheetOp::Regroup {
                attributes,
                direction,
            } => {
                let attrs: Vec<&str> = attributes.iter().map(String::as_str).collect();
                sheet.regroup(&attrs, *direction)
            }
            SheetOp::Ungroup => sheet.ungroup(),
            SheetOp::Order {
                attribute,
                direction,
                level,
            } => sheet.order(attribute, *direction, *level),
            SheetOp::ProjectOut { column } => sheet.project_out(column),
            SheetOp::Reinstate { column } => sheet.reinstate(column),
            SheetOp::Aggregate {
                func,
                column,
                level,
            } => sheet.aggregate(*func, column, *level).map(|_| ()),
            SheetOp::Formula { name, expr } => sheet.formula(Some(name), expr.clone()).map(|_| ()),
            SheetOp::RemoveComputed { name } => sheet.remove_computed(name),
            SheetOp::Dedup => sheet.dedup(),
        }
    }

    pub(crate) fn to_json(&self) -> Result<Json> {
        let tag = |fields: Vec<(&str, Json)>| {
            let mut all = vec![("t", Json::Str(self.kind().to_string()))];
            all.extend(fields);
            Json::obj(all)
        };
        Ok(match self {
            SheetOp::AppendRows { rows } => tag(vec![(
                "rows",
                Json::Arr(
                    rows.iter()
                        .map(|t| Json::Arr(t.values().iter().map(value_to_json).collect()))
                        .collect(),
                ),
            )]),
            SheetOp::DeleteRows { ids } => tag(vec![(
                "ids",
                Json::Arr(ids.iter().map(|&i| Json::num(i)).collect()),
            )]),
            SheetOp::UpdateCell { row, column, value } => tag(vec![
                ("row", Json::num(row)),
                ("col", Json::Str(column.clone())),
                ("value", value_to_json(value)),
            ]),
            SheetOp::Rename { from, to } => tag(vec![
                ("from", Json::Str(from.clone())),
                ("to", Json::Str(to.clone())),
            ]),
            SheetOp::Select { predicate } => tag(vec![("pred", expr_to_json(predicate))]),
            SheetOp::ReplaceSelection { target, predicate } => tag(vec![
                ("target", Json::num(target)),
                ("pred", expr_to_json(predicate)),
            ]),
            SheetOp::RemoveSelection { target } => tag(vec![("target", Json::num(target))]),
            SheetOp::Group {
                attributes,
                direction,
            }
            | SheetOp::Regroup {
                attributes,
                direction,
            } => tag(vec![
                (
                    "attrs",
                    Json::Arr(attributes.iter().map(|a| Json::Str(a.clone())).collect()),
                ),
                ("dir", Json::Str(direction.to_string())),
            ]),
            SheetOp::Ungroup | SheetOp::Dedup => tag(vec![]),
            SheetOp::Order {
                attribute,
                direction,
                level,
            } => tag(vec![
                ("attr", Json::Str(attribute.clone())),
                ("dir", Json::Str(direction.to_string())),
                ("level", Json::num(level)),
            ]),
            SheetOp::ProjectOut { column } | SheetOp::Reinstate { column } => {
                tag(vec![("col", Json::Str(column.clone()))])
            }
            SheetOp::Aggregate {
                func,
                column,
                level,
            } => tag(vec![
                ("func", Json::Str(func.short_name().to_string())),
                ("col", Json::Str(column.clone())),
                ("level", Json::num(level)),
            ]),
            SheetOp::Formula { name, expr } => tag(vec![
                ("name", Json::Str(name.clone())),
                ("expr", expr_to_json(expr)),
            ]),
            SheetOp::RemoveComputed { name } => tag(vec![("name", Json::Str(name.clone()))]),
        })
    }

    pub(crate) fn from_json(j: &Json) -> Result<SheetOp> {
        let tag = j.field("t")?.str_value()?;
        let s = |key: &str| -> Result<String> { Ok(j.field(key)?.str_value()?.to_string()) };
        let n = |key: &str| -> Result<u64> { j.field(key)?.u64_value() };
        let dir = |key: &str| -> Result<Direction> { parse_direction(j.field(key)?.str_value()?) };
        let attrs = |key: &str| -> Result<Vec<String>> {
            j.field(key)?
                .arr_value()?
                .iter()
                .map(|a| Ok(a.str_value()?.to_string()))
                .collect()
        };
        Ok(match tag {
            "append" => {
                let mut rows = Vec::new();
                for row in j.field("rows")?.arr_value()? {
                    let values: Result<Vec<Value>> =
                        row.arr_value()?.iter().map(value_from_json).collect();
                    rows.push(Tuple::new(values?));
                }
                SheetOp::AppendRows { rows }
            }
            "delete" => {
                let ids: Result<Vec<u32>> = j
                    .field("ids")?
                    .arr_value()?
                    .iter()
                    .map(|i| {
                        u32::try_from(i.u64_value()?).map_err(|_| bad_event("row id overflows u32"))
                    })
                    .collect();
                SheetOp::DeleteRows { ids: ids? }
            }
            "setcell" => SheetOp::UpdateCell {
                row: u32::try_from(n("row")?).map_err(|_| bad_event("row id overflows u32"))?,
                column: s("col")?,
                value: value_from_json(j.field("value")?)?,
            },
            "rename" => SheetOp::Rename {
                from: s("from")?,
                to: s("to")?,
            },
            "select" => SheetOp::Select {
                predicate: expr_from_json(j.field("pred")?)?,
            },
            "replace-selection" => SheetOp::ReplaceSelection {
                target: n("target")?,
                predicate: expr_from_json(j.field("pred")?)?,
            },
            "remove-selection" => SheetOp::RemoveSelection {
                target: n("target")?,
            },
            "group" => SheetOp::Group {
                attributes: attrs("attrs")?,
                direction: dir("dir")?,
            },
            "regroup" => SheetOp::Regroup {
                attributes: attrs("attrs")?,
                direction: dir("dir")?,
            },
            "ungroup" => SheetOp::Ungroup,
            "order" => SheetOp::Order {
                attribute: s("attr")?,
                direction: dir("dir")?,
                level: n("level")? as usize,
            },
            "project-out" => SheetOp::ProjectOut { column: s("col")? },
            "reinstate" => SheetOp::Reinstate { column: s("col")? },
            "aggregate" => SheetOp::Aggregate {
                func: agg_func_from_name(j.field("func")?.str_value()?)?,
                column: s("col")?,
                level: n("level")? as usize,
            },
            "formula" => SheetOp::Formula {
                name: s("name")?,
                expr: expr_from_json(j.field("expr")?)?,
            },
            "remove-computed" => SheetOp::RemoveComputed { name: s("name")? },
            "dedup" => SheetOp::Dedup,
            other => return Err(bad_event(format!("unknown op tag {other:?}"))),
        })
    }

    /// Parse one textual op command, the grammar of the server's
    /// `/sheets/{name}/ops` endpoint (one command per line):
    ///
    /// ```text
    /// select <expr>                      replace <sel-id> <expr>
    /// unselect <sel-id>                  group <a,b,...> [asc|desc]
    /// regroup <a,b,...> [asc|desc]       ungroup
    /// order <attr> <asc|desc> <level>    hide <col>
    /// show <col>                         agg <func> <col> <level>
    /// formula <name> = <expr>            unformula <name>
    /// dedup                              rename <from> <to>
    /// ```
    pub fn parse_command(line: &str) -> Result<SheetOp> {
        let line = line.trim();
        let (word, rest) = match line.split_once(char::is_whitespace) {
            Some((w, r)) => (w, r.trim()),
            None => (line, ""),
        };
        let bad = |detail: String| SheetError::Persist { message: detail };
        let need = |what: &str| bad(format!("op `{word}` needs {what}"));
        let grouping = |rest: &str| -> Result<(Vec<String>, Direction)> {
            let (attrs, dir) = match rest.rsplit_once(char::is_whitespace) {
                Some((a, d)) if d.eq_ignore_ascii_case("asc") || d.eq_ignore_ascii_case("desc") => {
                    (a.trim(), parse_direction(d)?)
                }
                _ => (rest, Direction::Asc),
            };
            let attrs: Vec<String> = attrs
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            if attrs.is_empty() {
                return Err(bad_event("grouping needs at least one attribute"));
            }
            Ok((attrs, dir))
        };
        match word.to_ascii_lowercase().as_str() {
            "select" => Ok(SheetOp::Select {
                predicate: ssa_relation::expr_parse::parse_expr(rest)?,
            }),
            "replace" => {
                let (id, expr) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| need("<sel-id> <expr>"))?;
                Ok(SheetOp::ReplaceSelection {
                    target: id
                        .parse()
                        .map_err(|_| bad(format!("bad selection id {id:?}")))?,
                    predicate: ssa_relation::expr_parse::parse_expr(expr)?,
                })
            }
            "unselect" => Ok(SheetOp::RemoveSelection {
                target: rest
                    .parse()
                    .map_err(|_| bad(format!("bad selection id {rest:?}")))?,
            }),
            "group" => {
                let (attributes, direction) = grouping(rest)?;
                Ok(SheetOp::Group {
                    attributes,
                    direction,
                })
            }
            "regroup" => {
                let (attributes, direction) = grouping(rest)?;
                Ok(SheetOp::Regroup {
                    attributes,
                    direction,
                })
            }
            "ungroup" => Ok(SheetOp::Ungroup),
            "order" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let [attr, dir, level] = parts.as_slice() else {
                    return Err(need("<attr> <asc|desc> <level>"));
                };
                Ok(SheetOp::Order {
                    attribute: attr.to_string(),
                    direction: parse_direction(dir)?,
                    level: level
                        .parse()
                        .map_err(|_| bad(format!("bad level {level:?}")))?,
                })
            }
            "hide" => Ok(SheetOp::ProjectOut {
                column: rest.to_string(),
            }),
            "show" => Ok(SheetOp::Reinstate {
                column: rest.to_string(),
            }),
            "agg" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let [func, col, level] = parts.as_slice() else {
                    return Err(need("<func> <col> <level>"));
                };
                Ok(SheetOp::Aggregate {
                    func: ssa_relation::agg::parse_agg_func(func)?,
                    column: col.to_string(),
                    level: level
                        .parse()
                        .map_err(|_| bad(format!("bad level {level:?}")))?,
                })
            }
            "formula" => {
                let (name, expr) = rest
                    .split_once('=')
                    .ok_or_else(|| need("<name> = <expr>"))?;
                Ok(SheetOp::Formula {
                    name: name.trim().to_string(),
                    expr: ssa_relation::expr_parse::parse_expr(expr)?,
                })
            }
            "unformula" => Ok(SheetOp::RemoveComputed {
                name: rest.to_string(),
            }),
            "dedup" => Ok(SheetOp::Dedup),
            "rename" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let [from, to] = parts.as_slice() else {
                    return Err(need("<from> <to>"));
                };
                Ok(SheetOp::Rename {
                    from: from.to_string(),
                    to: to.to_string(),
                })
            }
            other => Err(bad(format!("unknown op command {other:?}"))),
        }
    }
}

fn parse_direction(s: &str) -> Result<Direction> {
    if s.eq_ignore_ascii_case("asc") {
        Ok(Direction::Asc)
    } else if s.eq_ignore_ascii_case("desc") {
        Ok(Direction::Desc)
    } else {
        Err(bad_event(format!("bad direction {s:?}")))
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One committed mutation, stamped with its origin and causal context.
#[derive(Debug, Clone, PartialEq)]
pub struct OpEvent {
    pub replica: u64,
    pub seq: u64,
    /// Everything the author had seen when committing, *including* this
    /// event itself.
    pub vv: VersionVector,
    pub op: SheetOp,
}

impl OpEvent {
    pub fn id(&self) -> EventId {
        EventId {
            replica: self.replica,
            seq: self.seq,
        }
    }

    /// Canonical total-order key. Causality-respecting: if `a` happened
    /// before `b`, then `b.vv` covers `a.vv` and exceeds it at `b`'s own
    /// entry, so `a.key() < b.key()`. Concurrent events tie-break by
    /// `(replica, seq)`, which every replica computes identically.
    pub fn key(&self) -> EventKey {
        (self.vv.weight(), self.replica, self.seq)
    }

    pub(crate) fn to_json(&self) -> Result<Json> {
        Ok(Json::obj(vec![
            ("replica", Json::num(self.replica)),
            ("seq", Json::num(self.seq)),
            ("vv", self.vv.to_json()),
            ("op", self.op.to_json()?),
        ]))
    }

    pub(crate) fn from_json(j: &Json) -> Result<OpEvent> {
        let event = OpEvent {
            replica: j.field("replica")?.u64_value()?,
            seq: j.field("seq")?.u64_value()?,
            vv: VersionVector::from_json(j.field("vv")?)?,
            op: SheetOp::from_json(j.field("op")?)?,
        };
        if event.replica > MAX_REPLICA_ID || event.seq == 0 || event.seq > MAX_SEQ {
            return Err(bad_event(format!(
                "event identity out of range (replica {}, seq {})",
                event.replica, event.seq
            )));
        }
        if !event.vv.covers(event.id()) {
            return Err(bad_event("event's version vector does not cover itself"));
        }
        Ok(event)
    }

    /// Wire/WAL encoding (one JSON object).
    pub fn encode(&self) -> Result<String> {
        Ok(self.to_json()?.render())
    }

    pub fn decode(text: &str) -> Result<OpEvent> {
        OpEvent::from_json(&Json::parse(text)?)
    }
}

/// Encode a sync exchange payload: the sender's contiguous frontier plus
/// the events it believes the receiver lacks.
pub fn encode_sync(vv: &VersionVector, events: &[OpEvent]) -> Result<String> {
    let events: Result<Vec<Json>> = events.iter().map(OpEvent::to_json).collect();
    Ok(Json::obj(vec![("vv", vv.to_json()), ("events", Json::Arr(events?))]).render())
}

pub fn decode_sync(text: &str) -> Result<(VersionVector, Vec<OpEvent>)> {
    let j = Json::parse(text)?;
    let vv = VersionVector::from_json(j.field("vv")?)?;
    let events: Result<Vec<OpEvent>> = j
        .field("events")?
        .arr_value()?
        .iter()
        .map(OpEvent::from_json)
        .collect();
    Ok((vv, events?))
}

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

/// Which reconciliation path a merge took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePath {
    /// Nothing new arrived.
    Empty,
    /// All fresh events sorted after the local tail.
    FastForward,
    /// Theorem 2: fresh σ events commuted directly into place.
    DirectCommute,
    /// Theorem 3: history rewritten and replayed from genesis.
    Rewritten,
}

/// What a merge did, including the events actually adopted (in canonical
/// order) — the durable layer appends exactly these to the WAL.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    pub path: MergePath,
    pub added: Vec<OpEvent>,
    pub duplicates: usize,
    /// Events in the log (old and new) whose operator currently fails to
    /// apply and is deterministically skipped.
    pub skipped: usize,
}

/// One replica of a replicated sheet: a genesis snapshot, the event log
/// in canonical order, and the materialized [`Spreadsheet`] those two
/// determine.
pub struct Replica {
    id: u64,
    sheet: Spreadsheet,
    genesis_base: Arc<Relation>,
    genesis_state: QueryState,
    /// Canonical order (sorted by [`OpEvent::key`]).
    log: Vec<OpEvent>,
    /// Identities of everything in `log` (events may arrive with gaps,
    /// so dedup needs the exact set, not a vector frontier).
    known: BTreeSet<EventId>,
    /// Max sequence seen per replica (may cover gaps).
    seen: VersionVector,
    /// Events at or below this frontier are baked into the genesis
    /// snapshot and no longer replayable.
    compacted_vv: VersionVector,
    frontier: EventKey,
    /// Keys of logged events currently skipped (apply failed).
    skipped: BTreeSet<EventKey>,
}

impl Replica {
    /// A fresh replica over genesis data with an empty query state.
    pub fn new(id: u64, base: Relation) -> Result<Replica> {
        if id > MAX_REPLICA_ID {
            return Err(SheetError::Internal {
                detail: format!("replica id {id} exceeds {MAX_REPLICA_ID}"),
            });
        }
        let sheet = Spreadsheet::over(base);
        let genesis_base = sheet.base_arc();
        let genesis_state = sheet.state().clone();
        Ok(Replica {
            id,
            sheet,
            genesis_base,
            genesis_state,
            log: Vec::new(),
            known: BTreeSet::new(),
            seen: VersionVector::new(),
            compacted_vv: VersionVector::new(),
            frontier: (0, 0, 0),
            skipped: BTreeSet::new(),
        })
    }

    /// Rebuild a replica whose genesis is a compaction snapshot:
    /// `compacted_vv` covers every event baked into `stored`, and
    /// `frontier` is the canonical key of the last such event.
    pub fn recover(
        id: u64,
        stored: &StoredSheet,
        compacted_vv: VersionVector,
        frontier: EventKey,
    ) -> Result<Replica> {
        if id > MAX_REPLICA_ID {
            return Err(SheetError::Internal {
                detail: format!("replica id {id} exceeds {MAX_REPLICA_ID}"),
            });
        }
        let sheet = Spreadsheet::open(stored)?;
        let genesis_base = sheet.base_arc();
        let genesis_state = sheet.state().clone();
        let seen = compacted_vv.clone();
        Ok(Replica {
            id,
            sheet,
            genesis_base,
            genesis_state,
            log: Vec::new(),
            known: BTreeSet::new(),
            seen,
            compacted_vv,
            frontier,
            skipped: BTreeSet::new(),
        })
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    /// The materialized sheet (always equal to replaying `log` over the
    /// genesis snapshot).
    pub fn sheet(&self) -> &Spreadsheet {
        &self.sheet
    }

    /// Evaluate the sheet's current view (delegates to
    /// [`Spreadsheet::view`]; needs `&mut` for the evaluation cache).
    pub fn view(&mut self) -> Result<&crate::eval::Derived> {
        self.sheet.view()
    }

    pub fn log(&self) -> &[OpEvent] {
        &self.log
    }

    pub fn compacted_vv(&self) -> &VersionVector {
        &self.compacted_vv
    }

    pub fn frontier(&self) -> EventKey {
        self.frontier
    }

    pub fn skipped_count(&self) -> usize {
        self.skipped.len()
    }

    /// Per-replica *contiguous* frontier: for each replica, the largest
    /// `n` such that every event `1..=n` is held (counting compacted
    /// history). This — not `seen`, which may cover gaps — is what a
    /// peer may safely use to decide which events we lack.
    pub fn frontier_vv(&self) -> VersionVector {
        let mut vv = self.compacted_vv.clone();
        // Walk each replica's held sequence numbers upward from the
        // compacted bound; BTreeSet iteration gives them in order.
        for id in &self.known {
            if id.seq == vv.get(id.replica) + 1 {
                vv.record(*id);
            }
        }
        vv
    }

    /// Commit a local mutation: apply it to the sheet (errors propagate
    /// and no event is recorded), then log the event. The event's vector
    /// is everything this replica has seen, so it sorts after the entire
    /// current log.
    pub fn commit(&mut self, op: SheetOp) -> Result<OpEvent> {
        let seq = self.seen.get(self.id) + 1;
        if seq > MAX_SEQ {
            return Err(SheetError::Internal {
                detail: format!("replica {} exhausted its sequence space", self.id),
            });
        }
        let id = EventId {
            replica: self.id,
            seq,
        };
        let mut vv = self.seen.clone();
        vv.record(id);
        let event = OpEvent {
            replica: self.id,
            seq,
            vv,
            op,
        };
        event.op.apply(&mut self.sheet, id)?;
        self.adopt(event.clone());
        Ok(event)
    }

    /// Remove the most recent *local* commit (durable-layer rollback when
    /// the WAL append fails after the in-memory apply). Rebuilds by
    /// replay, so the error path stays simple and obviously correct.
    pub fn rollback_last(&mut self) -> Result<()> {
        let Some(pos) = self
            .log
            .iter()
            .rposition(|e| e.replica == self.id && e.seq == self.seen.get(self.id))
        else {
            return Err(SheetError::Internal {
                detail: "rollback_last: no local event to roll back".to_string(),
            });
        };
        let event = self.log.remove(pos);
        self.known.remove(&event.id());
        self.seen = self.recompute_seen();
        self.replay()
    }

    /// Drop a set of previously adopted events (durable-layer rollback
    /// when persisting a merge fails partway) and replay.
    pub fn retract(&mut self, ids: &[EventId]) -> Result<()> {
        let drop: BTreeSet<EventId> = ids.iter().copied().collect();
        self.log.retain(|e| !drop.contains(&e.id()));
        for id in &drop {
            self.known.remove(id);
        }
        self.seen = self.recompute_seen();
        self.replay()
    }

    fn recompute_seen(&self) -> VersionVector {
        let mut vv = self.compacted_vv.clone();
        for id in &self.known {
            vv.record(*id);
        }
        vv
    }

    /// Record an event as held: log (canonical position), identity set,
    /// seen-vector. Does not touch the sheet.
    fn adopt(&mut self, event: OpEvent) {
        self.known.insert(event.id());
        self.seen.record(event.id());
        let key = event.key();
        let pos = self.log.partition_point(|e| e.key() < key);
        self.log.insert(pos, event);
    }

    /// The events a peer with contiguous frontier `peer_vv` is missing.
    /// Errors with [`SheetError::BehindCompaction`] when some of those
    /// events are already baked into our genesis snapshot — the peer
    /// must re-seed from a snapshot instead.
    pub fn events_since(&self, peer_vv: &VersionVector) -> Result<Vec<OpEvent>> {
        if !peer_vv.dominates(&self.compacted_vv) {
            return Err(SheetError::BehindCompaction {
                detail: format!(
                    "peer frontier {:?} predates this replica's compaction {:?}",
                    peer_vv.iter().collect::<Vec<_>>(),
                    self.compacted_vv.iter().collect::<Vec<_>>(),
                ),
            });
        }
        Ok(self
            .log
            .iter()
            .filter(|e| !peer_vv.covers(e.id()))
            .cloned()
            .collect())
    }

    /// Merge a batch of events from a peer. Idempotent (duplicates are
    /// dropped by identity) and order-insensitive: whatever order batches
    /// arrive in, replicas holding the same event set hold bitwise-equal
    /// sheets.
    pub fn merge(&mut self, incoming: &[OpEvent]) -> Result<MergeOutcome> {
        ssa_relation::fault_check!("sync.merge");
        let mut duplicates = 0;
        let mut fresh: Vec<OpEvent> = Vec::new();
        let mut fresh_ids: BTreeSet<EventId> = BTreeSet::new();
        for event in incoming {
            let id = event.id();
            if event.replica > MAX_REPLICA_ID || event.seq == 0 || !event.vv.covers(id) {
                return Err(bad_event(format!(
                    "malformed event from replica {} seq {}",
                    event.replica, event.seq
                )));
            }
            if self.known.contains(&id) || self.compacted_vv.covers(id) || fresh_ids.contains(&id) {
                duplicates += 1;
                continue;
            }
            if event.key() <= self.frontier {
                return Err(SheetError::BehindCompaction {
                    detail: format!(
                        "event (replica {}, seq {}) sorts at or before the compaction frontier",
                        event.replica, event.seq
                    ),
                });
            }
            fresh_ids.insert(id);
            fresh.push(event.clone());
        }
        if fresh.is_empty() {
            return Ok(MergeOutcome {
                path: MergePath::Empty,
                added: fresh,
                duplicates,
                skipped: self.skipped.len(),
            });
        }
        fresh.sort_by_key(OpEvent::key);

        let tail = self.log.last().map(OpEvent::key);
        let path = if tail.is_none_or(|t| fresh[0].key() > t) {
            // Fast-forward: appending in canonical order is exactly what
            // a replay from genesis would do.
            for event in &fresh {
                self.apply_live(event);
            }
            MergePath::FastForward
        } else if self.commutes_directly(&fresh) {
            // Theorem 2: σ commutes with the selection-family suffix it
            // logically precedes; sorted-by-id selection storage makes
            // the out-of-order application bitwise identical.
            for event in &fresh {
                self.apply_live(event);
            }
            MergePath::DirectCommute
        } else {
            // Theorem 3: rewrite history — adopt everything, replay all.
            for event in &fresh {
                self.adopt(event.clone());
            }
            self.replay()?;
            MergePath::Rewritten
        };
        Ok(MergeOutcome {
            path,
            added: fresh,
            duplicates,
            skipped: self.skipped.len(),
        })
    }

    /// Whether `fresh` (canonically sorted, known non-empty) may be
    /// applied directly to the live sheet: every fresh event is a pure σ
    /// insertion, and every logged event sorting after the earliest
    /// insertion point is selection-family and not currently skipped.
    /// (A skipped event could be un-skipped by what we insert before it
    /// — e.g. a ReplaceSelection waiting for its target σ — which only a
    /// replay would notice.)
    fn commutes_directly(&self, fresh: &[OpEvent]) -> bool {
        if !fresh.iter().all(|e| matches!(e.op, SheetOp::Select { .. })) {
            return false;
        }
        let min_key = fresh[0].key();
        self.log
            .iter()
            .rev()
            .take_while(|e| e.key() > min_key)
            .all(|e| e.op.is_selection_family() && !self.skipped.contains(&e.key()))
    }

    /// Adopt and apply one event to the live sheet, recording a
    /// deterministic skip when its operator fails.
    fn apply_live(&mut self, event: &OpEvent) {
        if event.op.apply(&mut self.sheet, event.id()).is_err() {
            self.skipped.insert(event.key());
        }
        self.adopt(event.clone());
    }

    /// Rebuild the sheet as the pure function of (genesis, log): restore
    /// the genesis snapshot and apply the log in canonical order,
    /// re-deciding every skip.
    fn replay(&mut self) -> Result<()> {
        let name = self.sheet.name().to_string();
        self.sheet.restore(
            Arc::clone(&self.genesis_base),
            self.genesis_state.clone(),
            0,
            0,
        );
        self.sheet.set_name(name);
        self.skipped.clear();
        let log = std::mem::take(&mut self.log);
        for event in &log {
            if event.op.apply(&mut self.sheet, event.id()).is_err() {
                self.skipped.insert(event.key());
            }
        }
        self.log = log;
        Ok(())
    }

    /// Raw durability snapshot of the current sheet (see
    /// [`Spreadsheet::freeze_raw`]).
    pub fn freeze_raw(&self) -> StoredSheet {
        self.sheet.freeze_raw()
    }

    /// Whether the log is gap-free, i.e. the contiguous frontier covers
    /// everything held. Compaction requires this: a baked-in gap could
    /// never be filled afterwards.
    pub fn can_compact(&self) -> bool {
        let frontier = self.frontier_vv();
        self.known.iter().all(|id| frontier.covers(*id))
    }

    /// Seal current history into the genesis snapshot: the live sheet
    /// becomes genesis, the log empties, and events at or before the new
    /// frontier are no longer accepted. The caller persists the snapshot
    /// *before* calling this (see the durable layer).
    pub fn mark_compacted(&mut self) -> Result<()> {
        if !self.can_compact() {
            return Err(SheetError::BehindCompaction {
                detail: "log has causal gaps; fill them before compacting".to_string(),
            });
        }
        if let Some(last) = self.log.last() {
            self.frontier = last.key();
        }
        self.genesis_base = self.sheet.base_arc();
        self.genesis_state = self.sheet.state().clone();
        self.compacted_vv = self.frontier_vv();
        self.seen = self.compacted_vv.clone();
        self.log.clear();
        self.known.clear();
        self.skipped.clear();
        Ok(())
    }

    /// Canonical content fingerprint: the rendered JSON of base data and
    /// query state. Converged replicas match byte for byte (epoch and
    /// version counters are bookkeeping, not content, and are excluded).
    pub fn fingerprint(&self) -> String {
        let stored = self.sheet.freeze_raw();
        Json::obj(vec![
            ("base", persist::relation_to_json(&stored.relation)),
            ("state", persist::state_to_json(&stored.state)),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_relation::schema::Schema;
    use ssa_relation::ValueType::{Int, Str};

    fn base() -> Relation {
        let rows = (0..6)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "ann arbor" } else { "detroit" }),
                    Value::Int(100 * i),
                ])
            })
            .collect();
        Relation::with_rows(
            "cars",
            Schema::of(&[("id", Int), ("city", Str), ("price", Int)]),
            rows,
        )
        .expect("fixture")
    }

    #[test]
    fn packed_event_ids_are_unique_and_ordered_per_replica() {
        let a = EventId { replica: 1, seq: 7 };
        let b = EventId { replica: 2, seq: 1 };
        assert_ne!(a.packed(), b.packed());
        assert!(EventId { replica: 1, seq: 8 }.packed() > a.packed());
    }

    #[test]
    fn ops_round_trip_through_json() {
        let ops = vec![
            SheetOp::AppendRows {
                rows: vec![Tuple::new(vec![
                    Value::Int(9),
                    Value::str("x"),
                    Value::Null,
                ])],
            },
            SheetOp::DeleteRows { ids: vec![1, 3] },
            SheetOp::UpdateCell {
                row: 2,
                column: "price".into(),
                value: Value::Int(42),
            },
            SheetOp::Rename {
                from: "price".into(),
                to: "cost".into(),
            },
            SheetOp::Select {
                predicate: Expr::col("price").gt(Expr::lit(100)),
            },
            SheetOp::ReplaceSelection {
                target: 7,
                predicate: Expr::col("price").lt(Expr::lit(10)),
            },
            SheetOp::RemoveSelection { target: 7 },
            SheetOp::Group {
                attributes: vec!["city".into()],
                direction: Direction::Desc,
            },
            SheetOp::Regroup {
                attributes: vec!["city".into(), "id".into()],
                direction: Direction::Asc,
            },
            SheetOp::Ungroup,
            SheetOp::Order {
                attribute: "price".into(),
                direction: Direction::Desc,
                level: 1,
            },
            SheetOp::ProjectOut {
                column: "id".into(),
            },
            SheetOp::Reinstate {
                column: "id".into(),
            },
            SheetOp::Aggregate {
                func: AggFunc::Avg,
                column: "price".into(),
                level: 1,
            },
            SheetOp::Formula {
                name: "double".into(),
                expr: Expr::col("price").mul(Expr::lit(2)),
            },
            SheetOp::RemoveComputed {
                name: "double".into(),
            },
            SheetOp::Dedup,
        ];
        for op in ops {
            let event = OpEvent {
                replica: 3,
                seq: 5,
                vv: {
                    let mut vv = VersionVector::new();
                    vv.record(EventId { replica: 3, seq: 5 });
                    vv.record(EventId { replica: 1, seq: 2 });
                    vv
                },
                op: op.clone(),
            };
            let text = event.encode().expect("encode");
            let back = OpEvent::decode(&text).expect("decode");
            assert_eq!(back.op, op, "round trip for {}", op.kind());
            assert_eq!(back.key(), event.key());
        }
    }

    #[test]
    fn parse_command_covers_the_grammar() {
        for (line, kind) in [
            ("select price > 100", "select"),
            ("replace 7 price < 10", "replace-selection"),
            ("unselect 7", "remove-selection"),
            ("group city desc", "group"),
            ("regroup city,id", "regroup"),
            ("ungroup", "ungroup"),
            ("order price desc 1", "order"),
            ("hide id", "project-out"),
            ("show id", "reinstate"),
            ("agg avg price 1", "aggregate"),
            ("formula double = price * 2", "formula"),
            ("unformula double", "remove-computed"),
            ("dedup", "dedup"),
            ("rename price cost", "rename"),
        ] {
            let op = SheetOp::parse_command(line).expect(line);
            assert_eq!(op.kind(), kind, "{line}");
        }
        assert!(SheetOp::parse_command("frobnicate 1").is_err());
    }

    #[test]
    fn commit_then_merge_fast_forwards_and_converges() {
        let mut a = Replica::new(1, base()).expect("a");
        let mut b = Replica::new(2, base()).expect("b");
        a.commit(SheetOp::Select {
            predicate: Expr::col("price").gt(Expr::lit(0)),
        })
        .expect("commit");
        a.commit(SheetOp::AppendRows {
            rows: vec![Tuple::new(vec![
                Value::Int(100),
                Value::str("ypsilanti"),
                Value::Int(1),
            ])],
        })
        .expect("commit");
        let events = a.events_since(&b.frontier_vv()).expect("events");
        assert_eq!(events.len(), 2);
        let outcome = b.merge(&events).expect("merge");
        assert_eq!(outcome.path, MergePath::FastForward);
        assert_eq!(outcome.added.len(), 2);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Idempotent redelivery.
        let outcome = b.merge(&events).expect("remerge");
        assert_eq!(outcome.path, MergePath::Empty);
        assert_eq!(outcome.duplicates, 2);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn concurrent_selects_take_the_direct_commute_path() {
        let mut a = Replica::new(1, base()).expect("a");
        let mut b = Replica::new(2, base()).expect("b");
        // Concurrent σs: same weight, a's sorts first by replica id.
        b.commit(SheetOp::Select {
            predicate: Expr::col("city").eq(Expr::lit("detroit")),
        })
        .expect("b select");
        let from_a = {
            a.commit(SheetOp::Select {
                predicate: Expr::col("price").gt(Expr::lit(100)),
            })
            .expect("a select");
            a.events_since(&VersionVector::new()).expect("events")
        };
        // a's event sorts before b's logged tail → not a fast-forward.
        let outcome = b.merge(&from_a).expect("merge");
        assert_eq!(outcome.path, MergePath::DirectCommute);
        let from_b = b.events_since(&a.frontier_vv()).expect("events");
        a.merge(&from_b).expect("merge back");
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Oracle: a single site applying the union in canonical order.
        let mut oracle = Replica::new(9, base()).expect("oracle");
        let mut all = b.log().to_vec();
        all.sort_by_key(OpEvent::key);
        oracle.merge(&all).expect("oracle merge");
        assert_eq!(oracle.fingerprint(), b.fingerprint());
    }

    #[test]
    fn non_commuting_pairs_rewrite_history_per_theorem_3() {
        let mut a = Replica::new(1, base()).expect("a");
        let mut b = Replica::new(2, base()).expect("b");
        a.commit(SheetOp::Rename {
            from: "price".into(),
            to: "cost".into(),
        })
        .expect("a rename");
        b.commit(SheetOp::Select {
            predicate: Expr::col("price").gt(Expr::lit(100)),
        })
        .expect("b select");
        b.commit(SheetOp::Group {
            attributes: vec!["city".into()],
            direction: Direction::Asc,
        })
        .expect("b group");
        let from_a = a.events_since(&VersionVector::new()).expect("ev");
        let outcome = b.merge(&from_a).expect("merge");
        assert_eq!(outcome.path, MergePath::Rewritten);
        let from_b = b.events_since(&a.frontier_vv()).expect("ev");
        a.merge(&from_b).expect("merge");
        assert_eq!(a.fingerprint(), b.fingerprint());
        // The select referenced `price`, renamed concurrently before it
        // in canonical order (rename has equal weight, lower replica id);
        // both replicas deterministically skip it.
        assert_eq!(a.skipped_count(), b.skipped_count());
    }

    #[test]
    fn compaction_seals_history_and_rejects_stale_events() {
        let mut a = Replica::new(1, base()).expect("a");
        let mut b = Replica::new(2, base()).expect("b");
        b.commit(SheetOp::Select {
            predicate: Expr::col("price").gt(Expr::lit(0)),
        })
        .expect("b select");
        let stale = b.events_since(&VersionVector::new()).expect("ev");
        a.commit(SheetOp::Dedup).expect("a dedup");
        a.commit(SheetOp::Ungroup).expect("a ungroup");
        a.mark_compacted().expect("compact");
        assert!(a.log().is_empty());
        // b's concurrent event (weight 1) now sorts below a's frontier
        // (weight 2): its canonical position is inside sealed history.
        let err = a.merge(&stale).expect_err("stale merge");
        assert!(matches!(err, SheetError::BehindCompaction { .. }), "{err}");
        // And a can no longer serve a peer from before the compaction.
        let err = a.events_since(&VersionVector::new()).expect_err("since");
        assert!(matches!(err, SheetError::BehindCompaction { .. }), "{err}");
        // But new events on top of the compacted snapshot still flow.
        a.commit(SheetOp::Select {
            predicate: Expr::col("price").lt(Expr::lit(1000)),
        })
        .expect("post-compaction commit");
    }

    #[test]
    fn rollback_last_undoes_a_local_commit() {
        let mut a = Replica::new(1, base()).expect("a");
        let before = a.fingerprint();
        a.commit(SheetOp::Select {
            predicate: Expr::col("price").gt(Expr::lit(100)),
        })
        .expect("commit");
        assert_ne!(a.fingerprint(), before);
        a.rollback_last().expect("rollback");
        assert_eq!(a.fingerprint(), before);
        assert!(a.log().is_empty());
        // The sequence number is reusable: no gap is left behind.
        let e = a.commit(SheetOp::Dedup).expect("recommit");
        assert_eq!(e.seq, 1);
    }
}
