//! Computed columns: the materialization vehicle for aggregation (η,
//! Def. 11) and formula computation (θ, Def. 12).
//!
//! "Aggregation is defined not as an operator directly, but as the
//! creation of a corresponding computed attribute" (Sec. I-C). The
//! essential property is **automatic update**: a computed column stores
//! its *definition*, and its values are re-derived whenever the underlying
//! data changes — this is precisely why selection and aggregation commute
//! in the spreadsheet algebra when they do not in relational algebra
//! (Theorem 2's proof sketch).

use ssa_relation::{AggFunc, Expr};
use std::collections::BTreeSet;
use std::fmt;

/// The definition of a computed column.
#[derive(Debug, Clone, PartialEq)]
pub enum ComputedDef {
    /// η — `func(column)` evaluated per group at grouping `level`
    /// (1-based; level 1 = the whole sheet), with the one result value
    /// repeated on every row of the group (Table III's `Avg_Price`).
    Aggregate {
        func: AggFunc,
        column: String,
        level: usize,
        /// The absolute grouping basis at `level` when the aggregate was
        /// created. Kept so dependency checks can tell whether a later
        /// grouping/ordering change would invalidate this aggregate.
        basis: Vec<String>,
    },
    /// θ — a row-wise formula over other columns.
    Formula { expr: Expr },
}

impl ComputedDef {
    /// Columns this definition reads. Aggregates also depend on their
    /// grouping-basis columns (the groups are formed from them).
    pub fn dependencies(&self) -> BTreeSet<String> {
        match self {
            ComputedDef::Aggregate { column, basis, .. } => {
                let mut d: BTreeSet<String> = basis.iter().cloned().collect();
                d.insert(column.clone());
                d
            }
            ComputedDef::Formula { expr } => expr.columns(),
        }
    }

    pub fn is_aggregate(&self) -> bool {
        matches!(self, ComputedDef::Aggregate { .. })
    }

    /// Rename a column in the definition (housekeeping Rename operator).
    pub fn rename_column(&mut self, from: &str, to: &str) {
        match self {
            ComputedDef::Aggregate { column, basis, .. } => {
                if column == from {
                    *column = to.to_string();
                }
                for b in basis.iter_mut() {
                    if b == from {
                        *b = to.to_string();
                    }
                }
            }
            ComputedDef::Formula { expr } => {
                *expr = expr.map_columns(&|c| {
                    if c == from {
                        to.to_string()
                    } else {
                        c.to_string()
                    }
                });
            }
        }
    }
}

impl fmt::Display for ComputedDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputedDef::Aggregate {
                func,
                column,
                level,
                ..
            } => {
                write!(f, "{func}({column}) at level {level}")
            }
            ComputedDef::Formula { expr } => write!(f, "{expr}"),
        }
    }
}

/// A named computed column.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputedColumn {
    pub name: String,
    pub def: ComputedDef,
}

impl ComputedColumn {
    pub fn aggregate(
        name: impl Into<String>,
        func: AggFunc,
        column: impl Into<String>,
        level: usize,
        basis: Vec<String>,
    ) -> ComputedColumn {
        ComputedColumn {
            name: name.into(),
            def: ComputedDef::Aggregate {
                func,
                column: column.into(),
                level,
                basis,
            },
        }
    }

    pub fn formula(name: impl Into<String>, expr: Expr) -> ComputedColumn {
        ComputedColumn {
            name: name.into(),
            def: ComputedDef::Formula { expr },
        }
    }
}

/// Assign evaluation ranks to computed columns.
///
/// Base columns have rank 0. A computed column's rank is
/// `1 + max(rank of its dependencies)`. The canonical evaluator
/// materializes computed columns in rank order, interleaving selections at
/// their own rank, so a selection over `Avg_Price` is applied only after
/// `Avg_Price` exists — the *precedence* constraint of Sec. IV-B made
/// operational.
///
/// Returns `None` if a dependency is neither a base column nor another
/// computed column (dangling reference), or if definitions are cyclic.
pub fn compute_ranks(
    base_columns: &BTreeSet<String>,
    computed: &[ComputedColumn],
) -> Option<Vec<usize>> {
    let mut ranks: Vec<Option<usize>> = vec![None; computed.len()];
    // Iterate to fixpoint; n passes suffice for an acyclic dependency
    // graph of n columns.
    for _ in 0..=computed.len() {
        let mut progressed = false;
        for (i, col) in computed.iter().enumerate() {
            if ranks[i].is_some() {
                continue;
            }
            let mut max_dep = 0usize;
            let mut ready = true;
            for dep in col.def.dependencies() {
                if base_columns.contains(&dep) {
                    continue;
                }
                match computed.iter().position(|c| c.name == dep) {
                    Some(j) => match ranks[j] {
                        Some(r) => max_dep = max_dep.max(r),
                        None => {
                            ready = false;
                            break;
                        }
                    },
                    None => return None, // dangling reference
                }
            }
            if ready {
                ranks[i] = Some(max_dep + 1);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    ranks.into_iter().collect()
}

/// Rank of an arbitrary column name given computed ranks: base → 0,
/// computed → its rank, unknown → `None`.
pub fn column_rank(
    name: &str,
    base_columns: &BTreeSet<String>,
    computed: &[ComputedColumn],
    ranks: &[usize],
) -> Option<usize> {
    if base_columns.contains(name) {
        return Some(0);
    }
    computed
        .iter()
        .position(|c| c.name == name)
        .map(|i| ranks[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_relation::Expr;

    fn base() -> BTreeSet<String> {
        ["Model", "Price", "Year"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn aggregate_dependencies_include_basis() {
        let c = ComputedColumn::aggregate(
            "Avg_Price",
            AggFunc::Avg,
            "Price",
            3,
            vec!["Model".into(), "Year".into()],
        );
        let deps = c.def.dependencies();
        assert!(deps.contains("Price"));
        assert!(deps.contains("Model"));
        assert!(deps.contains("Year"));
        assert!(c.def.is_aggregate());
    }

    #[test]
    fn formula_dependencies_from_expr() {
        let c = ComputedColumn::formula("Rev", Expr::col("Price").mul(Expr::col("Qty")));
        assert_eq!(
            c.def.dependencies().into_iter().collect::<Vec<_>>(),
            vec!["Price".to_string(), "Qty".into()]
        );
        assert!(!c.def.is_aggregate());
    }

    #[test]
    fn ranks_layer_dependent_columns() {
        let computed = vec![
            ComputedColumn::aggregate("Avg_Price", AggFunc::Avg, "Price", 2, vec!["Model".into()]),
            // formula over the aggregate: rank 2
            ComputedColumn::formula("Delta", Expr::col("Price").sub(Expr::col("Avg_Price"))),
            // aggregate of the formula: rank 3
            ComputedColumn::aggregate("Max_Delta", AggFunc::Max, "Delta", 1, vec![]),
        ];
        let ranks = compute_ranks(&base(), &computed).unwrap();
        assert_eq!(ranks, vec![1, 2, 3]);
    }

    #[test]
    fn ranks_reject_dangling_reference() {
        let computed = vec![ComputedColumn::formula("X", Expr::col("Ghost"))];
        assert_eq!(compute_ranks(&base(), &computed), None);
    }

    #[test]
    fn ranks_reject_cycles() {
        let computed = vec![
            ComputedColumn::formula("A", Expr::col("B")),
            ComputedColumn::formula("B", Expr::col("A")),
        ];
        assert_eq!(compute_ranks(&base(), &computed), None);
    }

    #[test]
    fn ranks_independent_of_declaration_order() {
        let a = ComputedColumn::formula("A", Expr::col("Price").add(Expr::lit(1)));
        let b = ComputedColumn::formula("B", Expr::col("A").add(Expr::lit(1)));
        let r1 = compute_ranks(&base(), &[a.clone(), b.clone()]).unwrap();
        let r2 = compute_ranks(&base(), &[b, a]).unwrap();
        assert_eq!(r1, vec![1, 2]);
        assert_eq!(r2, vec![2, 1]);
    }

    #[test]
    fn column_rank_lookup() {
        let computed = vec![ComputedColumn::formula(
            "A",
            Expr::col("Price").add(Expr::lit(1)),
        )];
        let ranks = compute_ranks(&base(), &computed).unwrap();
        assert_eq!(column_rank("Price", &base(), &computed, &ranks), Some(0));
        assert_eq!(column_rank("A", &base(), &computed, &ranks), Some(1));
        assert_eq!(column_rank("Ghost", &base(), &computed, &ranks), None);
    }

    #[test]
    fn rename_rewrites_definitions() {
        let mut c =
            ComputedColumn::aggregate("Avg_Price", AggFunc::Avg, "Price", 2, vec!["Model".into()]);
        c.def.rename_column("Price", "Cost");
        c.def.rename_column("Model", "Make");
        let deps = c.def.dependencies();
        assert!(deps.contains("Cost") && deps.contains("Make"));
        let mut f = ComputedColumn::formula("F", Expr::col("Price").mul(Expr::lit(2)));
        f.def.rename_column("Price", "Cost");
        assert!(f.def.dependencies().contains("Cost"));
    }

    #[test]
    fn display_definitions() {
        let c = ComputedColumn::aggregate("A", AggFunc::Avg, "Price", 3, vec![]);
        assert_eq!(c.def.to_string(), "Avg(Price) at level 3");
    }
}
