//! Canonical evaluation: query state × base data → evaluated spreadsheet.
//!
//! Operators in this crate edit the [`QueryState`]; this module gives the
//! state its single, deterministic meaning. Because evaluation is a pure
//! function of `(base, state)`, any two operator sequences that produce
//! the same state produce the same spreadsheet — the engine-level fact
//! behind Theorem 2 (commutativity) and Theorem 3 (state change ≡ history
//! rewrite).
//!
//! The canonical pipeline:
//!
//! 1. start from the base data (all of `R`'s columns, hidden or not);
//! 2. if duplicate elimination is in force, remove duplicate `R`-tuples;
//! 3. process *ranks* in increasing order — materialize the computed
//!    columns of each rank (aggregates are computed over the tuples that
//!    survive the selections of lower ranks), then apply the selections of
//!    that rank. A selection's rank is the maximum rank of the columns it
//!    references, so a predicate over `Avg_Price` runs only after
//!    `Avg_Price` exists: precedence (Sec. IV-B), operationalized;
//! 4. re-materialize every computed column over the final multiset — the
//!    *automatic update* property of computed columns (Sec. III-B);
//! 5. sort into presentation order (group keys level by level, then the
//!    finest-level ordering) and build the group tree.
//!
//! # Two engines
//!
//! The pipeline has two implementations with identical semantics:
//!
//! * the **index-vector engine** (default): evaluation carries a
//!   `Vec<u32>` of surviving row ids over the immutable base snapshot
//!   plus one columnar `Vec<Value>` buffer per computed column.
//!   Selections and formulas run over [`CompiledExpr`]s that read
//!   borrowed `&Value`s straight from the base tuples and buffers; a
//!   [`Relation`] is materialized exactly once, at the end. Above
//!   [`EvalOptions::parallel_threshold`] live rows, selection, formula
//!   and aggregation work is chunked across `std::thread::scope`
//!   workers.
//! * the **naive engine** ([`EvalOptions::naive`]): the original
//!   row-cloning implementation — each step clones and rewrites whole
//!   relations. It is kept as the differential-testing oracle and the
//!   benchmark baseline, not for production use.

use crate::computed::{ComputedColumn, ComputedDef};
use crate::error::{Result, SheetError};
use crate::spec::Spec;
use crate::state::QueryState;
use crate::tree::{build_tree, GroupTree};
use ssa_relation::compiled::{CompiledExpr, RowAccess};
use ssa_relation::ops;
use ssa_relation::relation::Relation;
use ssa_relation::schema::{Column, Schema};
use ssa_relation::tuple::Tuple;
use ssa_relation::value::{Value, ValueType};
use ssa_relation::Expr;
use std::collections::{BTreeMap, HashMap, HashSet};

/// An evaluated spreadsheet: data in presentation order, the group tree
/// over it, and the visible columns in display order.
#[derive(Debug, Clone, PartialEq)]
pub struct Derived {
    /// All columns (base + computed), rows in presentation order.
    pub data: Relation,
    /// Grouping materialized over `data`'s rows.
    pub tree: GroupTree,
    /// Column names shown to the user, in display order.
    pub visible: Vec<String>,
}

impl Derived {
    /// The user-facing relation: visible columns only, presentation order.
    ///
    /// Errors (rather than panicking) if a visible column is missing from
    /// the data — an internal inconsistency surfaced as a typed error so
    /// callers embedding the engine can recover.
    pub fn visible_relation(&self) -> Result<Relation> {
        let cols: Vec<&str> = self.visible.iter().map(|s| s.as_str()).collect();
        Ok(ops::project(&self.data, &cols)?)
    }

    /// Number of (surviving) tuples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Equality modulo column arrangement.
    ///
    /// Two computed columns created in either order yield the same
    /// spreadsheet *content* but different left-to-right placement ("the
    /// result column appears next to the rightmost column", Sec. VI-A).
    /// Theorem 2's commutativity is about content, so this comparison
    /// checks: same visible column set, same hidden column set, identical
    /// per-column values in presentation order, and the same group tree.
    ///
    /// Comparison is allocation-light: column names are compared as
    /// sorted `&str` slices and values are read in place — no per-call
    /// copies of column vectors.
    pub fn equivalent(&self, other: &Derived) -> bool {
        fn sorted<'a>(names: impl Iterator<Item = &'a str>) -> Vec<&'a str> {
            let mut v: Vec<&str> = names.collect();
            v.sort_unstable();
            v
        }
        let mine = sorted(self.visible.iter().map(String::as_str));
        let theirs = sorted(other.visible.iter().map(String::as_str));
        if mine != theirs {
            return false;
        }
        let my_cols = sorted(self.data.schema().names().into_iter());
        let their_cols = sorted(other.data.schema().names().into_iter());
        if my_cols != their_cols || self.data.len() != other.data.len() {
            return false;
        }
        for name in my_cols {
            let (Ok(i), Ok(j)) = (
                self.data.schema().index_of(name),
                other.data.schema().index_of(name),
            ) else {
                return false;
            };
            let same = self
                .data
                .rows()
                .iter()
                .zip(other.data.rows())
                .all(|(a, b)| a.get(i) == b.get(j));
            if !same {
                return false;
            }
        }
        self.tree == other.tree
    }
}

/// Default live-row count above which the index-vector engine chunks
/// selection/formula/aggregation work across `std::thread::scope`
/// workers. Below it the per-thread setup costs more than it saves.
/// Shared with the relational operators (the hash join keys its build
/// partitioning and probe chunking off the same option).
pub const DEFAULT_PARALLEL_THRESHOLD: usize = ssa_relation::par::DEFAULT_PARALLEL_THRESHOLD;

/// Evaluation engine knobs. [`Default`] is the index-vector engine with
/// the standard parallel threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Use the original row-cloning pipeline (differential-test oracle,
    /// bench baseline).
    pub naive: bool,
    /// Live-row count at which the index-vector engine goes parallel.
    /// `usize::MAX` forces sequential evaluation.
    pub parallel_threshold: usize,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            naive: false,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }
}

/// Evaluate `state` over `base` with the default engine.
pub fn evaluate(base: &Relation, state: &QueryState) -> Result<Derived> {
    evaluate_with(base, state, EvalOptions::default())
}

/// Evaluate with explicit engine options.
pub fn evaluate_with(base: &Relation, state: &QueryState, opts: EvalOptions) -> Result<Derived> {
    let plan = Plan::prepare(base, state)?;
    if opts.naive {
        evaluate_full_naive(base, state, &plan).map(|(derived, _)| derived)
    } else {
        // No caller for the canonical relation → skip its row gather
        // entirely (the presentation-ordered data is built directly).
        evaluate_indexed(base, state, &plan, opts.parallel_threshold, false)
            .map(|(derived, _)| derived)
    }
}

/// Evaluate, also returning the *canonical* (pre-presentation-sort) data.
/// The sheet's reorganize fast path re-sorts from this canonical order so
/// tie-breaking matches a from-scratch evaluation exactly (stable sort
/// over base insertion order). The index-vector engine additionally
/// returns the presentation permutation (derived row `j` is canonical row
/// `perm[j]`) and the surviving base row ids (canonical row `i` is base
/// row `base_ids[i]`, ascending) which the delta-aware cache maintains
/// across narrowing and base-data edits; the naive engine returns `None`
/// (its cache never takes the incremental paths).
pub(crate) type Provenance = (Vec<u32>, Vec<u32>);

pub(crate) fn evaluate_full_with(
    base: &Relation,
    state: &QueryState,
    opts: EvalOptions,
) -> Result<(Derived, Relation, Option<Provenance>)> {
    let plan = Plan::prepare(base, state)?;
    if opts.naive {
        let (derived, canonical) = evaluate_full_naive(base, state, &plan)?;
        Ok((derived, canonical, None))
    } else {
        let (derived, canonical) =
            evaluate_indexed(base, state, &plan, opts.parallel_threshold, true)?;
        debug_assert!(canonical.is_some(), "canonical requested");
        let (canonical, perm, base_ids) = canonical.ok_or_else(|| SheetError::Internal {
            detail: "canonical relation requested but not produced".into(),
        })?;
        Ok((derived, canonical, Some((perm, base_ids))))
    }
}

// The shared front half of both engines — reference validation, rank
// assignment, and the Theorem-2 rewrites — lives in [`crate::plan`]. Both
// engines consume the same [`Plan`], so rewrites cannot diverge between
// the full evaluator and the incremental delta path; the naive engine
// reads only the unrewritten rank assignment and stays the oracle.
use crate::plan::Plan;

// ---------------------------------------------------------------------
// Index-vector engine
// ---------------------------------------------------------------------

/// Read the value of `slot` for base row `row`: base columns come from
/// the immutable base tuple, computed columns from their buffers.
fn slot_value<'a>(
    base_rows: &'a [Tuple],
    bufs: &'a [Option<Vec<Value>>],
    width: usize,
    row: u32,
    slot: usize,
) -> &'a Value {
    if slot < width {
        base_rows[row as usize].get(slot)
    } else {
        // invariant: rank order materializes dependencies first, so a
        // computed slot is only read after its buffer is filled (the plan
        // orders ranks and `needed` closes over dependencies). Read per
        // value on the hottest path — kept as an expect, not a Result.
        let buf = bufs[slot - width]
            .as_ref()
            .expect("rank order materializes dependencies first");
        &buf[row as usize]
    }
}

/// One live row of the index-vector engine, viewed through slots.
#[derive(Clone, Copy)]
struct EngineRow<'a> {
    base_rows: &'a [Tuple],
    bufs: &'a [Option<Vec<Value>>],
    width: usize,
    row: u32,
}

impl RowAccess for EngineRow<'_> {
    fn slot(&self, idx: usize) -> &Value {
        slot_value(self.base_rows, self.bufs, self.width, self.row, idx)
    }
}

// Chunked scoped-thread execution is shared with the relational
// operators: one implementation, one ordering guarantee.
use ssa_relation::par::chunk_map;

/// Canonical (rank-ordered) relation plus the presentation permutation
/// mapping derived row `j` to canonical row `perm[j]` and the surviving
/// base row ids (canonical row `i` is base row `base_ids[i]`) — handed to
/// the sheet cache when it asks for the canonical form alongside the view.
type Canonical = (Relation, Vec<u32>, Vec<u32>);

fn evaluate_indexed(
    base: &Relation,
    state: &QueryState,
    plan: &Plan,
    threshold: usize,
    want_canonical: bool,
) -> Result<(Derived, Option<Canonical>)> {
    let width = base.schema().len();
    let base_rows = base.rows();

    // Slot table: base columns first, computed columns after, so a slot
    // id addresses the virtual (base ++ computed) row uniformly.
    let mut slots: HashMap<&str, usize> = HashMap::with_capacity(width + state.computed.len());
    for (i, name) in base.schema().names().into_iter().enumerate() {
        slots.insert(name, i);
    }
    for (i, col) in state.computed.iter().enumerate() {
        slots.insert(&col.name, width + i);
    }

    // One columnar buffer per computed column, filled rank by rank.
    // Buffers span the *base* row space so a row id indexes any of them.
    let mut bufs: Vec<Option<Vec<Value>>> = vec![None; state.computed.len()];

    let compiled_sels: Vec<CompiledExpr> = state
        .selections
        .iter()
        .map(|s| CompiledExpr::compile(&s.predicate, &mut |n| slots.get(n).copied()))
        .collect::<ssa_relation::Result<_>>()?;
    let fused = |idxs: &[usize]| -> Vec<&CompiledExpr> {
        idxs.iter().map(|&si| &compiled_sels[si]).collect()
    };

    // Steps 1–2: the index vector of surviving rows. The plan hoists
    // rank-0 (base-column-only) selections *above* duplicate elimination
    // — duplicate `R`-tuples agree on every base column, so filtering
    // first keeps exactly the same first occurrences while shrinking the
    // dedup hash — and fuses them into one pass. Dedup keeps the first
    // occurrence of each distinct base tuple (matching `ops::distinct`).
    let mut live: Vec<u32> = (0..base_rows.len() as u32).collect();
    if !plan.pre_dedup.is_empty() {
        live = filter_rows(base, &bufs, &fused(&plan.pre_dedup), &live, threshold)?;
    }
    if state.dedup {
        let mut seen: HashSet<&Tuple> = HashSet::with_capacity(live.len());
        live.retain(|&i| seen.insert(&base_rows[i as usize]));
    }

    // Step 3: layered materialization and filtering over row ids, staged
    // by the plan. Only columns a selection (transitively) reads
    // (`plan.early`) have to exist while step 3 filters; everything else
    // is deferred to step 4, where it is computed once over the final
    // (smaller) index vector. Deferral is invisible except for
    // evaluation errors confined to rows the selections remove — those
    // are simply never raised, as in any lazy query engine. Each rank's
    // selections run as one fused, cost-ordered pass.
    for stage in &plan.stages {
        for &i in &stage.compute {
            bufs[i] = Some(materialize_buffer(
                base,
                &bufs,
                &slots,
                &live,
                &state.computed[i],
                threshold,
            )?);
        }
        if !stage.filters.is_empty() {
            live = filter_rows(base, &bufs, &fused(&stage.filters), &live, threshold)?;
        }
    }

    // Step 4: automatic update — recompute computed columns over the
    // final index vector, in rank order. A step-3 buffer survives when
    // recomputation could not change it: its dependencies are themselves
    // valid, and it is row-local (a formula) or no later selection shrank
    // the sheet after it was aggregated.
    let order = plan.rank_order();
    let mut valid = vec![false; state.computed.len()];
    for &i in &order {
        let col = &state.computed[i];
        let deps_valid = col.def.dependencies().iter().all(|n| {
            slots
                .get(n.as_str())
                .is_none_or(|&s| s < width || valid[s - width])
        });
        let unshrunk = plan.sel_ranks.iter().all(|&r| r < plan.ranks[i]);
        valid[i] = bufs[i].is_some() && deps_valid && (!col.def.is_aggregate() || unshrunk);
    }
    for &i in &order {
        if !valid[i] {
            bufs[i] = None;
        }
    }
    for &i in &order {
        if !valid[i] {
            bufs[i] = Some(materialize_buffer(
                base,
                &bufs,
                &slots,
                &live,
                &state.computed[i],
                threshold,
            )?);
        }
    }

    // Step 5 runs *on the index vector*: stable-sort the live row ids by
    // the presentation keys (reading values in place), then gather rows
    // exactly once, already in presentation order.
    let parallel = live.len() >= threshold;
    let sorted = presentation_order_ids(base, state, &slots, &bufs, &live, parallel)?;
    let schema = result_schema(base, state, &order, &bufs, &live)?;
    let data = gather_rows(base, &order, &bufs, &sorted, &schema, parallel)?;
    let canonical = want_canonical
        .then(|| -> Result<Canonical> {
            let rel = gather_rows(base, &order, &bufs, &live, &schema, parallel)?;
            // Presentation permutation: `sorted` is a permutation of
            // `live` (both are base row ids), so invert `live` to map a
            // presentation position to its canonical position.
            let mut pos = vec![0u32; base.len()];
            for (i, &id) in live.iter().enumerate() {
                pos[id as usize] = i as u32;
            }
            let perm = sorted.iter().map(|&id| pos[id as usize]).collect();
            Ok((rel, perm, live.clone()))
        })
        .transpose()?;
    let level_bases: Vec<Vec<String>> = state.spec.levels.iter().map(|l| l.basis.clone()).collect();
    let tree = build_tree(&data, &level_bases);

    let visible = visible_columns(base, state);
    Ok((
        Derived {
            data,
            tree,
            visible,
        },
        canonical,
    ))
}

/// The schema of the evaluated relation: base columns followed by the
/// computed columns in rank order, each typed by unifying its surviving
/// values (matching the naive engine exactly).
fn result_schema(
    base: &Relation,
    state: &QueryState,
    order: &[usize],
    bufs: &[Option<Vec<Value>>],
    live: &[u32],
) -> Result<Schema> {
    let mut columns: Vec<Column> = base.schema().columns().to_vec();
    for &i in order {
        debug_assert!(bufs[i].is_some(), "all buffers filled in step 4");
        let buf = bufs[i].as_ref().ok_or_else(|| SheetError::Internal {
            detail: format!(
                "computed buffer `{}` missing after step 4",
                state.computed[i].name
            ),
        })?;
        let mut ty = ValueType::Null;
        for &row in live {
            ty = ty.unify(buf[row as usize].value_type());
        }
        columns.push(Column::new(state.computed[i].name.clone(), ty));
    }
    // Computed names were validated distinct by the operators; a clash
    // here surfaces as the substrate's DuplicateColumn error.
    Ok(Schema::new(columns)?)
}

/// Gather the listed base rows (plus computed buffer values, in rank
/// order) into a relation — the index-vector engine's one-and-only
/// row-cloning pass, chunked across workers for large sheets.
fn gather_rows(
    base: &Relation,
    order: &[usize],
    bufs: &[Option<Vec<Value>>],
    ids: &[u32],
    schema: &Schema,
    parallel: bool,
) -> Result<Relation> {
    ssa_relation::fault_check!("eval.gather");
    let base_rows = base.rows();
    let width = base.schema().len();
    // Bind each computed buffer once, outside the per-row loop: cheaper
    // than an Option unwrap per value, and a missing buffer (broken step-4
    // invariant) degrades to a typed error instead of a worker panic.
    let ordered_bufs: Vec<&Vec<Value>> = order
        .iter()
        .map(|&i| {
            debug_assert!(bufs[i].is_some(), "all buffers filled in step 4");
            bufs[i].as_ref().ok_or_else(|| SheetError::Internal {
                detail: "computed buffer missing during row gather".into(),
            })
        })
        .collect::<Result<_>>()?;
    let chunks = chunk_map(ids, parallel, |chunk| {
        chunk
            .iter()
            .map(|&row| {
                let mut vals = Vec::with_capacity(width + order.len());
                vals.extend_from_slice(base_rows[row as usize].values());
                for buf in &ordered_bufs {
                    vals.push(buf[row as usize]);
                }
                Tuple::new(vals)
            })
            .collect::<Vec<_>>()
    })?;
    let mut rows = Vec::with_capacity(ids.len());
    for c in chunks {
        rows.extend(c);
    }
    Ok(Relation::with_rows(base.name(), schema.clone(), rows)?)
}

/// Stable-sort the live row ids into presentation order, comparing
/// values in place through the slot table. Ties keep canonical (live)
/// order, so the result matches [`sort_presentation`] over the
/// materialized relation exactly.
fn presentation_order_ids(
    base: &Relation,
    state: &QueryState,
    slots: &HashMap<&str, usize>,
    bufs: &[Option<Vec<Value>>],
    live: &[u32],
    parallel: bool,
) -> Result<Vec<u32>> {
    let resolve = |name: &str| {
        slots.get(name).copied().ok_or_else(|| {
            // Same error a schema lookup in the naive engine produces.
            SheetError::Relation(ssa_relation::RelationError::UnknownColumn {
                name: name.to_string(),
            })
        })
    };
    let keys: Vec<(usize, bool)> = state
        .spec
        .sort_columns()
        .into_iter()
        .map(|(name, desc)| resolve(&name).map(|slot| (slot, desc)))
        .collect::<Result<_>>()?;
    if keys.is_empty() {
        return Ok(live.to_vec());
    }
    let width = base.schema().len();
    let base_rows = base.rows();

    // Sorting compares `Value`s many times per row (strings included), so
    // first reduce each key column to integer sort keys: an all-`Int`
    // column keeps its raw values (`Value::cmp` between Ints is integer
    // order); an all-`Str` column maps symbols to the interner's
    // lexicographic ranks (one snapshot fetch, then O(1) per row — no
    // string bytes touched); any other column gets *dense ranks* from one
    // ordered pass over its distinct values. Either way the sort then
    // compares plain `i64`s. Key columns rank independently, hence in
    // parallel.
    let rank_column = |&(slot, desc): &(usize, bool)| -> (Vec<i64>, bool) {
        let mut raw: Vec<i64> = Vec::with_capacity(live.len());
        for &row in live {
            match slot_value(base_rows, bufs, width, row, slot) {
                Value::Int(i) => raw.push(*i),
                _ => break,
            }
        }
        if raw.len() == live.len() {
            return (raw, desc);
        }
        raw.clear();
        let str_ranks = ssa_relation::intern::rank_snapshot();
        for &row in live {
            match slot_value(base_rows, bufs, width, row, slot) {
                Value::Str(s) => raw.push(str_ranks[s.id() as usize] as i64),
                _ => break,
            }
        }
        if raw.len() == live.len() {
            return (raw, desc);
        }
        let mut distinct: BTreeMap<&Value, i64> = BTreeMap::new();
        for &row in live {
            distinct.insert(slot_value(base_rows, bufs, width, row, slot), 0);
        }
        for (i, rank) in distinct.values_mut().enumerate() {
            *rank = i as i64;
        }
        let ranks = live
            .iter()
            .map(|&row| distinct[slot_value(base_rows, bufs, width, row, slot)])
            .collect();
        (ranks, desc)
    };
    let rank_cols: Vec<(Vec<i64>, bool)> = if parallel && keys.len() > 1 {
        std::thread::scope(|s| {
            let handles: Vec<_> = keys.iter().map(|k| s.spawn(|| rank_column(k))).collect();
            ssa_relation::par::join_all(handles)
        })?
    } else {
        keys.iter().map(rank_column).collect()
    };

    // Stable sort of *positions* into `live` by the rank tuples; ties
    // keep canonical order.
    let mut pos: Vec<u32> = (0..live.len() as u32).collect();
    let cmp = |a: u32, b: u32| {
        for (ranks, desc) in &rank_cols {
            let ord = ranks[a as usize].cmp(&ranks[b as usize]);
            let ord = if *desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };
    stable_sort_ids(&mut pos, parallel, cmp)?;
    Ok(pos.into_iter().map(|p| live[p as usize]).collect())
}

/// Stable sort of row ids: a plain `sort_by` sequentially, or a chunked
/// parallel merge sort (sorted runs merged pairwise, left run winning
/// ties, which preserves stability).
fn stable_sort_ids(
    ids: &mut Vec<u32>,
    parallel: bool,
    cmp: impl Fn(u32, u32) -> std::cmp::Ordering + Sync,
) -> Result<()> {
    let workers = if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        1
    };
    if workers <= 1 || ids.len() < 2 * workers {
        ids.sort_by(|&a, &b| cmp(a, b));
        return Ok(());
    }
    let chunk = ids.len().div_ceil(workers);
    let cmp = &cmp;
    let mut runs: Vec<Vec<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = ids
            .chunks(chunk)
            .map(|c| {
                s.spawn(move || {
                    let mut run = c.to_vec();
                    run.sort_by(|&a, &b| cmp(a, b));
                    run
                })
            })
            .collect();
        ssa_relation::par::join_all(handles)
    })?;
    while runs.len() > 1 {
        runs = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(runs.len().div_ceil(2));
            let mut it = runs.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => handles.push(s.spawn(move || merge_runs(a, b, cmp))),
                    None => handles.push(s.spawn(move || a)),
                }
            }
            ssa_relation::par::join_all(handles)
        })?;
    }
    debug_assert!(runs.len() == 1, "merge loop converges to one run");
    *ids = runs.pop().ok_or_else(|| SheetError::Internal {
        detail: "parallel sort produced no runs".into(),
    })?;
    Ok(())
}

fn merge_runs(
    a: Vec<u32>,
    b: Vec<u32>,
    cmp: &(impl Fn(u32, u32) -> std::cmp::Ordering + Sync),
) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        // `a`'s elements precede `b`'s in canonical order, so the left
        // run wins ties.
        if cmp(b[j], a[i]) == std::cmp::Ordering::Less {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Materialize one computed column into a columnar buffer over the base
/// row space, computing only the `live` entries (the rest stay NULL and
/// are never read).
fn materialize_buffer(
    base: &Relation,
    bufs: &[Option<Vec<Value>>],
    slots: &HashMap<&str, usize>,
    live: &[u32],
    col: &ComputedColumn,
    threshold: usize,
) -> Result<Vec<Value>> {
    ssa_relation::fault_check!("eval.materialize");
    let width = base.schema().len();
    let base_rows = base.rows();
    let parallel = live.len() >= threshold;
    let mut buf = vec![Value::Null; base_rows.len()];
    match &col.def {
        ComputedDef::Formula { expr } => {
            let compiled = CompiledExpr::compile(expr, &mut |n| slots.get(n).copied())?;
            let chunks = chunk_map(live, parallel, |chunk| {
                chunk
                    .iter()
                    .map(|&row| {
                        compiled.eval_owned(&EngineRow {
                            base_rows,
                            bufs,
                            width,
                            row,
                        })
                    })
                    .collect::<ssa_relation::Result<Vec<Value>>>()
            })?;
            let mut idx = 0;
            for chunk in chunks {
                for v in chunk? {
                    buf[live[idx] as usize] = v;
                    idx += 1;
                }
            }
        }
        ComputedDef::Aggregate {
            func,
            column,
            basis,
            level,
        } => {
            debug_assert!(*level >= 1);
            let resolve = |name: &str| {
                slots
                    .get(name)
                    .copied()
                    .ok_or_else(|| SheetError::UnknownColumn {
                        name: name.to_string(),
                    })
            };
            let basis_slots: Vec<usize> =
                basis.iter().map(|a| resolve(a)).collect::<Result<_>>()?;
            let col_slot = resolve(column)?;

            // Group membership over row ids. The empty basis (level 1)
            // is one whole-sheet group; a single-attribute basis groups
            // on borrowed values directly; only multi-attribute bases
            // pay for a composite key allocation per row.
            let groups: Vec<Vec<u32>> = match basis_slots.as_slice() {
                [] => vec![live.to_vec()],
                [s] => {
                    let mut m: BTreeMap<&Value, Vec<u32>> = BTreeMap::new();
                    for &row in live {
                        m.entry(slot_value(base_rows, bufs, width, row, *s))
                            .or_default()
                            .push(row);
                    }
                    m.into_values().collect()
                }
                _ => {
                    let mut m: BTreeMap<Vec<&Value>, Vec<u32>> = BTreeMap::new();
                    for &row in live {
                        let key: Vec<&Value> = basis_slots
                            .iter()
                            .map(|&s| slot_value(base_rows, bufs, width, row, s))
                            .collect();
                        m.entry(key).or_default().push(row);
                    }
                    m.into_values().collect()
                }
            };

            // Aggregate each group out of the column buffers; groups are
            // distributed across workers when the sheet is large.
            let members: Vec<Vec<u32>> = groups;
            let value_chunks = chunk_map(&members, parallel && members.len() > 1, |chunk| {
                chunk
                    .iter()
                    .map(|rows| {
                        let inputs: Vec<&Value> = rows
                            .iter()
                            .map(|&row| slot_value(base_rows, bufs, width, row, col_slot))
                            .collect();
                        func.apply_refs(&inputs)
                    })
                    .collect::<ssa_relation::Result<Vec<Value>>>()
            })?;
            let mut gi = 0;
            for chunk in value_chunks {
                for v in chunk? {
                    for &row in &members[gi] {
                        buf[row as usize] = v;
                    }
                    gi += 1;
                }
            }
        }
    }
    Ok(buf)
}

/// Filter the index vector through a fused conjunction of compiled
/// selection predicates in a single pass. The predicates come cost- and
/// selectivity-ordered from the plan; a row is kept only if every
/// predicate matches, with later predicates short-circuited — sound
/// because same-rank selections commute (Theorem 2) and `AND` is TRUE
/// exactly when all conjuncts are.
fn filter_rows(
    base: &Relation,
    bufs: &[Option<Vec<Value>>],
    compiled: &[&CompiledExpr],
    live: &[u32],
    threshold: usize,
) -> Result<Vec<u32>> {
    ssa_relation::fault_check!("eval.filter");
    let width = base.schema().len();
    let base_rows = base.rows();
    let parallel = live.len() >= threshold;
    let chunks = chunk_map(live, parallel, |chunk| {
        let mut keep = Vec::with_capacity(chunk.len());
        'rows: for &row in chunk {
            let engine_row = EngineRow {
                base_rows,
                bufs,
                width,
                row,
            };
            for c in compiled {
                if !c.matches(&engine_row)? {
                    continue 'rows;
                }
            }
            keep.push(row);
        }
        Ok::<_, ssa_relation::RelationError>(keep)
    })?;
    let mut out = Vec::with_capacity(live.len());
    for chunk in chunks {
        out.extend(chunk?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Incremental entry points (delta-aware cache, DESIGN.md §10)
// ---------------------------------------------------------------------

/// Compile `predicate` against `rel`'s schema and return the ids of the
/// rows satisfying it, in order — the incremental cache's
/// single-predicate index filter over an already-materialized relation.
/// Runs the same compiled-expression machinery as step 3, with the
/// relation's own columns as the slot table.
pub(crate) fn filter_relation(
    rel: &Relation,
    predicate: &Expr,
    threshold: usize,
) -> Result<Vec<u32>> {
    let schema = rel.schema();
    // Columnar fast path: a conjunction of `column OP literal` atoms —
    // the shape every narrowing edit takes — tests values directly with
    // `sql_cmp` semantics (NULL never passes), skipping compilation and
    // the per-row expression walk.
    if let Some(atoms) = predicate.as_column_cmp_conjunction() {
        if let Ok(resolved) = atoms
            .into_iter()
            .map(|(c, op, v)| schema.index_of(c).map(|i| (i, op.test(), v)))
            .collect::<ssa_relation::Result<Vec<_>>>()
        {
            // `col OP NULL` is never TRUE under `sql_cmp`, so a single
            // null literal empties the result — and its absence lets the
            // per-row test skip the literal check entirely.
            if resolved.iter().any(|(_, _, lit)| lit.is_null()) {
                return Ok(Vec::new());
            }
            let rows = rel.rows();
            let pass = |i: usize| {
                let t = &rows[i];
                resolved.iter().all(|(idx, test, lit)| {
                    let v = t.get(*idx);
                    !v.is_null() && test(v.cmp(lit))
                })
            };
            let workers = if rows.len() >= threshold {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(rows.len().max(1))
            } else {
                1
            };
            if workers > 1 {
                let chunk = rows.len().div_ceil(workers);
                let pass = &pass;
                let parts: Vec<Vec<u32>> = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let start = w * chunk;
                            let end = ((w + 1) * chunk).min(rows.len());
                            s.spawn(move || {
                                (start..end)
                                    .filter(|&i| pass(i))
                                    .map(|i| i as u32)
                                    .collect()
                            })
                        })
                        .collect();
                    ssa_relation::par::join_all(handles)
                })?;
                return Ok(parts.concat());
            }
            return Ok((0..rows.len())
                .filter(|&i| pass(i))
                .map(|i| i as u32)
                .collect());
        }
        // Unresolvable column: let the compiled path produce its error.
    }
    let compiled = CompiledExpr::compile(predicate, &mut |n| schema.index_of(n).ok())?;
    let live: Vec<u32> = (0..rel.len() as u32).collect();
    filter_rows(rel, &[], &[&compiled], &live, threshold)
}

/// Materialize one computed column over `rel`'s rows — the incremental
/// cache's single-column append/refresh entry point. Returns one value
/// per row plus the unified static type, exactly as [`result_schema`]
/// would derive it for this column.
pub(crate) fn compute_column_values(
    rel: &Relation,
    col: &ComputedColumn,
    threshold: usize,
) -> Result<(Vec<Value>, ValueType)> {
    let mut slots: HashMap<&str, usize> = HashMap::with_capacity(rel.schema().len());
    for (i, name) in rel.schema().names().into_iter().enumerate() {
        slots.insert(name, i);
    }
    let live: Vec<u32> = (0..rel.len() as u32).collect();
    let values = materialize_buffer(rel, &[], &slots, &live, col, threshold)?;
    let ty = values
        .iter()
        .fold(ValueType::Null, |t, v| t.unify(v.value_type()));
    Ok((values, ty))
}

// ---------------------------------------------------------------------
// Naive engine (differential-testing oracle, bench baseline)
// ---------------------------------------------------------------------

fn evaluate_full_naive(
    base: &Relation,
    state: &QueryState,
    plan: &Plan,
) -> Result<(Derived, Relation)> {
    // Step 1–2: base data, dedup on R-tuples.
    let mut data = base.clone();
    if state.dedup {
        data = ops::distinct(&data)?;
    }

    // Step 3: layered materialization and filtering.
    for rank in 0..=plan.max_rank {
        for (col, &r) in state.computed.iter().zip(&plan.ranks) {
            if r == rank {
                materialize(&mut data, col, state)?;
            }
        }
        for (sel, &r) in state.selections.iter().zip(&plan.sel_ranks) {
            if r == rank {
                data = ops::select(&data, &sel.predicate)?;
            }
        }
    }

    // Step 4: automatic update — recompute every computed column over the
    // final multiset, in rank order.
    let order = plan.rank_order();
    for &i in &order {
        data.drop_column(&state.computed[i].name)?;
    }
    for &i in &order {
        materialize(&mut data, &state.computed[i], state)?;
    }

    // Step 5: presentation order + tree.
    let canonical = data.clone();
    data = sort_presentation(&data, &state.spec)?;
    let level_bases: Vec<Vec<String>> = state.spec.levels.iter().map(|l| l.basis.clone()).collect();
    let tree = build_tree(&data, &level_bases);

    let visible = visible_columns(base, state);
    Ok((
        Derived {
            data,
            tree,
            visible,
        },
        canonical,
    ))
}

/// Display order: base columns in base order minus projected-out, then
/// computed columns in creation order minus projected-out ("result column
/// appears next to rightmost column", Sec. VI-A).
pub fn visible_columns(base: &Relation, state: &QueryState) -> Vec<String> {
    let mut out: Vec<String> = base
        .schema()
        .names()
        .iter()
        .filter(|n| !state.projected_out.contains(**n))
        .map(|n| n.to_string())
        .collect();
    for c in &state.computed {
        if !state.projected_out.contains(&c.name) {
            out.push(c.name.clone());
        }
    }
    out
}

/// Materialize one computed column over the current data (naive engine).
fn materialize(data: &mut Relation, col: &ComputedColumn, state: &QueryState) -> Result<()> {
    match &col.def {
        ComputedDef::Formula { expr } => {
            let mut ty = ValueType::Null;
            let mut values = Vec::with_capacity(data.len());
            for t in data.rows() {
                let v = expr.eval(data.schema(), t)?;
                ty = ty.unify(v.value_type());
                values.push(v);
            }
            let mut it = values.into_iter();
            // invariant: `values` holds exactly one entry per row and
            // `add_column` calls the closure exactly once per row.
            data.add_column(Column::new(col.name.clone(), ty), |_, _| {
                it.next().unwrap_or(Value::Null)
            })?;
        }
        ComputedDef::Aggregate {
            func,
            column,
            basis,
            level,
        } => {
            // Group by the aggregate's basis. An aggregate at level 1 has
            // an empty basis: one group spanning the whole sheet.
            debug_assert!(*level >= 1);
            let basis_idx: Vec<usize> = basis
                .iter()
                .map(|a| data.schema().index_of(a))
                .collect::<ssa_relation::Result<_>>()?;
            let col_idx = data.schema().index_of(column)?;
            let mut groups: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
            for (ri, t) in data.rows().iter().enumerate() {
                let key: Vec<Value> = basis_idx.iter().map(|&i| *t.get(i)).collect();
                groups.entry(key).or_default().push(ri);
            }
            let mut per_row: Vec<Value> = vec![Value::Null; data.len()];
            let mut ty = ValueType::Null;
            for members in groups.values() {
                let inputs: Vec<Value> = members
                    .iter()
                    .map(|&ri| *data.rows()[ri].get(col_idx))
                    .collect();
                let v = func.apply(&inputs)?;
                ty = ty.unify(v.value_type());
                for &ri in members {
                    per_row[ri] = v;
                }
            }
            let mut it = per_row.into_iter();
            // invariant: `per_row` was sized to `data.len()` above.
            data.add_column(Column::new(col.name.clone(), ty), |_, _| {
                it.next().unwrap_or(Value::Null)
            })?;
        }
    }
    // `state` is only used for debug assertions today, but threading it
    // through keeps the signature stable for future level-validation.
    let _ = state;
    Ok(())
}

// ---------------------------------------------------------------------
// Presentation order (shared)
// ---------------------------------------------------------------------

/// The permutation that puts `data`'s rows into presentation order:
/// group keys of each level (with that level's direction over the whole
/// key tuple), then the finest-level ordering keys. The sort is stable,
/// so ties keep `data`'s (canonical) order.
pub(crate) fn presentation_permutation(data: &Relation, spec: &Spec) -> Result<Vec<u32>> {
    let keys: Vec<(usize, bool)> = spec
        .sort_columns()
        .into_iter()
        .map(|(name, desc)| data.schema().index_of(&name).map(|i| (i, desc)))
        .collect::<ssa_relation::Result<_>>()?;
    let rows = data.rows();
    let mut perm: Vec<u32> = (0..rows.len() as u32).collect();
    perm.sort_by(|&a, &b| {
        let (ra, rb) = (&rows[a as usize], &rows[b as usize]);
        for &(i, desc) in &keys {
            let ord = ra.get(i).cmp(rb.get(i));
            let ord = if desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(perm)
}

/// Sort rows into presentation order (see
/// [`presentation_permutation`]).
///
/// Public within the crate: the sheet's fast-reorganization path re-sorts
/// an already-evaluated relation when only `G`/`O` changed.
pub(crate) fn sort_presentation(data: &Relation, spec: &Spec) -> Result<Relation> {
    Ok(data.take_rows(&presentation_permutation(data, spec)?))
}

/// Convenience used by tests and the Theorem-1 translator: evaluate and
/// keep only the visible relation.
pub fn evaluate_visible(base: &Relation, state: &QueryState) -> Result<Relation> {
    evaluate(base, state)?.visible_relation()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Direction, GroupLevel, OrderKey};
    use ssa_relation::schema::Schema;
    use ssa_relation::ValueType::{Int, Str};
    use ssa_relation::{tuple, AggFunc, Expr};

    /// The paper's Table I data.
    pub fn table1() -> Relation {
        Relation::with_rows(
            "cars",
            Schema::of(&[
                ("ID", Int),
                ("Model", Str),
                ("Price", Int),
                ("Year", Int),
                ("Mileage", Int),
                ("Condition", Str),
            ]),
            vec![
                tuple![304, "Jetta", 14500, 2005, 76000, "Good"],
                tuple![872, "Jetta", 15000, 2005, 50000, "Excellent"],
                tuple![901, "Jetta", 16000, 2005, 40000, "Excellent"],
                tuple![423, "Jetta", 17000, 2006, 42000, "Good"],
                tuple![723, "Jetta", 17500, 2006, 39000, "Excellent"],
                tuple![725, "Jetta", 18000, 2006, 30000, "Excellent"],
                tuple![132, "Civic", 13500, 2005, 86000, "Good"],
                tuple![879, "Civic", 15000, 2006, 68000, "Good"],
                tuple![322, "Civic", 16000, 2006, 73000, "Good"],
            ],
        )
        .unwrap()
    }

    fn paper_state() -> QueryState {
        // Grouped by Model DESC then Year ASC, ordered by Price ASC.
        let mut st = QueryState::new();
        st.spec
            .levels
            .push(GroupLevel::new(["Model"], Direction::Desc));
        st.spec
            .levels
            .push(GroupLevel::new(["Year"], Direction::Asc));
        st.spec.finest_order.push(OrderKey::asc("Price"));
        st
    }

    fn ids(d: &Derived) -> Vec<i64> {
        d.data
            .rows()
            .iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                other => panic!("ID should be int, got {other}"),
            })
            .collect()
    }

    #[test]
    fn empty_state_is_identity_modulo_order() {
        let base = table1();
        let d = evaluate(&base, &QueryState::new()).unwrap();
        assert_eq!(d.len(), 9);
        assert!(d.visible_relation().unwrap().multiset_eq(&base));
        assert_eq!(d.tree.depth(), 1);
    }

    #[test]
    fn paper_table_i_presentation_order() {
        // Table I is exactly: grouped Model DESC, Year ASC, Price ASC.
        let d = evaluate(&table1(), &paper_state()).unwrap();
        assert_eq!(ids(&d), vec![304, 872, 901, 423, 723, 725, 132, 879, 322]);
        assert_eq!(d.tree.depth(), 3);
        assert_eq!(d.tree.groups_at_level(2).len(), 2);
        assert_eq!(d.tree.groups_at_level(3).len(), 4);
    }

    #[test]
    fn selection_filters_and_retains_grouping() {
        let mut st = paper_state();
        st.add_selection(Expr::col("Condition").eq(Expr::lit("Excellent")));
        let d = evaluate(&table1(), &st).unwrap();
        assert_eq!(ids(&d), vec![872, 901, 723, 725]);
        assert_eq!(d.tree.depth(), 3);
    }

    #[test]
    fn aggregate_repeats_value_per_group_like_table_iii() {
        let mut st = QueryState::new();
        st.spec
            .levels
            .push(GroupLevel::new(["Model"], Direction::Desc));
        st.spec
            .levels
            .push(GroupLevel::new(["Year"], Direction::Asc));
        st.spec.finest_order.push(OrderKey::asc("Price"));
        st.computed.push(ComputedColumn::aggregate(
            "Avg_Price",
            AggFunc::Avg,
            "Price",
            3,
            vec!["Model".into(), "Year".into()],
        ));
        let d = evaluate(&table1(), &st).unwrap();
        let col = d.data.column_values("Avg_Price").unwrap();
        // Jetta 2005 avg = 15166.67 on first three rows
        let Value::Float(v) = &col[0] else { panic!() };
        assert!((v - 15166.6667).abs() < 0.01);
        assert_eq!(col[0], col[1]);
        assert_eq!(col[0], col[2]);
        // Jetta 2006 avg = 17500
        assert_eq!(col[3], Value::Float(17500.0));
        // Civic 2005 avg = 13500 (single row, position 6)
        assert_eq!(col[6], Value::Float(13500.0));
        // Civic 2006 avg = 15500
        assert_eq!(col[7], Value::Float(15500.0));
    }

    #[test]
    fn aggregate_level_one_spans_whole_sheet() {
        let mut st = QueryState::new();
        st.computed.push(ComputedColumn::aggregate(
            "MaxP",
            AggFunc::Max,
            "Price",
            1,
            vec![],
        ));
        let d = evaluate(&table1(), &st).unwrap();
        let col = d.data.column_values("MaxP").unwrap();
        assert!(col.iter().all(|v| v == &Value::Int(18000)));
    }

    #[test]
    fn aggregates_auto_update_after_selection() {
        // Theorem 2's key case: selection and aggregation commute because
        // aggregates recompute over surviving tuples.
        let mut st = QueryState::new();
        st.computed.push(ComputedColumn::aggregate(
            "Avg_Price",
            AggFunc::Avg,
            "Price",
            1,
            vec![],
        ));
        st.add_selection(Expr::col("Model").eq(Expr::lit("Civic")));
        let d = evaluate(&table1(), &st).unwrap();
        let col = d.data.column_values("Avg_Price").unwrap();
        // avg over the three Civics only: (13500+15000+16000)/3 = 14833.33
        let Value::Float(v) = &col[0] else { panic!() };
        assert!((v - 14833.3333).abs() < 0.01);
    }

    #[test]
    fn selection_on_aggregate_uses_pre_filter_average() {
        // Fig. 2 scenario: filter Price < Avg_Price(Model, Year).
        let mut st = QueryState::new();
        st.computed.push(ComputedColumn::aggregate(
            "Avg_Price",
            AggFunc::Avg,
            "Price",
            1,
            vec![],
        ));
        st.add_selection(Expr::col("Price").lt(Expr::col("Avg_Price")));
        let d = evaluate(&table1(), &st).unwrap();
        // global avg = (14500+15000+16000+17000+17500+18000+13500+15000+16000)/9
        // = 142500/9 = 15833.33; cars below: 14500,15000,13500,15000 → 4 rows
        assert_eq!(d.len(), 4);
        // displayed Avg_Price is recomputed over the survivors
        let col = d.data.column_values("Avg_Price").unwrap();
        let Value::Float(v) = &col[0] else { panic!() };
        assert!((v - 14500.0).abs() < 0.01); // (14500+15000+13500+15000)/4
    }

    #[test]
    fn formula_column_row_wise() {
        let mut st = QueryState::new();
        st.computed.push(ComputedColumn::formula(
            "PriceK",
            Expr::col("Price").div(Expr::lit(1000)),
        ));
        let d = evaluate(&table1(), &st).unwrap();
        assert_eq!(d.data.value_at(0, "PriceK").unwrap(), &Value::Float(14.5));
    }

    #[test]
    fn dedup_on_r_tuples_ignores_projection() {
        let base = Relation::with_rows(
            "r",
            Schema::of(&[("x", Int), ("y", Int)]),
            vec![tuple![1, 10], tuple![1, 20], tuple![1, 10]],
        )
        .unwrap();
        let mut st = QueryState::new();
        st.projected_out.insert("y".into());
        st.dedup = true;
        let d = evaluate(&base, &st).unwrap();
        // dedup on full R-tuples: (1,10) duplicated once → 2 rows remain,
        // even though the visible column x makes them look identical.
        assert_eq!(d.len(), 2);
        assert_eq!(d.visible, vec!["x".to_string()]);
        assert_eq!(d.visible_relation().unwrap().schema().names(), vec!["x"]);
    }

    #[test]
    fn hidden_column_still_filters() {
        let mut st = QueryState::new();
        st.projected_out.insert("Condition".into());
        st.add_selection(Expr::col("Condition").eq(Expr::lit("Good")));
        let d = evaluate(&table1(), &st).unwrap();
        assert_eq!(d.len(), 5);
        assert!(!d.visible.contains(&"Condition".to_string()));
    }

    #[test]
    fn unknown_selection_column_is_error() {
        let mut st = QueryState::new();
        st.add_selection(Expr::col("Ghost").eq(Expr::lit(1)));
        assert_eq!(
            evaluate(&table1(), &st),
            Err(SheetError::UnknownColumn {
                name: "Ghost".into()
            })
        );
    }

    #[test]
    fn multi_attribute_level_groups_on_key_tuple() {
        let mut st = QueryState::new();
        st.spec
            .levels
            .push(GroupLevel::new(["Model", "Year"], Direction::Asc));
        let d = evaluate(&table1(), &st).unwrap();
        assert_eq!(d.tree.groups_at_level(2).len(), 4);
        // ASC on (Model, Year): Civic 2005, Civic 2006, Jetta 2005, Jetta 2006
        let keys: Vec<String> = d
            .tree
            .groups_at_level(2)
            .iter()
            .map(|g| format!("{} {}", g.key[0].1, g.key[1].1))
            .collect();
        assert_eq!(
            keys,
            vec!["Civic 2005", "Civic 2006", "Jetta 2005", "Jetta 2006"]
        );
    }

    #[test]
    fn equivalent_ignores_computed_column_order() {
        let mut a = QueryState::new();
        a.computed.push(ComputedColumn::formula(
            "F1",
            Expr::col("Price").add(Expr::lit(1)),
        ));
        a.computed.push(ComputedColumn::formula(
            "F2",
            Expr::col("Year").add(Expr::lit(1)),
        ));
        let mut b = QueryState::new();
        b.computed.push(ComputedColumn::formula(
            "F2",
            Expr::col("Year").add(Expr::lit(1)),
        ));
        b.computed.push(ComputedColumn::formula(
            "F1",
            Expr::col("Price").add(Expr::lit(1)),
        ));
        let da = evaluate(&table1(), &a).unwrap();
        let db = evaluate(&table1(), &b).unwrap();
        assert_ne!(da, db, "column order differs");
        assert!(da.equivalent(&db), "content is the same");
        // and a genuinely different sheet is not equivalent
        let mut c = b.clone();
        c.add_selection(Expr::col("Year").eq(Expr::lit(2005)));
        let dc = evaluate(&table1(), &c).unwrap();
        assert!(!da.equivalent(&dc));
    }

    #[test]
    fn visible_columns_order_base_then_computed() {
        let mut st = QueryState::new();
        st.computed.push(ComputedColumn::formula(
            "F1",
            Expr::col("Price").add(Expr::lit(1)),
        ));
        st.projected_out.insert("Mileage".into());
        let cols = visible_columns(&table1(), &st);
        assert_eq!(
            cols,
            vec!["ID", "Model", "Price", "Year", "Condition", "F1"]
        );
    }

    /// A state exercising every pipeline stage: dedup, formula, two
    /// aggregates (one referenced by a selection), two selections at
    /// different ranks, projection, two grouping levels, ordering.
    fn full_pipeline_state() -> QueryState {
        let mut st = QueryState::new();
        st.dedup = true;
        st.spec
            .levels
            .push(GroupLevel::new(["Model"], Direction::Desc));
        st.spec
            .levels
            .push(GroupLevel::new(["Year"], Direction::Asc));
        st.spec.finest_order.push(OrderKey::asc("Mileage"));
        st.computed.push(ComputedColumn::formula(
            "PriceK",
            Expr::col("Price").div(Expr::lit(1000)),
        ));
        st.computed.push(ComputedColumn::aggregate(
            "Avg_Price",
            AggFunc::Avg,
            "Price",
            2,
            vec!["Model".into()],
        ));
        st.add_selection(Expr::col("Price").le(Expr::col("Avg_Price")));
        st.add_selection(Expr::col("Year").ge(Expr::lit(2005)));
        st.projected_out.insert("Condition".into());
        st
    }

    #[test]
    fn engines_agree_on_full_pipeline() {
        let base = table1();
        let st = full_pipeline_state();
        let naive = evaluate_with(
            &base,
            &st,
            EvalOptions {
                naive: true,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let indexed = evaluate_with(&base, &st, EvalOptions::default()).unwrap();
        assert_eq!(naive, indexed);
        // canonical relations agree too (fast-reorganize path input)
        let (_, cn, _) = evaluate_full_with(
            &base,
            &st,
            EvalOptions {
                naive: true,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let (_, ci, prov) = evaluate_full_with(&base, &st, EvalOptions::default()).unwrap();
        assert_eq!(cn, ci);
        // The permutation really maps presentation rows to canonical rows,
        // and base ids map canonical rows back to base rows (ascending).
        let (di, _, _) = evaluate_full_with(&base, &st, EvalOptions::default()).unwrap();
        let (perm, base_ids) = prov.expect("indexed engine returns row provenance");
        for (j, &src) in perm.iter().enumerate() {
            assert_eq!(di.data.rows()[j], ci.rows()[src as usize]);
        }
        assert_eq!(base_ids.len(), ci.len());
        assert!(base_ids.windows(2).all(|w| w[0] < w[1]));
        let width = base.schema().len();
        for (i, &b) in base_ids.iter().enumerate() {
            assert_eq!(
                &ci.rows()[i].values()[..width],
                base.rows()[b as usize].values()
            );
        }
    }

    #[test]
    fn parallel_threshold_does_not_change_results() {
        let base = table1();
        let st = full_pipeline_state();
        let sequential = evaluate_with(
            &base,
            &st,
            EvalOptions {
                naive: false,
                parallel_threshold: usize::MAX,
            },
        )
        .unwrap();
        let parallel = evaluate_with(
            &base,
            &st,
            EvalOptions {
                naive: false,
                parallel_threshold: 1,
            },
        )
        .unwrap();
        assert_eq!(sequential, parallel);
    }
}
