//! Canonical evaluation: query state × base data → evaluated spreadsheet.
//!
//! Operators in this crate edit the [`QueryState`]; this module gives the
//! state its single, deterministic meaning. Because evaluation is a pure
//! function of `(base, state)`, any two operator sequences that produce
//! the same state produce the same spreadsheet — the engine-level fact
//! behind Theorem 2 (commutativity) and Theorem 3 (state change ≡ history
//! rewrite).
//!
//! The canonical pipeline:
//!
//! 1. start from the base data (all of `R`'s columns, hidden or not);
//! 2. if duplicate elimination is in force, remove duplicate `R`-tuples;
//! 3. process *ranks* in increasing order — materialize the computed
//!    columns of each rank (aggregates are computed over the tuples that
//!    survive the selections of lower ranks), then apply the selections of
//!    that rank. A selection's rank is the maximum rank of the columns it
//!    references, so a predicate over `Avg_Price` runs only after
//!    `Avg_Price` exists: precedence (Sec. IV-B), operationalized;
//! 4. re-materialize every computed column over the final multiset — the
//!    *automatic update* property of computed columns (Sec. III-B);
//! 5. sort into presentation order (group keys level by level, then the
//!    finest-level ordering) and build the group tree.

use crate::computed::{column_rank, compute_ranks, ComputedColumn, ComputedDef};
use crate::error::{Result, SheetError};
use crate::spec::Spec;
use crate::state::QueryState;
use crate::tree::{build_tree, GroupTree};
use ssa_relation::relation::Relation;
use ssa_relation::schema::Column;
use ssa_relation::value::{Value, ValueType};
use ssa_relation::ops;
use std::collections::{BTreeMap, BTreeSet};

/// An evaluated spreadsheet: data in presentation order, the group tree
/// over it, and the visible columns in display order.
#[derive(Debug, Clone, PartialEq)]
pub struct Derived {
    /// All columns (base + computed), rows in presentation order.
    pub data: Relation,
    /// Grouping materialized over `data`'s rows.
    pub tree: GroupTree,
    /// Column names shown to the user, in display order.
    pub visible: Vec<String>,
}

impl Derived {
    /// The user-facing relation: visible columns only, presentation order.
    pub fn visible_relation(&self) -> Relation {
        let cols: Vec<&str> = self.visible.iter().map(|s| s.as_str()).collect();
        ops::project(&self.data, &cols).expect("visible columns exist in data")
    }

    /// Number of (surviving) tuples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Equality modulo column arrangement.
    ///
    /// Two computed columns created in either order yield the same
    /// spreadsheet *content* but different left-to-right placement ("the
    /// result column appears next to the rightmost column", Sec. VI-A).
    /// Theorem 2's commutativity is about content, so this comparison
    /// checks: same visible column set, same hidden column set, identical
    /// per-column values in presentation order, and the same group tree.
    pub fn equivalent(&self, other: &Derived) -> bool {
        let set = |v: &[String]| -> BTreeSet<String> { v.iter().cloned().collect() };
        if set(&self.visible) != set(&other.visible) {
            return false;
        }
        let my_cols: BTreeSet<String> =
            self.data.schema().names().iter().map(|s| s.to_string()).collect();
        let their_cols: BTreeSet<String> =
            other.data.schema().names().iter().map(|s| s.to_string()).collect();
        if my_cols != their_cols || self.data.len() != other.data.len() {
            return false;
        }
        for col in &my_cols {
            let a = self.data.column_values(col).expect("column listed");
            let b = other.data.column_values(col).expect("column listed");
            if a != b {
                return false;
            }
        }
        self.tree == other.tree
    }
}

/// Evaluate `state` over `base`.
pub fn evaluate(base: &Relation, state: &QueryState) -> Result<Derived> {
    evaluate_full(base, state).map(|(derived, _)| derived)
}

/// Evaluate, also returning the *canonical* (pre-presentation-sort) data.
/// The sheet's reorganize fast path re-sorts from this canonical order so
/// tie-breaking matches a from-scratch evaluation exactly (stable sort
/// over base insertion order).
pub(crate) fn evaluate_full(
    base: &Relation,
    state: &QueryState,
) -> Result<(Derived, Relation)> {
    let base_cols: BTreeSet<String> =
        base.schema().names().iter().map(|s| s.to_string()).collect();

    // Validate references before touching data.
    for col in state.referenced_columns() {
        if !base_cols.contains(&col) && !state.is_computed(&col) {
            return Err(SheetError::UnknownColumn { name: col });
        }
    }
    let ranks = compute_ranks(&base_cols, &state.computed).ok_or_else(|| {
        SheetError::Relation(ssa_relation::RelationError::TypeMismatch {
            context: "cyclic computed-column definitions".into(),
        })
    })?;

    // Step 1–2: base data, dedup on R-tuples.
    let mut data = base.clone();
    if state.dedup {
        data = ops::distinct(&data)?;
    }

    // Selection ranks.
    let sel_ranks: Vec<usize> = state
        .selections
        .iter()
        .map(|s| {
            s.predicate
                .columns()
                .iter()
                .map(|c| {
                    column_rank(c, &base_cols, &state.computed, &ranks)
                        .ok_or_else(|| SheetError::UnknownColumn { name: c.clone() })
                })
                .try_fold(0usize, |acc, r| r.map(|r| acc.max(r)))
        })
        .collect::<Result<_>>()?;

    let max_rank = ranks
        .iter()
        .chain(sel_ranks.iter())
        .copied()
        .max()
        .unwrap_or(0);

    // Step 3: layered materialization and filtering.
    for rank in 0..=max_rank {
        for (col, &r) in state.computed.iter().zip(&ranks) {
            if r == rank {
                materialize(&mut data, col, state)?;
            }
        }
        for (sel, &r) in state.selections.iter().zip(&sel_ranks) {
            if r == rank {
                data = ops::select(&data, &sel.predicate)?;
            }
        }
    }

    // Step 4: automatic update — recompute every computed column over the
    // final multiset, in rank order.
    let mut order: Vec<usize> = (0..state.computed.len()).collect();
    order.sort_by_key(|&i| ranks[i]);
    for &i in &order {
        data.drop_column(&state.computed[i].name)?;
    }
    for &i in &order {
        materialize(&mut data, &state.computed[i], state)?;
    }

    // Step 5: presentation order + tree.
    let canonical = data.clone();
    data = sort_presentation(&data, &state.spec)?;
    let level_bases: Vec<Vec<String>> =
        state.spec.levels.iter().map(|l| l.basis.clone()).collect();
    let tree = build_tree(&data, &level_bases);

    let visible = visible_columns(base, state);
    Ok((Derived { data, tree, visible }, canonical))
}

/// Display order: base columns in base order minus projected-out, then
/// computed columns in creation order minus projected-out ("result column
/// appears next to rightmost column", Sec. VI-A).
pub fn visible_columns(base: &Relation, state: &QueryState) -> Vec<String> {
    let mut out: Vec<String> = base
        .schema()
        .names()
        .iter()
        .filter(|n| !state.projected_out.contains(**n))
        .map(|n| n.to_string())
        .collect();
    for c in &state.computed {
        if !state.projected_out.contains(&c.name) {
            out.push(c.name.clone());
        }
    }
    out
}

/// Materialize one computed column over the current data.
fn materialize(data: &mut Relation, col: &ComputedColumn, state: &QueryState) -> Result<()> {
    match &col.def {
        ComputedDef::Formula { expr } => {
            let mut ty = ValueType::Null;
            let mut values = Vec::with_capacity(data.len());
            for t in data.rows() {
                let v = expr.eval(data.schema(), t)?;
                ty = ty.unify(v.value_type());
                values.push(v);
            }
            let mut it = values.into_iter();
            data.add_column(Column::new(col.name.clone(), ty), |_, _| {
                it.next().expect("stable row count")
            })?;
        }
        ComputedDef::Aggregate { func, column, basis, level } => {
            // Group by the aggregate's basis. An aggregate at level 1 has
            // an empty basis: one group spanning the whole sheet.
            debug_assert!(*level >= 1);
            let basis_idx: Vec<usize> = basis
                .iter()
                .map(|a| data.schema().index_of(a))
                .collect::<ssa_relation::Result<_>>()?;
            let col_idx = data.schema().index_of(column)?;
            let mut groups: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
            for (ri, t) in data.rows().iter().enumerate() {
                let key: Vec<Value> = basis_idx.iter().map(|&i| t.get(i).clone()).collect();
                groups.entry(key).or_default().push(ri);
            }
            let mut per_row: Vec<Value> = vec![Value::Null; data.len()];
            let mut ty = ValueType::Null;
            for members in groups.values() {
                let inputs: Vec<Value> = members
                    .iter()
                    .map(|&ri| data.rows()[ri].get(col_idx).clone())
                    .collect();
                let v = func.apply(&inputs)?;
                ty = ty.unify(v.value_type());
                for &ri in members {
                    per_row[ri] = v.clone();
                }
            }
            let mut it = per_row.into_iter();
            data.add_column(Column::new(col.name.clone(), ty), |_, _| {
                it.next().expect("stable row count")
            })?;
        }
    }
    // `state` is only used for debug assertions today, but threading it
    // through keeps the signature stable for future level-validation.
    let _ = state;
    Ok(())
}

/// Sort rows into presentation order: group keys of each level (with that
/// level's direction over the whole key tuple), then the finest-level
/// ordering keys. Stable, so earlier arrangements break remaining ties.
///
/// Public within the crate: the sheet's fast-reorganization path re-sorts
/// an already-evaluated relation when only `G`/`O` changed.
pub(crate) fn sort_presentation(data: &Relation, spec: &Spec) -> Result<Relation> {
    struct Key {
        indices: Vec<usize>,
        desc: bool,
    }
    let mut keys: Vec<Key> = Vec::new();
    for level in &spec.levels {
        let indices: Vec<usize> = level
            .basis
            .iter()
            .map(|a| data.schema().index_of(a))
            .collect::<ssa_relation::Result<_>>()?;
        keys.push(Key { indices, desc: matches!(level.direction, crate::spec::Direction::Desc) });
    }
    for k in &spec.finest_order {
        let idx = data.schema().index_of(&k.attribute)?;
        keys.push(Key {
            indices: vec![idx],
            desc: matches!(k.direction, crate::spec::Direction::Desc),
        });
    }
    let mut rows = data.rows().to_vec();
    rows.sort_by(|a, b| {
        for k in &keys {
            for &i in &k.indices {
                let ord = a.get(i).cmp(b.get(i));
                let ord = if k.desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(Relation::with_rows(data.name(), data.schema().clone(), rows)
        .expect("re-sorting preserves widths"))
}

/// Convenience used by tests and the Theorem-1 translator: evaluate and
/// keep only the visible relation.
pub fn evaluate_visible(base: &Relation, state: &QueryState) -> Result<Relation> {
    Ok(evaluate(base, state)?.visible_relation())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Direction, GroupLevel, OrderKey};
    use ssa_relation::schema::Schema;
    use ssa_relation::{tuple, AggFunc, Expr};
    use ssa_relation::ValueType::{Int, Str};

    /// The paper's Table I data.
    pub fn table1() -> Relation {
        Relation::with_rows(
            "cars",
            Schema::of(&[
                ("ID", Int),
                ("Model", Str),
                ("Price", Int),
                ("Year", Int),
                ("Mileage", Int),
                ("Condition", Str),
            ]),
            vec![
                tuple![304, "Jetta", 14500, 2005, 76000, "Good"],
                tuple![872, "Jetta", 15000, 2005, 50000, "Excellent"],
                tuple![901, "Jetta", 16000, 2005, 40000, "Excellent"],
                tuple![423, "Jetta", 17000, 2006, 42000, "Good"],
                tuple![723, "Jetta", 17500, 2006, 39000, "Excellent"],
                tuple![725, "Jetta", 18000, 2006, 30000, "Excellent"],
                tuple![132, "Civic", 13500, 2005, 86000, "Good"],
                tuple![879, "Civic", 15000, 2006, 68000, "Good"],
                tuple![322, "Civic", 16000, 2006, 73000, "Good"],
            ],
        )
        .unwrap()
    }

    fn paper_state() -> QueryState {
        // Grouped by Model DESC then Year ASC, ordered by Price ASC.
        let mut st = QueryState::new();
        st.spec.levels.push(GroupLevel::new(["Model"], Direction::Desc));
        st.spec.levels.push(GroupLevel::new(["Year"], Direction::Asc));
        st.spec.finest_order.push(OrderKey::asc("Price"));
        st
    }

    fn ids(d: &Derived) -> Vec<i64> {
        d.data
            .rows()
            .iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                other => panic!("ID should be int, got {other}"),
            })
            .collect()
    }

    #[test]
    fn empty_state_is_identity_modulo_order() {
        let base = table1();
        let d = evaluate(&base, &QueryState::new()).unwrap();
        assert_eq!(d.len(), 9);
        assert!(d.visible_relation().multiset_eq(&base));
        assert_eq!(d.tree.depth(), 1);
    }

    #[test]
    fn paper_table_i_presentation_order() {
        // Table I is exactly: grouped Model DESC, Year ASC, Price ASC.
        let d = evaluate(&table1(), &paper_state()).unwrap();
        assert_eq!(
            ids(&d),
            vec![304, 872, 901, 423, 723, 725, 132, 879, 322]
        );
        assert_eq!(d.tree.depth(), 3);
        assert_eq!(d.tree.groups_at_level(2).len(), 2);
        assert_eq!(d.tree.groups_at_level(3).len(), 4);
    }

    #[test]
    fn selection_filters_and_retains_grouping() {
        let mut st = paper_state();
        st.add_selection(Expr::col("Condition").eq(Expr::lit("Excellent")));
        let d = evaluate(&table1(), &st).unwrap();
        assert_eq!(ids(&d), vec![872, 901, 723, 725]);
        assert_eq!(d.tree.depth(), 3);
    }

    #[test]
    fn aggregate_repeats_value_per_group_like_table_iii() {
        let mut st = QueryState::new();
        st.spec.levels.push(GroupLevel::new(["Model"], Direction::Desc));
        st.spec.levels.push(GroupLevel::new(["Year"], Direction::Asc));
        st.spec.finest_order.push(OrderKey::asc("Price"));
        st.computed.push(ComputedColumn::aggregate(
            "Avg_Price",
            AggFunc::Avg,
            "Price",
            3,
            vec!["Model".into(), "Year".into()],
        ));
        let d = evaluate(&table1(), &st).unwrap();
        let col = d.data.column_values("Avg_Price").unwrap();
        // Jetta 2005 avg = 15166.67 on first three rows
        let Value::Float(v) = &col[0] else { panic!() };
        assert!((v - 15166.6667).abs() < 0.01);
        assert_eq!(col[0], col[1]);
        assert_eq!(col[0], col[2]);
        // Jetta 2006 avg = 17500
        assert_eq!(col[3], Value::Float(17500.0));
        // Civic 2005 avg = 13500 (single row, position 6)
        assert_eq!(col[6], Value::Float(13500.0));
        // Civic 2006 avg = 15500
        assert_eq!(col[7], Value::Float(15500.0));
    }

    #[test]
    fn aggregate_level_one_spans_whole_sheet() {
        let mut st = QueryState::new();
        st.computed.push(ComputedColumn::aggregate(
            "MaxP",
            AggFunc::Max,
            "Price",
            1,
            vec![],
        ));
        let d = evaluate(&table1(), &st).unwrap();
        let col = d.data.column_values("MaxP").unwrap();
        assert!(col.iter().all(|v| v == &Value::Int(18000)));
    }

    #[test]
    fn aggregates_auto_update_after_selection() {
        // Theorem 2's key case: selection and aggregation commute because
        // aggregates recompute over surviving tuples.
        let mut st = QueryState::new();
        st.computed.push(ComputedColumn::aggregate(
            "Avg_Price",
            AggFunc::Avg,
            "Price",
            1,
            vec![],
        ));
        st.add_selection(Expr::col("Model").eq(Expr::lit("Civic")));
        let d = evaluate(&table1(), &st).unwrap();
        let col = d.data.column_values("Avg_Price").unwrap();
        // avg over the three Civics only: (13500+15000+16000)/3 = 14833.33
        let Value::Float(v) = &col[0] else { panic!() };
        assert!((v - 14833.3333).abs() < 0.01);
    }

    #[test]
    fn selection_on_aggregate_uses_pre_filter_average() {
        // Fig. 2 scenario: filter Price < Avg_Price(Model, Year).
        let mut st = QueryState::new();
        st.computed.push(ComputedColumn::aggregate(
            "Avg_Price",
            AggFunc::Avg,
            "Price",
            1,
            vec![],
        ));
        st.add_selection(Expr::col("Price").lt(Expr::col("Avg_Price")));
        let d = evaluate(&table1(), &st).unwrap();
        // global avg = (14500+15000+16000+17000+17500+18000+13500+15000+16000)/9
        // = 142500/9 = 15833.33; cars below: 14500,15000,13500,15000 → 4 rows
        assert_eq!(d.len(), 4);
        // displayed Avg_Price is recomputed over the survivors
        let col = d.data.column_values("Avg_Price").unwrap();
        let Value::Float(v) = &col[0] else { panic!() };
        assert!((v - 14500.0).abs() < 0.01); // (14500+15000+13500+15000)/4
    }

    #[test]
    fn formula_column_row_wise() {
        let mut st = QueryState::new();
        st.computed.push(ComputedColumn::formula(
            "PriceK",
            Expr::col("Price").div(Expr::lit(1000)),
        ));
        let d = evaluate(&table1(), &st).unwrap();
        assert_eq!(
            d.data.value_at(0, "PriceK").unwrap(),
            &Value::Float(14.5)
        );
    }

    #[test]
    fn dedup_on_r_tuples_ignores_projection() {
        let base = Relation::with_rows(
            "r",
            Schema::of(&[("x", Int), ("y", Int)]),
            vec![tuple![1, 10], tuple![1, 20], tuple![1, 10]],
        )
        .unwrap();
        let mut st = QueryState::new();
        st.projected_out.insert("y".into());
        st.dedup = true;
        let d = evaluate(&base, &st).unwrap();
        // dedup on full R-tuples: (1,10) duplicated once → 2 rows remain,
        // even though the visible column x makes them look identical.
        assert_eq!(d.len(), 2);
        assert_eq!(d.visible, vec!["x".to_string()]);
        assert_eq!(d.visible_relation().schema().names(), vec!["x"]);
    }

    #[test]
    fn hidden_column_still_filters() {
        let mut st = QueryState::new();
        st.projected_out.insert("Condition".into());
        st.add_selection(Expr::col("Condition").eq(Expr::lit("Good")));
        let d = evaluate(&table1(), &st).unwrap();
        assert_eq!(d.len(), 5);
        assert!(!d.visible.contains(&"Condition".to_string()));
    }

    #[test]
    fn unknown_selection_column_is_error() {
        let mut st = QueryState::new();
        st.add_selection(Expr::col("Ghost").eq(Expr::lit(1)));
        assert_eq!(
            evaluate(&table1(), &st),
            Err(SheetError::UnknownColumn { name: "Ghost".into() })
        );
    }

    #[test]
    fn multi_attribute_level_groups_on_key_tuple() {
        let mut st = QueryState::new();
        st.spec
            .levels
            .push(GroupLevel::new(["Model", "Year"], Direction::Asc));
        let d = evaluate(&table1(), &st).unwrap();
        assert_eq!(d.tree.groups_at_level(2).len(), 4);
        // ASC on (Model, Year): Civic 2005, Civic 2006, Jetta 2005, Jetta 2006
        let keys: Vec<String> = d
            .tree
            .groups_at_level(2)
            .iter()
            .map(|g| format!("{} {}", g.key[0].1, g.key[1].1))
            .collect();
        assert_eq!(keys, vec!["Civic 2005", "Civic 2006", "Jetta 2005", "Jetta 2006"]);
    }

    #[test]
    fn equivalent_ignores_computed_column_order() {
        let mut a = QueryState::new();
        a.computed.push(ComputedColumn::formula("F1", Expr::col("Price").add(Expr::lit(1))));
        a.computed.push(ComputedColumn::formula("F2", Expr::col("Year").add(Expr::lit(1))));
        let mut b = QueryState::new();
        b.computed.push(ComputedColumn::formula("F2", Expr::col("Year").add(Expr::lit(1))));
        b.computed.push(ComputedColumn::formula("F1", Expr::col("Price").add(Expr::lit(1))));
        let da = evaluate(&table1(), &a).unwrap();
        let db = evaluate(&table1(), &b).unwrap();
        assert_ne!(da, db, "column order differs");
        assert!(da.equivalent(&db), "content is the same");
        // and a genuinely different sheet is not equivalent
        let mut c = b.clone();
        c.add_selection(Expr::col("Year").eq(Expr::lit(2005)));
        let dc = evaluate(&table1(), &c).unwrap();
        assert!(!da.equivalent(&dc));
    }

    #[test]
    fn visible_columns_order_base_then_computed() {
        let mut st = QueryState::new();
        st.computed.push(ComputedColumn::formula(
            "F1",
            Expr::col("Price").add(Expr::lit(1)),
        ));
        st.projected_out.insert("Mileage".into());
        let cols = visible_columns(&table1(), &st);
        assert_eq!(
            cols,
            vec!["ID", "Model", "Price", "Year", "Condition", "F1"]
        );
    }
}
