//! Shared test/example data: the paper's used-car database (Table I).
//!
//! Exposed publicly so integration tests, examples and benches can all
//! reproduce the paper's running example from the same rows.

use ssa_relation::schema::Schema;
use ssa_relation::tuple;
use ssa_relation::Relation;
use ssa_relation::ValueType::{Int, Str};

/// The nine rows of Table I.
pub fn used_cars() -> Relation {
    Relation::with_rows(
        "cars",
        Schema::of(&[
            ("ID", Int),
            ("Model", Str),
            ("Price", Int),
            ("Year", Int),
            ("Mileage", Int),
            ("Condition", Str),
        ]),
        vec![
            tuple![304, "Jetta", 14500, 2005, 76000, "Good"],
            tuple![872, "Jetta", 15000, 2005, 50000, "Excellent"],
            tuple![901, "Jetta", 16000, 2005, 40000, "Excellent"],
            tuple![423, "Jetta", 17000, 2006, 42000, "Good"],
            tuple![723, "Jetta", 17500, 2006, 39000, "Excellent"],
            tuple![725, "Jetta", 18000, 2006, 30000, "Excellent"],
            tuple![132, "Civic", 13500, 2005, 86000, "Good"],
            tuple![879, "Civic", 15000, 2006, 68000, "Good"],
            tuple![322, "Civic", 16000, 2006, 73000, "Good"],
        ],
    )
    .expect("fixture rows match fixture schema")
}

/// A small dealers relation used by join/product examples and tests.
pub fn dealers() -> Relation {
    Relation::with_rows(
        "dealers",
        Schema::of(&[("Dealer", Str), ("Model", Str), ("City", Str)]),
        vec![
            tuple!["A2 Motors", "Jetta", "Ann Arbor"],
            tuple!["A2 Motors", "Civic", "Ann Arbor"],
            tuple!["Motor City", "Civic", "Detroit"],
        ],
    )
    .expect("fixture rows match fixture schema")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_shape() {
        let r = used_cars();
        assert_eq!(r.len(), 9);
        assert_eq!(r.schema().len(), 6);
        assert_eq!(r.name(), "cars");
    }

    #[test]
    fn dealers_shape() {
        let d = dealers();
        assert_eq!(d.len(), 3);
        assert!(d.schema().contains("Model"));
    }
}
