//! Operation history: the "History" menu of Sec. VI — a numbered list of
//! all manipulations with meaningful names, one-step and multi-step
//! undo/redo — wrapped around a [`Spreadsheet`] as the [`Engine`].
//!
//! Undo is snapshot-based: every operation records the sheet's defining
//! data (base + state) beforehand, making all user actions reversible
//! (direct-manipulation desideratum iii). Query *modification* (Sec. V)
//! lives on the engine too, so that state edits are themselves undoable
//! history entries.

use crate::error::{Result, SheetError};
use crate::eval::Derived;
use crate::sheet::{Spreadsheet, StoredSheet};
use crate::spec::Direction;
use crate::state::QueryState;
use ssa_relation::{AggFunc, Expr, Relation};
use std::fmt;
use std::sync::Arc;

/// A completed operation, named the way the History menu shows it.
#[derive(Debug, Clone, PartialEq)]
pub enum OpRecord {
    Group {
        basis: Vec<String>,
        order: Direction,
    },
    Regroup {
        basis: Vec<String>,
        order: Direction,
    },
    Ungroup,
    Order {
        attribute: String,
        order: Direction,
        level: usize,
    },
    Select {
        id: u64,
        predicate: String,
    },
    Project {
        column: String,
    },
    Reinstate {
        column: String,
    },
    Aggregate {
        column: String,
        func: AggFunc,
        input: String,
        level: usize,
    },
    Formula {
        column: String,
        expr: String,
    },
    Dedup,
    Rename {
        from: String,
        to: String,
    },
    Product {
        with: String,
    },
    Join {
        with: String,
        condition: String,
    },
    Union {
        with: String,
    },
    Difference {
        with: String,
    },
    ModifySelection {
        id: u64,
        predicate: String,
    },
    RemoveSelection {
        id: u64,
    },
    RemoveComputed {
        column: String,
    },
    AppendRows {
        count: usize,
    },
    DeleteRows {
        count: usize,
    },
    UpdateCell {
        column: String,
        row: u32,
    },
}

impl OpRecord {
    /// Whether this entry is a binary operator — a point of
    /// non-commutativity.
    pub fn is_binary(&self) -> bool {
        matches!(
            self,
            OpRecord::Product { .. }
                | OpRecord::Join { .. }
                | OpRecord::Union { .. }
                | OpRecord::Difference { .. }
        )
    }
}

impl fmt::Display for OpRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpRecord::Group { basis, order } => {
                write!(f, "Group by {{{}}} {order}", basis.join(", "))
            }
            OpRecord::Regroup { basis, order } => {
                write!(f, "Regroup by {{{}}} {order}", basis.join(", "))
            }
            OpRecord::Ungroup => write!(f, "Remove grouping"),
            OpRecord::Order {
                attribute,
                order,
                level,
            } => {
                write!(f, "Order level {level} by {attribute} {order}")
            }
            OpRecord::Select { id, predicate } => write!(f, "Select [{predicate}] (#{id})"),
            OpRecord::Project { column } => write!(f, "Project out {column}"),
            OpRecord::Reinstate { column } => write!(f, "Reinstate {column}"),
            OpRecord::Aggregate {
                column,
                func,
                input,
                level,
            } => {
                write!(f, "Aggregate {column} = {func}({input}) at level {level}")
            }
            OpRecord::Formula { column, expr } => write!(f, "Formula {column} = {expr}"),
            OpRecord::Dedup => write!(f, "Remove duplicates"),
            OpRecord::Rename { from, to } => write!(f, "Rename {from} to {to}"),
            OpRecord::Product { with } => write!(f, "Product with {with}"),
            OpRecord::Join { with, condition } => write!(f, "Join with {with} on {condition}"),
            OpRecord::Union { with } => write!(f, "Union with {with}"),
            OpRecord::Difference { with } => write!(f, "Difference with {with}"),
            OpRecord::ModifySelection { id, predicate } => {
                write!(f, "Modify selection #{id} to [{predicate}]")
            }
            OpRecord::RemoveSelection { id } => write!(f, "Remove selection #{id}"),
            OpRecord::RemoveComputed { column } => write!(f, "Remove column {column}"),
            OpRecord::AppendRows { count } => write!(f, "Append {count} row(s)"),
            OpRecord::DeleteRows { count } => write!(f, "Delete {count} row(s)"),
            OpRecord::UpdateCell { column, row } => {
                write!(f, "Update {column} of base row {row}")
            }
        }
    }
}

/// O(1): the base is held by `Arc`, so recording history never
/// copies data (base edits copy-on-write away from held snapshots).
type Snapshot = (Arc<Relation>, QueryState, u64, u64);

/// A spreadsheet with history: every operator of the algebra, recorded,
/// undoable and redoable.
#[derive(Debug, Clone)]
pub struct Engine {
    sheet: Spreadsheet,
    undo_stack: Vec<(OpRecord, Snapshot)>,
    redo_stack: Vec<(OpRecord, Snapshot)>,
}

impl Engine {
    pub fn over(relation: Relation) -> Engine {
        Engine {
            sheet: Spreadsheet::over(relation),
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
        }
    }

    /// An engine over an already-shared base relation: the session holds
    /// the `Arc` without copying data (see [`Spreadsheet::over_shared`]).
    pub fn over_shared(relation: Arc<Relation>) -> Engine {
        Engine {
            sheet: Spreadsheet::over_shared(relation),
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
        }
    }

    pub fn from_sheet(sheet: Spreadsheet) -> Engine {
        Engine {
            sheet,
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
        }
    }

    pub fn sheet(&self) -> &Spreadsheet {
        &self.sheet
    }

    pub fn sheet_mut(&mut self) -> &mut Spreadsheet {
        &mut self.sheet
    }

    /// Evaluated view of the current sheet.
    pub fn view(&mut self) -> Result<&Derived> {
        self.sheet.view()
    }

    /// The numbered history listing (most recent last).
    pub fn history(&self) -> Vec<String> {
        self.undo_stack
            .iter()
            .enumerate()
            .map(|(i, (op, _))| format!("{}. {op}", i + 1))
            .collect()
    }

    /// Operations performed so far (for tests and the study driver).
    pub fn records(&self) -> Vec<&OpRecord> {
        self.undo_stack.iter().map(|(op, _)| op).collect()
    }

    fn apply<T>(
        &mut self,
        record: OpRecord,
        f: impl FnOnce(&mut Spreadsheet) -> Result<T>,
    ) -> Result<T> {
        let snapshot = self.sheet.snapshot();
        match f(&mut self.sheet) {
            Ok(v) => {
                self.undo_stack.push((record, snapshot));
                self.redo_stack.clear();
                Ok(v)
            }
            Err(e) => {
                // A failed operator must leave the sheet untouched; most
                // ops validate before mutating, but restore defensively.
                let (b, s, ep, ver) = snapshot;
                self.sheet.restore(b, s, ep, ver);
                Err(e)
            }
        }
    }

    /// Undo the most recent operation. Returns its record.
    pub fn undo(&mut self) -> Result<OpRecord> {
        let (op, before) = self
            .undo_stack
            .pop()
            .ok_or(SheetError::HistoryExhausted { redo: false })?;
        let now = self.sheet.snapshot();
        let (b, s, ep, ver) = before;
        self.sheet.restore(b, s, ep, ver);
        self.redo_stack.push((op.clone(), now));
        Ok(op)
    }

    /// Redo the most recently undone operation.
    pub fn redo(&mut self) -> Result<OpRecord> {
        let (op, after) = self
            .redo_stack
            .pop()
            .ok_or(SheetError::HistoryExhausted { redo: true })?;
        let before = self.sheet.snapshot();
        let (b, s, ep, ver) = after;
        self.sheet.restore(b, s, ep, ver);
        self.undo_stack.push((op.clone(), before));
        Ok(op)
    }

    /// Multi-step undo.
    pub fn undo_steps(&mut self, steps: usize) -> Result<Vec<OpRecord>> {
        (0..steps).map(|_| self.undo()).collect()
    }

    /// Multi-step redo.
    pub fn redo_steps(&mut self, steps: usize) -> Result<Vec<OpRecord>> {
        (0..steps).map(|_| self.redo()).collect()
    }

    // --- recorded operators -------------------------------------------

    pub fn group(&mut self, basis: &[&str], order: Direction) -> Result<()> {
        let record = OpRecord::Group {
            basis: basis.iter().map(|s| s.to_string()).collect(),
            order,
        };
        self.apply(record, |s| s.group(basis, order))
    }

    pub fn group_add(&mut self, attributes: &[&str], order: Direction) -> Result<()> {
        let record = OpRecord::Group {
            basis: attributes.iter().map(|s| s.to_string()).collect(),
            order,
        };
        self.apply(record, |s| s.group_add(attributes, order))
    }

    pub fn regroup(&mut self, attributes: &[&str], order: Direction) -> Result<()> {
        let record = OpRecord::Regroup {
            basis: attributes.iter().map(|s| s.to_string()).collect(),
            order,
        };
        self.apply(record, |s| s.regroup(attributes, order))
    }

    pub fn ungroup(&mut self) -> Result<()> {
        self.apply(OpRecord::Ungroup, |s| s.ungroup())
    }

    pub fn order(&mut self, attribute: &str, order: Direction, level: usize) -> Result<()> {
        let record = OpRecord::Order {
            attribute: attribute.to_string(),
            order,
            level,
        };
        self.apply(record, |s| s.order(attribute, order, level))
    }

    pub fn select(&mut self, predicate: Expr) -> Result<u64> {
        // The id is assigned inside; patch the record afterwards.
        let text = predicate.to_string();
        let snapshot = self.sheet.snapshot();
        match self.sheet.select(predicate) {
            Ok(id) => {
                self.undo_stack.push((
                    OpRecord::Select {
                        id,
                        predicate: text,
                    },
                    snapshot,
                ));
                self.redo_stack.clear();
                Ok(id)
            }
            Err(e) => Err(e),
        }
    }

    pub fn project_out(&mut self, column: &str) -> Result<()> {
        let record = OpRecord::Project {
            column: column.to_string(),
        };
        self.apply(record, |s| s.project_out(column))
    }

    pub fn reinstate(&mut self, column: &str) -> Result<()> {
        let record = OpRecord::Reinstate {
            column: column.to_string(),
        };
        self.apply(record, |s| s.reinstate(column))
    }

    pub fn aggregate(&mut self, func: AggFunc, column: &str, level: usize) -> Result<String> {
        let snapshot = self.sheet.snapshot();
        match self.sheet.aggregate(func, column, level) {
            Ok(name) => {
                self.undo_stack.push((
                    OpRecord::Aggregate {
                        column: name.clone(),
                        func,
                        input: column.to_string(),
                        level,
                    },
                    snapshot,
                ));
                self.redo_stack.clear();
                Ok(name)
            }
            Err(e) => Err(e),
        }
    }

    pub fn formula(&mut self, name: Option<&str>, expr: Expr) -> Result<String> {
        let text = expr.to_string();
        let snapshot = self.sheet.snapshot();
        match self.sheet.formula(name, expr) {
            Ok(col) => {
                self.undo_stack.push((
                    OpRecord::Formula {
                        column: col.clone(),
                        expr: text,
                    },
                    snapshot,
                ));
                self.redo_stack.clear();
                Ok(col)
            }
            Err(e) => Err(e),
        }
    }

    pub fn dedup(&mut self) -> Result<()> {
        self.apply(OpRecord::Dedup, |s| s.dedup())
    }

    pub fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        let record = OpRecord::Rename {
            from: from.to_string(),
            to: to.to_string(),
        };
        self.apply(record, |s| s.rename(from, to))
    }

    pub fn product(&mut self, stored: &StoredSheet) -> Result<()> {
        let record = OpRecord::Product {
            with: stored.name.clone(),
        };
        self.apply(record, |s| s.product(stored))
    }

    pub fn join(&mut self, stored: &StoredSheet, condition: Expr) -> Result<()> {
        let record = OpRecord::Join {
            with: stored.name.clone(),
            condition: condition.to_string(),
        };
        self.apply(record, |s| s.join(stored, condition))
    }

    pub fn union(&mut self, stored: &StoredSheet) -> Result<()> {
        let record = OpRecord::Union {
            with: stored.name.clone(),
        };
        self.apply(record, |s| s.union(stored))
    }

    pub fn difference(&mut self, stored: &StoredSheet) -> Result<()> {
        let record = OpRecord::Difference {
            with: stored.name.clone(),
        };
        self.apply(record, |s| s.difference(stored))
    }

    pub fn save(&self, name: impl Into<String>) -> Result<StoredSheet> {
        self.sheet.save(name)
    }

    // --- query modification (recorded) ---------------------------------

    /// If a selection id is gone because a binary operator consumed it,
    /// say so precisely: "where data from other sheets has been pulled in
    /// we cannot go back beyond" (Sec. V-A).
    fn diagnose_missing_selection(&self, id: u64, err: SheetError) -> SheetError {
        if !matches!(err, SheetError::UnknownSelection { .. }) {
            return err;
        }
        let mut described: Option<String> = None;
        for (op, _) in &self.undo_stack {
            match op {
                OpRecord::Select { id: sid, predicate } if *sid == id => {
                    described = Some(predicate.clone());
                }
                _ if op.is_binary() && described.is_some() => {
                    return SheetError::BehindNonCommutativityPoint {
                        description: described.expect("just checked"),
                    };
                }
                _ => {}
            }
        }
        err
    }

    pub fn replace_selection(&mut self, id: u64, predicate: Expr) -> Result<()> {
        let record = OpRecord::ModifySelection {
            id,
            predicate: predicate.to_string(),
        };
        self.apply(record, |s| s.replace_selection(id, predicate))
            .map_err(|e| self.diagnose_missing_selection(id, e))
    }

    pub fn remove_selection(&mut self, id: u64) -> Result<()> {
        self.apply(OpRecord::RemoveSelection { id }, |s| s.remove_selection(id))
            .map_err(|e| self.diagnose_missing_selection(id, e))
    }

    pub fn remove_computed(&mut self, column: &str) -> Result<()> {
        let record = OpRecord::RemoveComputed {
            column: column.to_string(),
        };
        self.apply(record, |s| s.remove_computed(column))
    }

    // --- base-data edits (recorded) ------------------------------------

    /// Feed rows into the base relation (DESIGN.md §14). Undo restores
    /// the pre-append base via the snapshot, like every other entry.
    pub fn append_rows(&mut self, rows: Vec<ssa_relation::Tuple>) -> Result<usize> {
        let record = OpRecord::AppendRows { count: rows.len() };
        self.apply(record, |s| s.append_rows(rows))
    }

    pub fn delete_rows(&mut self, ids: &[u32]) -> Result<usize> {
        let record = OpRecord::DeleteRows { count: ids.len() };
        self.apply(record, |s| s.delete_rows(ids))
    }

    /// Delete by predicate; the record carries the actual row count.
    pub fn delete_where(&mut self, predicate: &Expr) -> Result<usize> {
        let snapshot = self.sheet.snapshot();
        match self.sheet.delete_where(predicate) {
            Ok(count) => {
                self.undo_stack
                    .push((OpRecord::DeleteRows { count }, snapshot));
                self.redo_stack.clear();
                Ok(count)
            }
            Err(e) => Err(e),
        }
    }

    pub fn update_cell(
        &mut self,
        row: u32,
        column: &str,
        value: ssa_relation::Value,
    ) -> Result<ssa_relation::Value> {
        let record = OpRecord::UpdateCell {
            column: column.to_string(),
            row,
        };
        self.apply(record, |s| s.update_cell(row, column, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::used_cars;

    fn engine() -> Engine {
        Engine::over(used_cars())
    }

    #[test]
    fn history_is_a_numbered_list_with_meaningful_names() {
        let mut e = engine();
        e.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
        e.group_add(&["Model"], Direction::Asc).unwrap();
        e.aggregate(AggFunc::Avg, "Price", 2).unwrap();
        let h = e.history();
        assert_eq!(h.len(), 3);
        assert!(h[0].starts_with("1. Select [Year = 2005]"));
        assert!(h[1].contains("Group by {Model} ASC"));
        assert!(h[2].contains("Avg_Price = Avg(Price) at level 2"));
    }

    #[test]
    fn undo_redo_single_step() {
        let mut e = engine();
        e.select(Expr::col("Model").eq(Expr::lit("Civic"))).unwrap();
        assert_eq!(e.view().unwrap().len(), 3);
        let op = e.undo().unwrap();
        assert!(matches!(op, OpRecord::Select { .. }));
        assert_eq!(e.view().unwrap().len(), 9);
        e.redo().unwrap();
        assert_eq!(e.view().unwrap().len(), 3);
    }

    #[test]
    fn undo_redo_multi_step() {
        let mut e = engine();
        e.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
        e.select(Expr::col("Model").eq(Expr::lit("Jetta"))).unwrap();
        e.project_out("Mileage").unwrap();
        e.undo_steps(3).unwrap();
        assert_eq!(e.view().unwrap().len(), 9);
        assert_eq!(e.view().unwrap().visible.len(), 6);
        e.redo_steps(2).unwrap();
        assert_eq!(e.view().unwrap().len(), 3);
        assert!(matches!(
            e.redo_steps(2),
            Err(SheetError::HistoryExhausted { redo: true })
        ));
    }

    #[test]
    fn new_operation_clears_redo() {
        let mut e = engine();
        e.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
        e.undo().unwrap();
        e.dedup().unwrap();
        assert!(matches!(
            e.redo(),
            Err(SheetError::HistoryExhausted { redo: true })
        ));
    }

    #[test]
    fn undo_on_empty_history_errors() {
        let mut e = engine();
        assert!(matches!(
            e.undo(),
            Err(SheetError::HistoryExhausted { redo: false })
        ));
    }

    #[test]
    fn failed_operation_records_nothing() {
        let mut e = engine();
        assert!(e.select(Expr::col("Ghost").eq(Expr::lit(1))).is_err());
        assert!(e.aggregate(AggFunc::Avg, "Model", 1).is_err());
        assert!(e.order("Price", Direction::Asc, 5).is_err());
        assert!(e.history().is_empty());
        assert_eq!(e.view().unwrap().len(), 9);
    }

    #[test]
    fn undo_restores_binary_operator_epoch() {
        let mut e = engine();
        let stored = e.save("all").unwrap();
        e.union(&stored).unwrap();
        assert_eq!(e.sheet().epoch(), 1);
        assert_eq!(e.view().unwrap().len(), 18);
        e.undo().unwrap();
        assert_eq!(e.sheet().epoch(), 0);
        assert_eq!(e.view().unwrap().len(), 9);
    }

    #[test]
    fn modification_ops_are_history_entries() {
        let mut e = engine();
        let id = e.select(Expr::col("Year").eq(Expr::lit(2005))).unwrap();
        e.replace_selection(id, Expr::col("Year").eq(Expr::lit(2006)))
            .unwrap();
        assert_eq!(e.view().unwrap().len(), 5);
        assert!(e.history()[1].contains("Modify selection"));
        e.undo().unwrap();
        assert_eq!(e.view().unwrap().len(), 4);
        e.remove_selection(id).unwrap();
        assert_eq!(e.view().unwrap().len(), 9);
    }

    #[test]
    fn modifying_behind_a_binary_operator_is_diagnosed() {
        let mut e = engine();
        let id = e.select(Expr::col("Model").eq(Expr::lit("Jetta"))).unwrap();
        let stored = e.save("all").unwrap();
        e.union(&stored).unwrap();
        let err = e
            .replace_selection(id, Expr::col("Model").eq(Expr::lit("Civic")))
            .unwrap_err();
        assert!(
            matches!(err, SheetError::BehindNonCommutativityPoint { .. }),
            "got {err:?}"
        );
        assert!(err.to_string().contains("point of non-commutativity"));
        let err = e.remove_selection(id).unwrap_err();
        assert!(matches!(
            err,
            SheetError::BehindNonCommutativityPoint { .. }
        ));
        // a genuinely unknown id stays UnknownSelection
        let err = e.remove_selection(999).unwrap_err();
        assert!(matches!(err, SheetError::UnknownSelection { .. }));
    }

    #[test]
    fn binary_records_flagged() {
        assert!(OpRecord::Union { with: "x".into() }.is_binary());
        assert!(!OpRecord::Dedup.is_binary());
    }

    #[test]
    fn base_edits_are_recorded_and_undoable() {
        use ssa_relation::{tuple, Value};
        let mut e = engine();
        e.group_add(&["Model"], Direction::Asc).unwrap();
        e.view().unwrap();
        e.append_rows(vec![tuple![999, "Jetta", 15500, 2005, 60000, "Good"]])
            .unwrap();
        assert_eq!(e.view().unwrap().len(), 10);
        e.update_cell(9, "Price", Value::Int(15750)).unwrap();
        e.delete_where(&Expr::col("Model").eq(Expr::lit("Civic")))
            .unwrap();
        assert_eq!(e.view().unwrap().len(), 7);
        let h = e.history();
        assert!(h[1].contains("Append 1 row(s)"));
        assert!(h[2].contains("Update Price of base row 9"));
        assert!(h[3].contains("Delete 3 row(s)"));
        e.undo_steps(3).unwrap();
        assert_eq!(e.view().unwrap().len(), 9);
        assert_eq!(e.sheet().base().len(), 9);
        e.redo_steps(3).unwrap();
        assert_eq!(e.view().unwrap().len(), 7);
    }

    #[test]
    fn failed_base_edit_records_nothing() {
        let mut e = engine();
        assert!(e.append_rows(vec![ssa_relation::tuple![1]]).is_err());
        assert!(e.history().is_empty());
        assert_eq!(e.view().unwrap().len(), 9);
    }
}
