//! Hand-rolled JSON persistence for [`StoredSheet`](crate::sheet::StoredSheet).
//!
//! The workspace builds with no registry access, so this module replaces
//! serde/serde_json with a small JSON encoder/decoder tailored to exactly
//! the types a saved sheet contains. Every encoding is lossless:
//! * `Value::Int` is written as a decimal string (`{"i":"42"}`) so 64-bit
//!   integers never pass through an f64;
//! * `Value::Float` uses Rust's shortest round-trip `Display` (also as a
//!   string, which additionally covers NaN/inf);
//! * expressions are encoded *structurally*, not via `Display`/re-parse,
//!   so string literals containing quotes survive.

use crate::computed::{ComputedColumn, ComputedDef};
use crate::error::{Result, SheetError};
use crate::sheet::StoredSheet;
use crate::spec::{Direction, GroupLevel, OrderKey, Spec};
use crate::state::QueryState;
use ssa_relation::expr::{ArithOp, CmpOp};
use ssa_relation::schema::Column;
use ssa_relation::{AggFunc, Expr, Relation, Schema, Tuple, Value, ValueType};

// ---------------------------------------------------------------------------
// Minimal JSON document model
// ---------------------------------------------------------------------------

/// A parsed JSON document. Numbers keep their raw literal text so integer
/// precision is caller-controlled.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub(crate) fn num(n: impl ToString) -> Json {
        Json::Num(n.to_string())
    }

    pub(crate) fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn field<'a>(&'a self, key: &str) -> Result<&'a Json> {
        self.get(key)
            .ok_or_else(|| persist_err(format!("missing field `{key}`")))
    }

    pub(crate) fn str_value(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(persist_err(format!("expected string, got {other:?}"))),
        }
    }

    pub(crate) fn bool_value(&self) -> Result<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(persist_err(format!("expected bool, got {other:?}"))),
        }
    }

    pub(crate) fn arr_value(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(persist_err(format!("expected array, got {other:?}"))),
        }
    }

    pub(crate) fn u64_value(&self) -> Result<u64> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| persist_err(format!("bad integer literal `{raw}`"))),
            other => Err(persist_err(format!("expected number, got {other:?}"))),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    pub(crate) fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    pub(crate) fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            chars: text.chars().collect(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(persist_err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn persist_err(message: impl Into<String>) -> SheetError {
    SheetError::Persist {
        message: message.into(),
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn eat(&mut self, expected: char) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(persist_err(format!(
                "expected `{expected}` at position {}",
                self.pos
            )))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.chars[self.pos..].starts_with(&word.chars().collect::<Vec<_>>()[..]) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some('n') if self.eat_word("null") => Ok(Json::Null),
            Some('t') if self.eat_word("true") => Ok(Json::Bool(true)),
            Some('f') if self.eat_word("false") => Ok(Json::Bool(false)),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('[') => {
                self.eat('[')?;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => self.pos += 1,
                        Some(']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(persist_err("expected `,` or `]` in array")),
                    }
                }
            }
            Some('{') => {
                self.eat('{')?;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(':')?;
                    let value = self.value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => self.pos += 1,
                        Some('}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(persist_err("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => {
                let start = self.pos;
                self.pos += 1;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Ok(Json::Num(self.chars[start..self.pos].iter().collect()))
            }
            _ => Err(persist_err(format!(
                "unexpected input at position {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| persist_err("unterminated string"))?;
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| persist_err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            if self.pos + 4 > self.chars.len() {
                                return Err(persist_err("truncated \\u escape"));
                            }
                            let hex: String = self.chars[self.pos..self.pos + 4].iter().collect();
                            self.pos += 4;
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| persist_err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| persist_err("bad \\u code point"))?,
                            );
                        }
                        other => return Err(persist_err(format!("bad escape `\\{other}`"))),
                    }
                }
                c => out.push(c),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding/decoding the saved-sheet types
// ---------------------------------------------------------------------------

pub(crate) fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::obj(vec![("i", Json::Str(i.to_string()))]),
        Value::Float(f) => Json::obj(vec![("f", Json::Str(f.to_string()))]),
        // Always the resolved text — interner ids must never reach disk.
        Value::Str(s) => Json::obj(vec![("s", Json::Str(s.as_str().to_string()))]),
    }
}

pub(crate) fn value_from_json(j: &Json) -> Result<Value> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Obj(_) => {
            if let Some(i) = j.get("i") {
                let raw = i.str_value()?;
                Ok(Value::Int(raw.parse().map_err(|_| {
                    persist_err(format!("bad int literal `{raw}`"))
                })?))
            } else if let Some(f) = j.get("f") {
                let raw = f.str_value()?;
                Ok(Value::Float(raw.parse().map_err(|_| {
                    persist_err(format!("bad float literal `{raw}`"))
                })?))
            } else if let Some(s) = j.get("s") {
                Ok(Value::from(s.str_value()?.to_string()))
            } else {
                Err(persist_err("value object needs an `i`, `f`, or `s` field"))
            }
        }
        other => Err(persist_err(format!("bad value encoding: {other:?}"))),
    }
}

fn type_to_json(ty: ValueType) -> Json {
    Json::Str(ty.to_string())
}

fn type_from_json(j: &Json) -> Result<ValueType> {
    match j.str_value()? {
        "null" => Ok(ValueType::Null),
        "bool" => Ok(ValueType::Bool),
        "int" => Ok(ValueType::Int),
        "float" => Ok(ValueType::Float),
        "str" => Ok(ValueType::Str),
        other => Err(persist_err(format!("unknown value type `{other}`"))),
    }
}

pub(crate) fn relation_to_json(r: &Relation) -> Json {
    Json::obj(vec![
        ("name", Json::Str(r.name().to_string())),
        (
            "schema",
            Json::Arr(
                r.schema()
                    .columns()
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("name", Json::Str(c.name.clone())),
                            ("ty", type_to_json(c.ty)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rows",
            Json::Arr(
                r.rows()
                    .iter()
                    .map(|t| Json::Arr(t.values().iter().map(value_to_json).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn relation_from_json(j: &Json) -> Result<Relation> {
    let name = j.field("name")?.str_value()?;
    let mut columns = Vec::new();
    for c in j.field("schema")?.arr_value()? {
        columns.push(Column::new(
            c.field("name")?.str_value()?,
            type_from_json(c.field("ty")?)?,
        ));
    }
    let schema = Schema::new(columns).map_err(|e| persist_err(e.to_string()))?;
    let mut rows = Vec::new();
    for row in j.field("rows")?.arr_value()? {
        let values: Result<Vec<Value>> = row.arr_value()?.iter().map(value_from_json).collect();
        rows.push(Tuple::new(values?));
    }
    Relation::with_rows(name, schema, rows).map_err(|e| persist_err(e.to_string()))
}

pub(crate) fn expr_to_json(e: &Expr) -> Json {
    match e {
        Expr::Col(name) => Json::obj(vec![("col", Json::Str(name.clone()))]),
        Expr::Lit(v) => Json::obj(vec![("lit", value_to_json(v))]),
        Expr::Arith(a, op, b) => Json::obj(vec![(
            "arith",
            Json::Arr(vec![
                expr_to_json(a),
                Json::Str(op.symbol().to_string()),
                expr_to_json(b),
            ]),
        )]),
        Expr::Neg(a) => Json::obj(vec![("neg", expr_to_json(a))]),
        Expr::Cmp(a, op, b) => Json::obj(vec![(
            "cmp",
            Json::Arr(vec![
                expr_to_json(a),
                Json::Str(op.symbol().to_string()),
                expr_to_json(b),
            ]),
        )]),
        Expr::And(a, b) => Json::obj(vec![(
            "and",
            Json::Arr(vec![expr_to_json(a), expr_to_json(b)]),
        )]),
        Expr::Or(a, b) => Json::obj(vec![(
            "or",
            Json::Arr(vec![expr_to_json(a), expr_to_json(b)]),
        )]),
        Expr::Not(a) => Json::obj(vec![("not", expr_to_json(a))]),
        Expr::IsNull(a) => Json::obj(vec![("is_null", expr_to_json(a))]),
        Expr::Like(a, pattern) => Json::obj(vec![(
            "like",
            Json::Arr(vec![expr_to_json(a), Json::Str(pattern.clone())]),
        )]),
        Expr::If(c, t, e) => Json::obj(vec![(
            "if",
            Json::Arr(vec![expr_to_json(c), expr_to_json(t), expr_to_json(e)]),
        )]),
    }
}

fn arith_op_from_symbol(sym: &str) -> Result<ArithOp> {
    [
        ArithOp::Add,
        ArithOp::Sub,
        ArithOp::Mul,
        ArithOp::Div,
        ArithOp::Mod,
    ]
    .into_iter()
    .find(|op| op.symbol() == sym)
    .ok_or_else(|| persist_err(format!("unknown arithmetic operator `{sym}`")))
}

fn cmp_op_from_symbol(sym: &str) -> Result<CmpOp> {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ]
    .into_iter()
    .find(|op| op.symbol() == sym)
    .ok_or_else(|| persist_err(format!("unknown comparison operator `{sym}`")))
}

fn expr_pair(j: &Json) -> Result<(Expr, Expr)> {
    let items = j.arr_value()?;
    if items.len() != 2 {
        return Err(persist_err("expected a two-element expression pair"));
    }
    Ok((expr_from_json(&items[0])?, expr_from_json(&items[1])?))
}

pub(crate) fn expr_from_json(j: &Json) -> Result<Expr> {
    if let Some(c) = j.get("col") {
        return Ok(Expr::Col(c.str_value()?.to_string()));
    }
    if let Some(v) = j.get("lit") {
        return Ok(Expr::Lit(value_from_json(v)?));
    }
    if let Some(t) = j.get("arith") {
        let items = t.arr_value()?;
        if items.len() != 3 {
            return Err(persist_err("arith needs [lhs, op, rhs]"));
        }
        return Ok(Expr::Arith(
            Box::new(expr_from_json(&items[0])?),
            arith_op_from_symbol(items[1].str_value()?)?,
            Box::new(expr_from_json(&items[2])?),
        ));
    }
    if let Some(t) = j.get("cmp") {
        let items = t.arr_value()?;
        if items.len() != 3 {
            return Err(persist_err("cmp needs [lhs, op, rhs]"));
        }
        return Ok(Expr::Cmp(
            Box::new(expr_from_json(&items[0])?),
            cmp_op_from_symbol(items[1].str_value()?)?,
            Box::new(expr_from_json(&items[2])?),
        ));
    }
    if let Some(t) = j.get("and") {
        let (a, b) = expr_pair(t)?;
        return Ok(Expr::And(Box::new(a), Box::new(b)));
    }
    if let Some(t) = j.get("or") {
        let (a, b) = expr_pair(t)?;
        return Ok(Expr::Or(Box::new(a), Box::new(b)));
    }
    if let Some(t) = j.get("neg") {
        return Ok(Expr::Neg(Box::new(expr_from_json(t)?)));
    }
    if let Some(t) = j.get("not") {
        return Ok(Expr::Not(Box::new(expr_from_json(t)?)));
    }
    if let Some(t) = j.get("is_null") {
        return Ok(Expr::IsNull(Box::new(expr_from_json(t)?)));
    }
    if let Some(t) = j.get("like") {
        let items = t.arr_value()?;
        if items.len() != 2 {
            return Err(persist_err("like needs [expr, pattern]"));
        }
        return Ok(Expr::Like(
            Box::new(expr_from_json(&items[0])?),
            items[1].str_value()?.to_string(),
        ));
    }
    if let Some(t) = j.get("if") {
        let items = t.arr_value()?;
        if items.len() != 3 {
            return Err(persist_err("if needs [cond, then, else]"));
        }
        return Ok(Expr::If(
            Box::new(expr_from_json(&items[0])?),
            Box::new(expr_from_json(&items[1])?),
            Box::new(expr_from_json(&items[2])?),
        ));
    }
    Err(persist_err("unrecognized expression encoding"))
}

pub(crate) fn agg_func_from_name(name: &str) -> Result<AggFunc> {
    AggFunc::ALL
        .into_iter()
        .find(|f| f.short_name() == name)
        .ok_or_else(|| persist_err(format!("unknown aggregate function `{name}`")))
}

pub(crate) fn direction_to_json(d: Direction) -> Json {
    Json::Str(d.to_string())
}

pub(crate) fn direction_from_json(j: &Json) -> Result<Direction> {
    match j.str_value()? {
        "ASC" => Ok(Direction::Asc),
        "DESC" => Ok(Direction::Desc),
        other => Err(persist_err(format!("unknown direction `{other}`"))),
    }
}

fn string_array(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

fn strings_from_json(j: &Json) -> Result<Vec<String>> {
    j.arr_value()?
        .iter()
        .map(|s| Ok(s.str_value()?.to_string()))
        .collect()
}

fn computed_to_json(c: &ComputedColumn) -> Json {
    let def = match &c.def {
        ComputedDef::Aggregate {
            func,
            column,
            level,
            basis,
        } => Json::obj(vec![(
            "aggregate",
            Json::obj(vec![
                ("func", Json::Str(func.short_name().to_string())),
                ("column", Json::Str(column.clone())),
                ("level", Json::num(level)),
                ("basis", string_array(basis)),
            ]),
        )]),
        ComputedDef::Formula { expr } => Json::obj(vec![("formula", expr_to_json(expr))]),
    };
    Json::obj(vec![("name", Json::Str(c.name.clone())), ("def", def)])
}

fn computed_from_json(j: &Json) -> Result<ComputedColumn> {
    let name = j.field("name")?.str_value()?.to_string();
    let def = j.field("def")?;
    let def = if let Some(a) = def.get("aggregate") {
        ComputedDef::Aggregate {
            func: agg_func_from_name(a.field("func")?.str_value()?)?,
            column: a.field("column")?.str_value()?.to_string(),
            level: a.field("level")?.u64_value()? as usize,
            basis: strings_from_json(a.field("basis")?)?,
        }
    } else if let Some(f) = def.get("formula") {
        ComputedDef::Formula {
            expr: expr_from_json(f)?,
        }
    } else {
        return Err(persist_err("computed def needs `aggregate` or `formula`"));
    };
    Ok(ComputedColumn { name, def })
}

fn spec_to_json(spec: &Spec) -> Json {
    Json::obj(vec![
        (
            "levels",
            Json::Arr(
                spec.levels
                    .iter()
                    .map(|l| {
                        Json::obj(vec![
                            ("basis", string_array(&l.basis)),
                            ("direction", direction_to_json(l.direction)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "finest_order",
            Json::Arr(
                spec.finest_order
                    .iter()
                    .map(|k| {
                        Json::obj(vec![
                            ("attribute", Json::Str(k.attribute.clone())),
                            ("direction", direction_to_json(k.direction)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn spec_from_json(j: &Json) -> Result<Spec> {
    let mut spec = Spec::empty();
    for l in j.field("levels")?.arr_value()? {
        spec.levels.push(GroupLevel {
            basis: strings_from_json(l.field("basis")?)?,
            direction: direction_from_json(l.field("direction")?)?,
        });
    }
    for k in j.field("finest_order")?.arr_value()? {
        spec.finest_order.push(OrderKey {
            attribute: k.field("attribute")?.str_value()?.to_string(),
            direction: direction_from_json(k.field("direction")?)?,
        });
    }
    Ok(spec)
}

pub(crate) fn state_to_json(state: &QueryState) -> Json {
    Json::obj(vec![
        (
            "selections",
            Json::Arr(
                state
                    .selections
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("id", Json::num(s.id)),
                            ("predicate", expr_to_json(&s.predicate)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "computed",
            Json::Arr(state.computed.iter().map(computed_to_json).collect()),
        ),
        (
            "projected_out",
            Json::Arr(
                state
                    .projected_out
                    .iter()
                    .map(|p| Json::Str(p.clone()))
                    .collect(),
            ),
        ),
        ("dedup", Json::Bool(state.dedup)),
        ("spec", spec_to_json(&state.spec)),
        (
            "next_selection_id",
            Json::num(state.next_selection_id_raw()),
        ),
    ])
}

pub(crate) fn state_from_json(j: &Json) -> Result<QueryState> {
    let mut state = QueryState::new();
    for s in j.field("selections")?.arr_value()? {
        state.selections.push(crate::state::SelectionEntry {
            id: s.field("id")?.u64_value()?,
            predicate: expr_from_json(s.field("predicate")?)?,
        });
    }
    for c in j.field("computed")?.arr_value()? {
        state.computed.push(computed_from_json(c)?);
    }
    for p in j.field("projected_out")?.arr_value()? {
        state.projected_out.insert(p.str_value()?.to_string());
    }
    state.dedup = j.field("dedup")?.bool_value()?;
    state.spec = spec_from_json(j.field("spec")?)?;
    state.set_next_selection_id_raw(j.field("next_selection_id")?.u64_value()?);
    Ok(state)
}

/// On-disk format version, written as the leading `v` field and checked
/// on open. Bump when the encoding changes incompatibly, so an old
/// binary reports a clear error instead of misreading a newer snapshot.
pub(crate) const FORMAT_VERSION: u64 = 1;

pub(crate) fn stored_sheet_to_json(sheet: &StoredSheet) -> String {
    Json::obj(vec![
        ("v", Json::num(FORMAT_VERSION)),
        ("name", Json::Str(sheet.name.clone())),
        ("relation", relation_to_json(&sheet.relation)),
        ("state", state_to_json(&sheet.state)),
    ])
    .render()
}

pub(crate) fn stored_sheet_from_json(text: &str) -> Result<StoredSheet> {
    ssa_relation::fault_check!("persist.open");
    let j = Json::parse(text)?;
    let version = j.field("v")?.u64_value()?;
    if version != FORMAT_VERSION {
        return Err(persist_err(format!(
            "unsupported format version {version} (expected {FORMAT_VERSION})"
        )));
    }
    Ok(StoredSheet {
        name: j.field("name")?.str_value()?.to_string(),
        relation: relation_from_json(j.field("relation")?)?,
        state: state_from_json(j.field("state")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_round_trips() {
        let doc = Json::obj(vec![
            ("a", Json::Null),
            ("b", Json::Bool(true)),
            ("n", Json::num(-42)),
            ("s", Json::Str("quote \" slash \\ tab\t".into())),
            ("arr", Json::Arr(vec![Json::num(1), Json::Str("x".into())])),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("not json").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn values_round_trip_losslessly() {
        let values = [
            Value::Null,
            Value::Bool(false),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(0.1 + 0.2),
            Value::Float(f64::NAN),
            Value::Str("it's got 'quotes' and \"doubles\"".into()),
        ];
        for v in values {
            let back = value_from_json(&Json::parse(&value_to_json(&v).render()).unwrap()).unwrap();
            match (&v, &back) {
                (Value::Float(a), Value::Float(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "{v:?}")
                }
                _ => assert_eq!(v, back),
            }
        }
    }

    /// Regression guard for the interned-string representation: the
    /// on-disk format carries resolved text, never interner ids (ids are
    /// first-seen order and meaningless across processes).
    #[test]
    fn interned_strings_persist_as_text_never_ids() {
        use crate::state::QueryState;
        let v = Value::from("persist-intern-sentinel".to_string());
        assert_eq!(
            value_to_json(&v).render(),
            r#"{"s":"persist-intern-sentinel"}"#
        );

        // A sheet full of interned strings round-trips by value even
        // though loading re-interns under fresh (different) ids.
        let relation = Relation::with_rows(
            "dealers",
            Schema::of(&[("Dealer", ValueType::Str), ("City", ValueType::Str)]),
            (0..64u32)
                .map(|i| {
                    Tuple::new(vec![
                        Value::from(format!("persist-dealer-{}", (i * 37) % 64)),
                        Value::from(format!("persist-city-{}", i % 7)),
                    ])
                })
                .collect(),
        )
        .unwrap();
        let sheet = StoredSheet {
            name: "dealers".into(),
            relation: relation.clone(),
            state: QueryState::new(),
        };
        let text = stored_sheet_to_json(&sheet);
        assert!(
            text.contains("persist-dealer-63"),
            "text cells must be literal"
        );
        let back = stored_sheet_from_json(&text).unwrap();
        assert_eq!(back.relation, relation);
        assert!(back.relation.multiset_eq(&relation));
    }

    #[test]
    fn version_field_is_written_and_checked() {
        let sheet = StoredSheet {
            name: "s".into(),
            relation: Relation::with_rows(
                "r",
                Schema::of(&[("A", ValueType::Int)]),
                vec![Tuple::new(vec![Value::Int(1)])],
            )
            .unwrap(),
            state: crate::state::QueryState::new(),
        };
        let text = stored_sheet_to_json(&sheet);
        assert!(text.starts_with(r#"{"v":1,"#));
        let bumped = text.replacen(r#""v":1"#, r#""v":2"#, 1);
        let err = stored_sheet_from_json(&bumped).unwrap_err();
        assert!(err.to_string().contains("format version"), "{err}");
        let missing = text.replacen(r#""v":1,"#, "", 1);
        assert!(stored_sheet_from_json(&missing).is_err());
    }

    /// Robustness sweep: a snapshot truncated or mutated at an arbitrary
    /// byte must never panic the decoder — every outcome is either a
    /// successful parse (the mutation hit don't-care bytes) or a typed
    /// [`SheetError`]. Deterministically seeded, several hundred cases.
    #[test]
    fn corrupted_snapshots_never_panic() {
        let relation = Relation::with_rows(
            "cars",
            Schema::of(&[
                ("Model", ValueType::Str),
                ("Price", ValueType::Int),
                ("Rating", ValueType::Float),
            ]),
            (0..24u32)
                .map(|i| {
                    Tuple::new(vec![
                        Value::from(format!("model-{}", i % 5)),
                        Value::Int(i64::from(i) * 997),
                        Value::Float(f64::from(i) / 3.0),
                    ])
                })
                .collect(),
        )
        .unwrap();
        let mut state = crate::state::QueryState::new();
        state.computed.push(ComputedColumn {
            name: "Half".into(),
            def: ComputedDef::Formula {
                expr: Expr::col("Price").div(Expr::lit(2)),
            },
        });
        state.spec.levels.push(GroupLevel {
            basis: vec!["Model".into()],
            direction: Direction::Asc,
        });
        let sheet = StoredSheet {
            name: "cars".into(),
            relation,
            state,
        };
        let text = stored_sheet_to_json(&sheet);
        assert!(stored_sheet_from_json(&text).is_ok());

        let bytes = text.as_bytes();
        let mut rng = ssa_relation::rng::Rng::seed_from_u64(0x5EED_CAFE);
        for case in 0..400 {
            let mut mutated = bytes.to_vec();
            match case % 3 {
                // Truncate at a random byte.
                0 => mutated.truncate(rng.gen_range(0..bytes.len())),
                // Overwrite one byte with random printable ASCII.
                1 => {
                    let at = rng.gen_range(0..bytes.len());
                    mutated[at] = 0x20 + (rng.next_u64() % 0x5f) as u8;
                }
                // Delete one byte.
                _ => {
                    let at = rng.gen_range(0..bytes.len());
                    mutated.remove(at);
                }
            }
            // Mutations that break UTF-8 can't even reach the parser
            // (it takes &str); skip those.
            let Ok(mutated) = String::from_utf8(mutated) else {
                continue;
            };
            // Must return, not panic; both outcomes are acceptable.
            let _ = stored_sheet_from_json(&mutated);
        }
    }

    #[test]
    fn exprs_round_trip_structurally() {
        let exprs = [
            Expr::col("Price").lt(Expr::lit(15_000)),
            Expr::col("Model").eq(Expr::lit("it's a 'Jetta'")),
            Expr::col("a")
                .add(Expr::col("b"))
                .mul(Expr::lit(2.5))
                .ge(Expr::lit(0)),
            Expr::Not(Box::new(Expr::IsNull(Box::new(Expr::col("x"))))),
            Expr::Like(Box::new(Expr::col("s")), "%x_%".into()),
            Expr::if_else(
                Expr::col("x").gt(Expr::lit(1)),
                Expr::lit("hi"),
                Expr::lit("lo"),
            ),
            Expr::Neg(Box::new(Expr::col("n"))),
            Expr::col("a")
                .eq(Expr::lit(1))
                .or(Expr::col("b").eq(Expr::lit(2))),
        ];
        for e in exprs {
            let back = expr_from_json(&Json::parse(&expr_to_json(&e).render()).unwrap()).unwrap();
            assert_eq!(back, e);
        }
    }
}
