//! Binary columnar persistence and out-of-core sheet access
//! (DESIGN.md §16).
//!
//! A saved sheet is written as a versioned, CRC-framed columnar file:
//! meta (names, schema, query state), a sheet-local string dictionary,
//! per-column chunk frames of up to 64Ki rows, and a footer indexing
//! every chunk by byte offset. [`SheetFile`] opens by reading only the
//! head, footer and meta — O(schema + state) — and decodes column chunks
//! on first touch; [`PagedSheet`] layers filter + projection scans on
//! top so a query touching a strict subset of columns never reads the
//! rest of the file.
//!
//! The JSON codec from §12 stays as the compatibility import path:
//! [`open_sheet`] sniffs the leading magic bytes and routes to whichever
//! decoder matches, while [`save_sheet`] writes binary by default.
//! Saves are atomic — encode to `<path>.tmp`, fsync, rename — so a
//! failed save (including one injected at the `persist.bin_write`
//! failpoint) never clobbers the previous file.

mod codec;
mod paged;
mod reader;
pub mod wal;
mod writer;

pub use paged::PagedSheet;
pub use reader::SheetFile;

use crate::error::{Result, SheetError};
use crate::replica::VersionVector;
use crate::sheet::StoredSheet;
use std::io::Write;
use std::path::Path;

pub(crate) use codec::corrupt;
pub(crate) use writer::encode;

/// Whether `bytes` begin with the binary sheet magic (`SSAB`).
pub fn is_binary_image(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[0..4] == codec::MAGIC
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> SheetError {
    SheetError::Persist {
        message: format!("{what} {} failed: {e}", path.display()),
    }
}

/// Write a stored sheet to `path` in the binary columnar format, via
/// atomic temp-file + rename. The previous file (if any) survives every
/// failure mode short of a successful rename.
pub fn save_sheet(sheet: &StoredSheet, path: impl AsRef<Path>) -> Result<()> {
    ssa_relation::fault_check!("persist.bin_write");
    let bytes = encode(sheet)?;
    write_atomic(path.as_ref(), &bytes)
}

/// [`save_sheet`], stamping a replication version vector into the meta
/// frame — the durable layer's compaction snapshots record which events
/// are already baked into the file.
pub fn save_sheet_with_vv(
    sheet: &StoredSheet,
    vv: &VersionVector,
    path: impl AsRef<Path>,
) -> Result<()> {
    ssa_relation::fault_check!("persist.bin_write");
    let bytes = writer::encode_with_vv(sheet, vv)?;
    write_atomic(path.as_ref(), &bytes)
}

/// Write a stored sheet to `path` in the JSON compatibility format,
/// with the same atomic temp-file + rename discipline.
pub fn save_sheet_json(sheet: &StoredSheet, path: impl AsRef<Path>) -> Result<()> {
    let text = sheet.to_json()?;
    write_atomic(path.as_ref(), text.as_bytes())
}

pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    let result = (|| {
        let mut f = std::fs::File::create(tmp).map_err(|e| io_err("create", tmp, e))?;
        f.write_all(bytes).map_err(|e| io_err("write", tmp, e))?;
        f.sync_all().map_err(|e| io_err("sync", tmp, e))?;
        drop(f);
        // Second arming point of `persist.bin_write`: the temp file is
        // fully written but the rename has not happened — a failure here
        // must leave the destination untouched.
        ssa_relation::fault_check!("persist.bin_write");
        std::fs::rename(tmp, path).map_err(|e| io_err("rename", tmp, e))
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(tmp);
    }
    result
}

/// Open a stored sheet from `path`, auto-detecting the format from its
/// magic bytes: binary files materialize through the lazy reader, JSON
/// files go through the §12 compatibility decoder.
pub fn open_sheet(path: impl AsRef<Path>) -> Result<StoredSheet> {
    let path = path.as_ref();
    let mut head = [0u8; 4];
    {
        use std::io::Read;
        let mut f = std::fs::File::open(path).map_err(|e| io_err("open", path, e))?;
        let n = f.read(&mut head).map_err(|e| io_err("read", path, e))?;
        if n < 4 {
            return Err(corrupt(format!(
                "{} is too short to be a sheet file",
                path.display()
            )));
        }
    }
    if is_binary_image(&head) {
        SheetFile::open(path)?.materialize()
    } else {
        let text = std::fs::read_to_string(path).map_err(|e| io_err("read", path, e))?;
        StoredSheet::from_json(&text)
    }
}

/// [`open_sheet`] plus the replication version vector stamped into the
/// file (empty for ordinary sheets and all JSON files).
pub fn open_sheet_with_vv(path: impl AsRef<Path>) -> Result<(StoredSheet, VersionVector)> {
    let path = path.as_ref();
    let mut head = [0u8; 4];
    {
        use std::io::Read;
        let mut f = std::fs::File::open(path).map_err(|e| io_err("open", path, e))?;
        let n = f.read(&mut head).map_err(|e| io_err("read", path, e))?;
        if n < 4 {
            return Err(corrupt(format!(
                "{} is too short to be a sheet file",
                path.display()
            )));
        }
    }
    if is_binary_image(&head) {
        let file = SheetFile::open(path)?;
        let vv = file.replica_vv().clone();
        Ok((file.materialize()?, vv))
    } else {
        let text = std::fs::read_to_string(path).map_err(|e| io_err("read", path, e))?;
        Ok((StoredSheet::from_json(&text)?, VersionVector::new()))
    }
}

/// Open a binary sheet file lazily (see [`PagedSheet`]). JSON files are
/// rejected here: the compat path has no paged representation, use
/// [`open_sheet`] for those.
pub fn open_paged(path: impl AsRef<Path>) -> Result<PagedSheet> {
    PagedSheet::open(path)
}
