//! Encoder: [`StoredSheet`] → binary columnar bytes (DESIGN.md §16).
//!
//! Layout, in file order:
//!
//! ```text
//! "SSAB" u32:version                          -- fixed 8-byte head
//! META frame                                  -- names, schema, rows, state
//! DICT frame                                  -- sheet-local string table
//! CHUNK frame *                               -- per column, pages of 64Ki rows
//! FOOTER frame                                -- offsets of all of the above
//! u64:footer_offset "SSAE"                    -- fixed 12-byte tail
//! ```
//!
//! Every frame is `kind, len, crc32(payload), payload`; the reader
//! verifies the CRC before parsing a single payload byte. Interner ids
//! never reach disk: string cells are written as indexes into the DICT
//! frame, which holds resolved text.

use super::codec::{
    put_i64, put_str, put_u32, put_u64, write_bitmap, write_frame, FrameKind, BINARY_VERSION,
    MAGIC, TAIL_MAGIC,
};
use crate::error::Result;
use crate::persist;
use crate::replica::VersionVector;
use crate::sheet::StoredSheet;
use ssa_relation::{Value, ValueType};
use std::collections::HashMap;

/// Rows per column chunk. Small enough that a point query over one
/// column reads a bounded slice; large enough that frame overhead
/// (9 bytes + footer entry) is noise.
pub(crate) const PAGE_ROWS: usize = 65_536;

/// Per-chunk value encodings. A chunk is encoded by the narrowest layout
/// that fits the values actually present — relations are dynamically
/// typed per cell, so this is decided per chunk, not per column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChunkEncoding {
    /// Null bitmap + `i64` per row.
    Int = 0,
    /// Null bitmap + `f64::to_bits` per row (exact, NaN payloads kept).
    Float = 1,
    /// Null bitmap + `u32` local dictionary id per row.
    Str = 2,
    /// Null bitmap + value bitmap.
    Bool = 3,
    /// Tagged per-value encoding for mixed-type chunks.
    Mixed = 4,
}

impl ChunkEncoding {
    pub(crate) fn from_u8(b: u8) -> Result<ChunkEncoding> {
        match b {
            0 => Ok(ChunkEncoding::Int),
            1 => Ok(ChunkEncoding::Float),
            2 => Ok(ChunkEncoding::Str),
            3 => Ok(ChunkEncoding::Bool),
            4 => Ok(ChunkEncoding::Mixed),
            other => Err(super::codec::corrupt(format!(
                "unknown chunk encoding {other}"
            ))),
        }
    }
}

pub(crate) fn type_tag(ty: ValueType) -> u8 {
    match ty {
        ValueType::Null => 0,
        ValueType::Bool => 1,
        ValueType::Int => 2,
        ValueType::Float => 3,
        ValueType::Str => 4,
    }
}

pub(crate) fn type_from_tag(tag: u8) -> Result<ValueType> {
    match tag {
        0 => Ok(ValueType::Null),
        1 => Ok(ValueType::Bool),
        2 => Ok(ValueType::Int),
        3 => Ok(ValueType::Float),
        4 => Ok(ValueType::Str),
        other => Err(super::codec::corrupt(format!(
            "unknown column type tag {other}"
        ))),
    }
}

/// Sheet-local string dictionary: maps global interner ids (process
/// lifetime only) to dense local ids (what the file stores).
struct Dict {
    local_of: HashMap<u32, u32>,
    strings: Vec<&'static str>,
}

impl Dict {
    fn build(sheet: &StoredSheet) -> Dict {
        let mut dict = Dict {
            local_of: HashMap::new(),
            strings: Vec::new(),
        };
        for row in sheet.relation.rows() {
            for v in row.values() {
                if let Value::Str(s) = v {
                    dict.local_of.entry(s.id()).or_insert_with(|| {
                        dict.strings.push(s.as_str());
                        (dict.strings.len() - 1) as u32
                    });
                }
            }
        }
        dict
    }

    fn local(&self, sym: ssa_relation::Sym) -> u32 {
        // Built from the same relation being encoded, so every string
        // cell has an entry; a miss would be a writer bug and 0 merely
        // mis-points within the dictionary (caught by round-trip tests).
        self.local_of.get(&sym.id()).copied().unwrap_or(0)
    }

    fn payload(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        put_u32(&mut out, self.strings.len() as u32);
        for s in &self.strings {
            put_str(&mut out, s)?;
        }
        Ok(out)
    }
}

fn meta_payload(sheet: &StoredSheet, vv: &VersionVector) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    put_str(&mut out, &sheet.name)?;
    put_str(&mut out, sheet.relation.name())?;
    let columns = sheet.relation.schema().columns();
    put_u32(&mut out, columns.len() as u32);
    for c in columns {
        put_str(&mut out, &c.name)?;
        out.push(type_tag(c.ty));
    }
    put_u64(&mut out, sheet.relation.len() as u64);
    // The query state rides along as the JSON codec's state object: it is
    // tiny (no row data), structurally lossless, and reusing it keeps one
    // source of truth for expression encoding across both formats.
    put_str(&mut out, &persist::state_to_json(&sheet.state).render())?;
    // Optional trailing section: the replication version vector of a
    // compaction snapshot (count + (replica, seq) pairs). Written only
    // when non-empty, so ordinary sheets keep the original byte layout;
    // the reader treats an exhausted cursor as an empty vector.
    if !vv.is_empty() {
        put_u32(&mut out, vv.iter().count() as u32);
        for (replica, seq) in vv.iter() {
            put_u64(&mut out, replica);
            put_u64(&mut out, seq);
        }
    }
    Ok(out)
}

/// Pick the narrowest encoding that covers every value in the page.
fn choose_encoding(page: &[&Value]) -> ChunkEncoding {
    let mut ty: Option<ValueType> = None;
    for v in page {
        let vt = v.value_type();
        if vt == ValueType::Null {
            continue;
        }
        match ty {
            None => ty = Some(vt),
            Some(t) if t == vt => {}
            Some(_) => return ChunkEncoding::Mixed,
        }
    }
    match ty {
        // All-null pages use the Int layout: bitmap of zeros, no bodies.
        None | Some(ValueType::Null) => ChunkEncoding::Int,
        Some(ValueType::Int) => ChunkEncoding::Int,
        Some(ValueType::Float) => ChunkEncoding::Float,
        Some(ValueType::Str) => ChunkEncoding::Str,
        Some(ValueType::Bool) => ChunkEncoding::Bool,
    }
}

fn chunk_payload(col: u32, first_row: u64, page: &[&Value], dict: &Dict) -> Vec<u8> {
    let enc = choose_encoding(page);
    let mut out = Vec::new();
    put_u32(&mut out, col);
    put_u64(&mut out, first_row);
    put_u32(&mut out, page.len() as u32);
    out.push(enc as u8);
    match enc {
        ChunkEncoding::Int => {
            write_bitmap(&mut out, page.len(), |i| !matches!(page[i], Value::Null));
            for v in page {
                put_i64(&mut out, if let Value::Int(n) = v { *n } else { 0 });
            }
        }
        ChunkEncoding::Float => {
            write_bitmap(&mut out, page.len(), |i| !matches!(page[i], Value::Null));
            for v in page {
                let bits = if let Value::Float(f) = v {
                    f.to_bits()
                } else {
                    0
                };
                put_u64(&mut out, bits);
            }
        }
        ChunkEncoding::Str => {
            write_bitmap(&mut out, page.len(), |i| !matches!(page[i], Value::Null));
            for v in page {
                let id = if let Value::Str(s) = v {
                    dict.local(*s)
                } else {
                    0
                };
                put_u32(&mut out, id);
            }
        }
        ChunkEncoding::Bool => {
            write_bitmap(&mut out, page.len(), |i| !matches!(page[i], Value::Null));
            write_bitmap(&mut out, page.len(), |i| {
                matches!(page[i], Value::Bool(true))
            });
        }
        ChunkEncoding::Mixed => {
            for v in page {
                match v {
                    Value::Null => out.push(0),
                    Value::Bool(false) => out.push(1),
                    Value::Bool(true) => out.push(2),
                    Value::Int(n) => {
                        out.push(3);
                        put_i64(&mut out, *n);
                    }
                    Value::Float(f) => {
                        out.push(4);
                        put_u64(&mut out, f.to_bits());
                    }
                    Value::Str(s) => {
                        out.push(5);
                        put_u32(&mut out, dict.local(*s));
                    }
                }
            }
        }
    }
    out
}

/// Encode a stored sheet into the full binary file image.
pub(crate) fn encode(sheet: &StoredSheet) -> Result<Vec<u8>> {
    encode_with_vv(sheet, &VersionVector::new())
}

/// [`encode`], stamping a replication version vector into the meta frame
/// (compaction snapshots record which events are baked in).
pub(crate) fn encode_with_vv(sheet: &StoredSheet, vv: &VersionVector) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&BINARY_VERSION.to_le_bytes());

    let meta_off = write_frame(&mut out, FrameKind::Meta, &meta_payload(sheet, vv)?)?;
    let dict = Dict::build(sheet);
    let dict_off = write_frame(&mut out, FrameKind::Dict, &dict.payload()?)?;

    let rows = sheet.relation.rows();
    let ncols = sheet.relation.schema().len();
    // (offset, first_row, nrows) per chunk, per column.
    let mut index: Vec<Vec<(u64, u64, u32)>> = vec![Vec::new(); ncols];
    let mut page: Vec<&Value> = Vec::with_capacity(PAGE_ROWS.min(rows.len().max(1)));
    for (col, chunks) in index.iter_mut().enumerate() {
        let mut first_row = 0usize;
        while first_row < rows.len() {
            let end = (first_row + PAGE_ROWS).min(rows.len());
            page.clear();
            page.extend(rows[first_row..end].iter().map(|t| &t.values()[col]));
            let payload = chunk_payload(col as u32, first_row as u64, &page, &dict);
            let off = write_frame(&mut out, FrameKind::Chunk, &payload)?;
            chunks.push((off, first_row as u64, page.len() as u32));
            first_row = end;
        }
    }

    let mut footer = Vec::new();
    put_u64(&mut footer, meta_off);
    put_u64(&mut footer, dict_off);
    put_u64(&mut footer, rows.len() as u64);
    put_u32(&mut footer, ncols as u32);
    for chunks in &index {
        put_u32(&mut footer, chunks.len() as u32);
        for &(off, first, n) in chunks {
            put_u64(&mut footer, off);
            put_u64(&mut footer, first);
            put_u32(&mut footer, n);
        }
    }
    let footer_off = write_frame(&mut out, FrameKind::Footer, &footer)?;

    put_u64(&mut out, footer_off);
    out.extend_from_slice(&TAIL_MAGIC);
    Ok(out)
}
