//! Per-sheet write-ahead log and the durable replica built on it
//! (DESIGN.md §17).
//!
//! A durable sheet is two files: `<path>` (a binary compaction snapshot,
//! the format of §16, stamped with the version vector of everything
//! baked into it) and `<path>.wal` — the events committed since that
//! snapshot, one CRC-framed JSON event per frame:
//!
//! ```text
//! "SSAW" u32:version                  -- fixed 8-byte head
//! WALHEADER frame                     -- replica id, compacted vv, frontier
//! WALOP frame *                       -- one OpEvent each, append-only
//! ```
//!
//! There is no tail sentinel — a WAL is *expected* to end mid-frame
//! after a crash. Recovery distinguishes the two corruption shapes:
//! a torn **final** frame (header or payload past EOF, or a CRC
//! mismatch on the last frame) is the normal crash signature, trimmed
//! and logged; a bad frame **with intact frames after it** means the
//! file was damaged after writing, and recovery refuses with
//! [`SheetError::TornLog`] rather than silently dropping committed ops.
//!
//! Durability pipeline (the ack-ordering invariant): apply in memory →
//! append to WAL → fsync per policy → only then publish/ack. A failed
//! append rolls the in-memory apply back, so an op is never acknowledged
//! unless it is at least queued in the OS page cache, and with
//! `FsyncPolicy::Always` never acknowledged before it is on disk.

use super::codec::{self, parse_frame_header, write_frame, Cursor, FrameKind, FRAME_HEADER_LEN};
use super::{corrupt, open_sheet_with_vv, save_sheet_with_vv, write_atomic};
use crate::error::{Result, SheetError};
use crate::replica::{EventId, EventKey, MergeOutcome, OpEvent, Replica, SheetOp, VersionVector};
use ssa_relation::Relation;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Leading magic of a write-ahead log file.
pub(crate) const WAL_MAGIC: [u8; 4] = *b"SSAW";
pub(crate) const WAL_VERSION: u32 = 1;
const WAL_HEAD_LEN: u64 = 8;

/// When acknowledged writes reach disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync before every ack: an acked op is on disk, full stop.
    Always,
    /// fsync at most once per interval: an acked op is on disk within
    /// the interval (or sooner); a crash can lose at most the tail of
    /// acks inside the current window.
    Batch(Duration),
    /// Never fsync explicitly; the OS decides. Fastest, weakest.
    Never,
}

impl FsyncPolicy {
    /// Parse the CLI spelling: `always`, `batch:<ms>`, or `never`.
    pub fn parse(s: &str) -> Result<FsyncPolicy> {
        if s.eq_ignore_ascii_case("always") {
            Ok(FsyncPolicy::Always)
        } else if s.eq_ignore_ascii_case("never") {
            Ok(FsyncPolicy::Never)
        } else if let Some(ms) = s.strip_prefix("batch:") {
            let ms: u64 = ms.parse().map_err(|_| SheetError::Persist {
                message: format!("bad fsync batch interval {ms:?}"),
            })?;
            Ok(FsyncPolicy::Batch(Duration::from_millis(ms)))
        } else {
            Err(SheetError::Persist {
                message: format!("bad fsync policy {s:?} (always|batch:<ms>|never)"),
            })
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Batch(d) => write!(f, "batch:{}", d.as_millis()),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// The conventional WAL path for a snapshot at `path`: `<path>.wal`.
pub fn wal_path(snapshot: &Path) -> PathBuf {
    let mut os = snapshot.as_os_str().to_owned();
    os.push(".wal");
    PathBuf::from(os)
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> SheetError {
    SheetError::Persist {
        message: format!("wal: {what} {} failed: {e}", path.display()),
    }
}

fn header_image(replica: u64, vv: &VersionVector, frontier: EventKey) -> Result<Vec<u8>> {
    let mut payload = Vec::new();
    codec::put_u64(&mut payload, replica);
    codec::put_u32(&mut payload, vv.iter().count() as u32);
    for (r, s) in vv.iter() {
        codec::put_u64(&mut payload, r);
        codec::put_u64(&mut payload, s);
    }
    codec::put_u64(&mut payload, frontier.0);
    codec::put_u64(&mut payload, frontier.1);
    codec::put_u64(&mut payload, frontier.2);
    let mut out = Vec::new();
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    write_frame(&mut out, FrameKind::WalHeader, &payload)?;
    Ok(out)
}

/// Append handle over one WAL file.
pub struct WalWriter {
    file: std::fs::File,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Logical end of file (everything at or past this offset is
    /// unwritten or rolled back).
    len: u64,
    last_sync: Instant,
    dirty: bool,
}

impl WalWriter {
    /// Create a fresh WAL (head + header frame only) atomically, then
    /// open it for appending.
    pub fn create(
        path: impl Into<PathBuf>,
        replica: u64,
        vv: &VersionVector,
        frontier: EventKey,
        policy: FsyncPolicy,
    ) -> Result<WalWriter> {
        let path = path.into();
        let image = header_image(replica, vv, frontier)?;
        write_atomic(&path, &image)?;
        Self::open_at(path, image.len() as u64, policy)
    }

    /// Open an existing WAL for appending at `len` (the validated end
    /// from [`read_wal`]); anything past it is a trimmed torn tail.
    pub fn open_at(path: impl Into<PathBuf>, len: u64, policy: FsyncPolicy) -> Result<WalWriter> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("open", &path, e))?;
        file.set_len(len)
            .map_err(|e| io_err("truncate", &path, e))?;
        let mut writer = WalWriter {
            file,
            path,
            policy,
            len,
            last_sync: Instant::now(),
            dirty: false,
        };
        writer
            .file
            .seek(SeekFrom::Start(len))
            .map_err(|e| io_err("seek", &writer.path.clone(), e))?;
        Ok(writer)
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEAD_LEN
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one event frame; returns the offset the log had *before*
    /// the append, for [`Self::truncate_to`] rollback. Honors the fsync
    /// policy before returning, so `Always` means "on disk when Ok".
    pub fn append(&mut self, event: &OpEvent) -> Result<u64> {
        ssa_relation::fault_check!("wal.append");
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::WalOp, event.encode()?.as_bytes())?;
        let before = self.len;
        self.file
            .write_all(&buf)
            .map_err(|e| io_err("append", &self.path, e))?;
        self.len += buf.len() as u64;
        self.dirty = true;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Batch(interval) => {
                if self.last_sync.elapsed() >= interval {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(before)
    }

    /// Force everything appended so far to disk.
    pub fn sync(&mut self) -> Result<()> {
        ssa_relation::fault_check!("wal.fsync");
        self.file
            .sync_data()
            .map_err(|e| io_err("fsync", &self.path, e))?;
        self.dirty = false;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Sync only if there are unsynced appends (the batch flusher's
    /// periodic call).
    pub fn sync_if_dirty(&mut self) -> Result<()> {
        if self.dirty {
            self.sync()?;
        }
        Ok(())
    }

    /// Roll the log back to `offset` (a value previously returned by
    /// [`Self::append`]) — the rollback half of a failed commit.
    pub fn truncate_to(&mut self, offset: u64) -> Result<()> {
        self.file
            .set_len(offset)
            .map_err(|e| io_err("truncate", &self.path, e))?;
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| io_err("seek", &self.path, e))?;
        self.len = offset;
        self.file
            .sync_data()
            .map_err(|e| io_err("fsync", &self.path, e))?;
        Ok(())
    }
}

/// Everything recovered from one WAL file.
pub struct WalContents {
    pub replica: u64,
    /// Compacted version vector recorded at WAL creation.
    pub vv: VersionVector,
    pub frontier: EventKey,
    pub events: Vec<OpEvent>,
    /// Bytes of torn tail trimmed (0 for a cleanly closed log).
    pub trimmed: u64,
    /// Validated end of log — where appending may resume.
    pub end: u64,
}

/// Read and validate a WAL. A torn final frame is tolerated and
/// reported via `trimmed`; a corrupt frame with intact data after it is
/// [`SheetError::TornLog`].
pub fn read_wal(path: impl AsRef<Path>) -> Result<WalContents> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| io_err("read", path, e))?;
    let file_len = bytes.len() as u64;
    if file_len < WAL_HEAD_LEN {
        // The head is written atomically at creation; anything shorter
        // was never a WAL.
        return Err(corrupt(format!(
            "wal {} too short ({file_len} bytes)",
            path.display()
        )));
    }
    if bytes[0..4] != WAL_MAGIC {
        return Err(corrupt(format!("wal {}: bad magic", path.display())));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != WAL_VERSION {
        return Err(corrupt(format!(
            "wal {}: unsupported version {version}",
            path.display()
        )));
    }

    // Walk frames. Each iteration classifies the frame at `pos`:
    // fits-and-valid → consume; anything wrong at the tail → trim;
    // anything wrong earlier → typed TornLog error.
    let torn = |offset: u64| SheetError::TornLog {
        path: path.display().to_string(),
        offset,
    };
    let mut pos = WAL_HEAD_LEN;
    let mut frames: Vec<(FrameKind, &[u8], u64)> = Vec::new();
    let mut end = pos;
    let mut trimmed = 0;
    while pos < file_len {
        if pos + FRAME_HEADER_LEN > file_len {
            trimmed = file_len - pos;
            break;
        }
        let at = pos as usize;
        let header: [u8; 9] = bytes[at..at + FRAME_HEADER_LEN as usize]
            .try_into()
            .map_err(|_| corrupt("frame header slice"))?;
        // Read the length field before trusting the kind byte: a torn
        // tail can corrupt either, and the claimed extent tells us
        // whether this was the final frame.
        let claimed_len = u64::from(u32::from_le_bytes([
            header[1], header[2], header[3], header[4],
        ]));
        let frame_end = pos + FRAME_HEADER_LEN + claimed_len;
        let is_last = frame_end >= file_len;
        let parsed = parse_frame_header(&header)
            .ok()
            .and_then(|(kind, len, crc)| {
                if frame_end > file_len {
                    return None;
                }
                let payload = &bytes[at + FRAME_HEADER_LEN as usize..frame_end as usize];
                (codec::crc32(payload) == crc && len as u64 == claimed_len)
                    .then_some((kind, payload))
            });
        match parsed {
            Some((kind, payload)) => {
                frames.push((kind, payload, pos));
                pos = frame_end;
                end = pos;
            }
            None if is_last => {
                trimmed = file_len - pos;
                break;
            }
            None => return Err(torn(pos)),
        }
    }

    // First frame must be the header; later frames must be ops. A
    // header-position mismatch is not a crash signature (creation is
    // atomic), so it is always an error.
    let Some(&(FrameKind::WalHeader, header_payload, _)) = frames.first() else {
        return Err(corrupt(format!(
            "wal {}: missing header frame",
            path.display()
        )));
    };
    let mut cur = Cursor::new(header_payload);
    let replica = cur.u64()?;
    let n = cur.u32()?;
    let mut vv = VersionVector::new();
    for _ in 0..n {
        let r = cur.u64()?;
        let s = cur.u64()?;
        vv.record(EventId { replica: r, seq: s });
    }
    let frontier = (cur.u64()?, cur.u64()?, cur.u64()?);
    if !cur.is_empty() {
        return Err(corrupt(format!(
            "wal {}: trailing bytes in header frame",
            path.display()
        )));
    }

    let mut events = Vec::with_capacity(frames.len().saturating_sub(1));
    for &(kind, payload, offset) in &frames[1..] {
        if kind != FrameKind::WalOp {
            return Err(torn(offset));
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| corrupt(format!("wal {}: op frame is not UTF-8", path.display())))?;
        events.push(OpEvent::decode(text)?);
    }

    Ok(WalContents {
        replica,
        vv,
        frontier,
        events,
        trimmed,
        end,
    })
}

/// Receipt of one durable commit, for rolling it back if a later stage
/// (e.g. the snapshot publish) fails.
#[derive(Debug)]
pub struct CommitReceipt {
    pub event: OpEvent,
    wal_before: Option<u64>,
}

/// A [`Replica`] whose committed events are persisted: snapshot file +
/// WAL, with crash recovery, compaction, and merge absorption.
pub struct DurableSheet {
    replica: Replica,
    wal: Option<WalWriter>,
    snapshot_path: Option<PathBuf>,
    policy: FsyncPolicy,
}

impl DurableSheet {
    /// A purely in-memory replica (no WAL, no snapshot) — the server's
    /// default for sheets created without a durability directory.
    pub fn in_memory(replica_id: u64, base: Relation) -> Result<DurableSheet> {
        Ok(DurableSheet {
            replica: Replica::new(replica_id, base)?,
            wal: None,
            snapshot_path: None,
            policy: FsyncPolicy::Never,
        })
    }

    /// Create a new durable sheet at `path`: writes the genesis snapshot
    /// and an empty WAL, both atomically.
    pub fn create(
        path: impl Into<PathBuf>,
        replica_id: u64,
        base: Relation,
        policy: FsyncPolicy,
    ) -> Result<DurableSheet> {
        let path = path.into();
        let replica = Replica::new(replica_id, base)?;
        save_sheet_with_vv(&replica.freeze_raw(), replica.compacted_vv(), &path)?;
        let wal = WalWriter::create(
            wal_path(&path),
            replica_id,
            replica.compacted_vv(),
            replica.frontier(),
            policy,
        )?;
        Ok(DurableSheet {
            replica,
            wal: Some(wal),
            snapshot_path: Some(path),
            policy,
        })
    }

    /// Recover a durable sheet: open the snapshot, replay the WAL tail
    /// onto it (trimming a torn final frame), and resume appending. If
    /// no WAL exists next to the snapshot, a fresh one is created — this
    /// is how a plain §16 sheet file is adopted into the durable world.
    pub fn open(
        path: impl Into<PathBuf>,
        replica_id: u64,
        policy: FsyncPolicy,
    ) -> Result<DurableSheet> {
        let path = path.into();
        let (stored, snapshot_vv) = open_sheet_with_vv(&path)?;
        let wal_file = wal_path(&path);
        if !wal_file.exists() {
            // No log: adopt the snapshot as compacted history. Events
            // baked into it are unknown individually, so the frontier
            // must upper-bound every possible baked key.
            let frontier = if snapshot_vv.is_empty() {
                (0, 0, 0)
            } else {
                (snapshot_vv.weight(), u64::MAX, u64::MAX)
            };
            let replica = Replica::recover(replica_id, &stored, snapshot_vv, frontier)?;
            let wal = WalWriter::create(
                wal_file,
                replica_id,
                replica.compacted_vv(),
                replica.frontier(),
                policy,
            )?;
            return Ok(DurableSheet {
                replica,
                wal: Some(wal),
                snapshot_path: Some(path),
                policy,
            });
        }

        ssa_relation::fault_check!("wal.replay");
        let contents = read_wal(&wal_file)?;
        if contents.trimmed > 0 {
            eprintln!(
                "wal {}: trimmed {} bytes of torn tail",
                wal_file.display(),
                contents.trimmed
            );
        }
        // The snapshot's vector is authoritative: a crash between
        // "snapshot renamed" and "fresh WAL written" during compaction
        // leaves an old WAL whose events are already baked — they are
        // covered by snapshot_vv and skipped here.
        let frontier = contents.frontier;
        let mut replica = Replica::recover(replica_id, &stored, snapshot_vv.clone(), frontier)?;
        let fresh: Vec<OpEvent> = contents
            .events
            .into_iter()
            .filter(|e| !snapshot_vv.covers(e.id()))
            .collect();
        replica.merge(&fresh)?;
        let wal = WalWriter::open_at(wal_file, contents.end, policy)?;
        Ok(DurableSheet {
            replica,
            wal: Some(wal),
            snapshot_path: Some(path),
            policy,
        })
    }

    pub fn replica(&self) -> &Replica {
        &self.replica
    }

    /// Evaluate the current view (see [`Replica::view`]).
    pub fn view(&mut self) -> Result<&crate::eval::Derived> {
        self.replica.view()
    }

    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    pub fn snapshot_path(&self) -> Option<&Path> {
        self.snapshot_path.as_deref()
    }

    pub fn wal_len(&self) -> u64 {
        self.wal.as_ref().map_or(0, WalWriter::len)
    }

    /// Commit one local op: apply in memory, then append to the WAL
    /// (rolling the memory apply back if the append fails, so the op
    /// either exists everywhere or nowhere).
    pub fn commit(&mut self, op: SheetOp) -> Result<CommitReceipt> {
        let event = self.replica.commit(op)?;
        let wal_before = match &mut self.wal {
            Some(wal) => match wal.append(&event) {
                Ok(before) => Some(before),
                Err(append_err) => {
                    self.replica.rollback_last()?;
                    return Err(append_err);
                }
            },
            None => None,
        };
        Ok(CommitReceipt { event, wal_before })
    }

    /// Undo a commit whose downstream stage failed (the op was never
    /// acked): remove it from memory and truncate it off the WAL.
    pub fn abort(&mut self, receipt: &CommitReceipt) -> Result<()> {
        self.replica.rollback_last()?;
        if let (Some(wal), Some(before)) = (&mut self.wal, receipt.wal_before) {
            wal.truncate_to(before)?;
        }
        Ok(())
    }

    /// Merge events from a peer and persist the ones actually adopted.
    /// If persisting fails partway, the adopted events are retracted
    /// from memory so disk and memory never disagree about history.
    pub fn absorb(&mut self, events: &[OpEvent]) -> Result<MergeOutcome> {
        let outcome = self.replica.merge(events)?;
        if let Some(wal) = &mut self.wal {
            let mut first_offset = None;
            let mut failure = None;
            for event in &outcome.added {
                match wal.append(event) {
                    Ok(before) => {
                        first_offset.get_or_insert(before);
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = failure {
                if let Some(offset) = first_offset {
                    wal.truncate_to(offset)?;
                }
                let ids: Vec<EventId> = outcome.added.iter().map(OpEvent::id).collect();
                self.replica.retract(&ids)?;
                return Err(e);
            }
        }
        Ok(outcome)
    }

    /// The events a peer at `peer_vv` is missing (see
    /// [`Replica::events_since`]).
    pub fn events_since(&self, peer_vv: &VersionVector) -> Result<Vec<OpEvent>> {
        self.replica.events_since(peer_vv)
    }

    /// Flush pending batched appends to disk.
    pub fn sync_now(&mut self) -> Result<()> {
        match &mut self.wal {
            Some(wal) => wal.sync_if_dirty(),
            None => Ok(()),
        }
    }

    /// Compact: write the current sheet as the new snapshot (atomic
    /// tmp+fsync+rename), then start a fresh empty WAL, then seal the
    /// in-memory log. Crash-safe at every step: an old WAL next to a new
    /// snapshot replays as duplicates (covered by the snapshot vector),
    /// which recovery skips.
    pub fn compact(&mut self) -> Result<()> {
        let Some(path) = self.snapshot_path.clone() else {
            return Err(SheetError::Persist {
                message: "cannot compact an in-memory sheet".to_string(),
            });
        };
        if !self.replica.can_compact() {
            return Err(SheetError::BehindCompaction {
                detail: "log has causal gaps; sync with peers before compacting".to_string(),
            });
        }
        let vv = self.replica.frontier_vv();
        save_sheet_with_vv(&self.replica.freeze_raw(), &vv, &path)?;
        let frontier = self
            .replica
            .log()
            .last()
            .map_or(self.replica.frontier(), OpEvent::key);
        let wal = WalWriter::create(
            wal_path(&path),
            self.replica.id(),
            &vv,
            frontier,
            self.policy,
        )?;
        self.wal = Some(wal);
        self.replica.mark_compacted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::used_cars;
    use ssa_relation::Expr;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ssa-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn select_op(min_price: i64) -> SheetOp {
        SheetOp::Select {
            predicate: Expr::col("Price").gt(Expr::lit(min_price)),
        }
    }

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("batch:25").unwrap(),
            FsyncPolicy::Batch(Duration::from_millis(25))
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(
            FsyncPolicy::parse("batch:25").unwrap().to_string(),
            "batch:25"
        );
    }

    #[test]
    fn commit_persists_and_reopen_recovers() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("cars.ssab");
        let fp = {
            let mut sheet =
                DurableSheet::create(&path, 1, used_cars(), FsyncPolicy::Always).expect("create");
            sheet.commit(select_op(15000)).expect("commit");
            sheet
                .commit(SheetOp::Rename {
                    from: "Mileage".into(),
                    to: "Miles".into(),
                })
                .expect("commit");
            sheet.replica().fingerprint()
        };
        let recovered = DurableSheet::open(&path, 1, FsyncPolicy::Always).expect("open");
        assert_eq!(recovered.replica().fingerprint(), fp);
        assert_eq!(recovered.replica().log().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_frame_is_trimmed_and_earlier_ops_survive() {
        let dir = tmp_dir("torn-tail");
        let path = dir.join("cars.ssab");
        let fp_one = {
            let mut sheet =
                DurableSheet::create(&path, 1, used_cars(), FsyncPolicy::Always).expect("create");
            sheet.commit(select_op(15000)).expect("commit 1");
            let fp = sheet.replica().fingerprint();
            sheet.commit(select_op(16000)).expect("commit 2");
            fp
        };
        // Tear the last frame: chop bytes off the end of the file.
        let wal_file = wal_path(&path);
        let bytes = std::fs::read(&wal_file).expect("read wal");
        std::fs::write(&wal_file, &bytes[..bytes.len() - 7]).expect("tear");
        let recovered = DurableSheet::open(&path, 1, FsyncPolicy::Always).expect("open");
        assert_eq!(recovered.replica().log().len(), 1, "second op trimmed");
        assert_eq!(recovered.replica().fingerprint(), fp_one);
        // The trim is durable: appending resumes at the validated end.
        let reread = read_wal(&wal_file).expect("reread");
        assert_eq!(reread.trimmed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error() {
        let dir = tmp_dir("mid-log");
        let path = dir.join("cars.ssab");
        {
            let mut sheet =
                DurableSheet::create(&path, 1, used_cars(), FsyncPolicy::Always).expect("create");
            sheet.commit(select_op(15000)).expect("commit 1");
            sheet.commit(select_op(16000)).expect("commit 2");
        }
        // Flip a payload byte of the *first* op frame (there is intact
        // data after it, so this is not a crash signature).
        let wal_file = wal_path(&path);
        let mut bytes = std::fs::read(&wal_file).expect("read wal");
        let contents = read_wal(&wal_file).expect("clean read");
        assert_eq!(contents.events.len(), 2);
        // Locate the first op frame: skip head + header frame.
        let mut pos = 8usize;
        let hdr_len = u32::from_le_bytes([
            bytes[pos + 1],
            bytes[pos + 2],
            bytes[pos + 3],
            bytes[pos + 4],
        ]) as usize;
        pos += 9 + hdr_len;
        let first_op = pos;
        bytes[first_op + 9 + 4] ^= 0xFF;
        std::fs::write(&wal_file, &bytes).expect("corrupt");
        let err = match DurableSheet::open(&path, 1, FsyncPolicy::Always) {
            Err(e) => e,
            Ok(_) => panic!("mid-log corruption must fail recovery"),
        };
        assert!(
            matches!(err, SheetError::TornLog { offset, .. } if offset == first_op as u64),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrites_snapshot_and_empties_log() {
        let dir = tmp_dir("compact");
        let path = dir.join("cars.ssab");
        let fp = {
            let mut sheet =
                DurableSheet::create(&path, 1, used_cars(), FsyncPolicy::Always).expect("create");
            sheet.commit(select_op(15000)).expect("commit");
            sheet.commit(SheetOp::Dedup).expect("commit");
            sheet.compact().expect("compact");
            assert!(sheet.replica().log().is_empty());
            assert!(sheet.wal_len() <= 200, "fresh wal is near-empty");
            // Post-compaction commits land in the fresh log.
            sheet.commit(select_op(100)).expect("commit");
            sheet.replica().fingerprint()
        };
        let recovered = DurableSheet::open(&path, 1, FsyncPolicy::Always).expect("open");
        assert_eq!(recovered.replica().fingerprint(), fp);
        assert_eq!(recovered.replica().log().len(), 1);
        // The compacted events are genuinely baked into the snapshot.
        assert!(recovered.replica().compacted_vv().get(1) >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absorb_persists_merged_events() {
        let dir = tmp_dir("absorb");
        let path_a = dir.join("a.ssab");
        let mut a = DurableSheet::create(&path_a, 1, used_cars(), FsyncPolicy::Always).expect("a");
        let mut b = DurableSheet::in_memory(2, used_cars()).expect("b");
        b.commit(select_op(15000)).expect("b commit");
        let events = b.events_since(&a.replica().frontier_vv()).expect("events");
        let outcome = a.absorb(&events).expect("absorb");
        assert_eq!(outcome.added.len(), 1);
        assert_eq!(a.replica().fingerprint(), b.replica().fingerprint());
        // The absorbed event survives restart.
        drop(a);
        let recovered = DurableSheet::open(&path_a, 1, FsyncPolicy::Always).expect("open");
        assert_eq!(recovered.replica().fingerprint(), b.replica().fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn failed_append_rolls_back_the_memory_apply() {
        use ssa_relation::fault;
        let dir = tmp_dir("append-fault");
        let path = dir.join("cars.ssab");
        let mut sheet =
            DurableSheet::create(&path, 1, used_cars(), FsyncPolicy::Always).expect("create");
        let before = sheet.replica().fingerprint();
        let _guard = fault::lock();
        fault::reset();
        fault::arm("wal.append", 1, fault::Behavior::Error);
        let err = sheet.commit(select_op(15000)).expect_err("commit");
        fault::reset();
        assert!(err.to_string().contains("wal.append"), "{err}");
        assert_eq!(sheet.replica().fingerprint(), before);
        assert!(sheet.replica().log().is_empty());
        // The sheet is still usable and consistent after the rollback.
        sheet.commit(select_op(15000)).expect("retry succeeds");
        drop(sheet);
        let recovered = DurableSheet::open(&path, 1, FsyncPolicy::Always).expect("open");
        assert_eq!(recovered.replica().log().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
