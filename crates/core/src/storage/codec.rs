//! Byte-level primitives of the binary sheet format: CRC-checked frames,
//! little-endian integer encoding, and a bounds-checked cursor.
//!
//! Everything here is deliberately dumb: the writer appends to a
//! `Vec<u8>`, the reader walks a borrowed slice, and every read is
//! length-checked so corrupt input surfaces as a typed
//! [`SheetError::Persist`](crate::error::SheetError) — never a panic or
//! an out-of-bounds slice.

use crate::error::{Result, SheetError};

/// Leading magic of a binary sheet file (`header = magic + version`).
pub(crate) const MAGIC: [u8; 4] = *b"SSAB";
/// Trailing magic, after the footer offset — lets the reader verify the
/// file was written to completion before trusting any offset in it.
pub(crate) const TAIL_MAGIC: [u8; 4] = *b"SSAE";
/// Binary format version; bump on incompatible layout changes.
pub(crate) const BINARY_VERSION: u32 = 1;
/// Fixed byte sizes of the file head (magic + version) and tail
/// (footer offset + tail magic).
pub(crate) const HEADER_LEN: u64 = 8;
pub(crate) const TAIL_LEN: u64 = 12;
/// Frame header: kind (1) + payload length (4) + payload CRC (4).
pub(crate) const FRAME_HEADER_LEN: u64 = 9;

/// A typed persistence error with a uniform prefix, so every decoder
/// failure is recognizably "the binary sheet codec said no".
pub(crate) fn corrupt(message: impl std::fmt::Display) -> SheetError {
    SheetError::Persist {
        message: format!("binary sheet: {message}"),
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven — no registry deps allowed, so the
// table is built at compile time.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 of a byte slice (IEEE polynomial, as in gzip/PNG).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Frame kinds. The footer indexes frames by offset, so kinds double as a
/// sanity check that an offset landed on the frame it claims to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameKind {
    /// Sheet name, relation name, schema, row count, query state.
    Meta = 1,
    /// Sheet-local string dictionary (local id = position).
    Dict = 2,
    /// One column chunk (a page of up to [`PAGE_ROWS`] values).
    ///
    /// [`PAGE_ROWS`]: crate::storage::writer::PAGE_ROWS
    Chunk = 3,
    /// Offsets of everything else; located via the fixed-size tail.
    Footer = 4,
    /// Write-ahead log header: replica id, compacted version vector,
    /// compaction frontier (first frame of a `.wal` file).
    WalHeader = 5,
    /// One committed [`OpEvent`](crate::replica::OpEvent) in a `.wal`
    /// file (payload is the event's JSON encoding).
    WalOp = 6,
}

impl FrameKind {
    pub(crate) fn from_u8(b: u8) -> Result<FrameKind> {
        match b {
            1 => Ok(FrameKind::Meta),
            2 => Ok(FrameKind::Dict),
            3 => Ok(FrameKind::Chunk),
            4 => Ok(FrameKind::Footer),
            5 => Ok(FrameKind::WalHeader),
            6 => Ok(FrameKind::WalOp),
            other => Err(corrupt(format!("unknown frame kind {other}"))),
        }
    }
}

/// Append one frame (`kind, len, crc, payload`) and return its offset
/// within `out`.
pub(crate) fn write_frame(out: &mut Vec<u8>, kind: FrameKind, payload: &[u8]) -> Result<u64> {
    let offset = out.len() as u64;
    let len = u32::try_from(payload.len())
        .map_err(|_| corrupt(format!("frame payload too large ({} bytes)", payload.len())))?;
    out.push(kind as u8);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(offset)
}

/// Parse one frame header from a 9-byte buffer: `(kind, payload_len, crc)`.
pub(crate) fn parse_frame_header(buf: &[u8; 9]) -> Result<(FrameKind, u32, u32)> {
    let kind = FrameKind::from_u8(buf[0])?;
    let len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]);
    let crc = u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]);
    Ok((kind, len, crc))
}

// ---------------------------------------------------------------------------
// Primitive encoding (little-endian throughout)
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Length-prefixed UTF-8 string.
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) -> Result<()> {
    let len = u32::try_from(s.len())
        .map_err(|_| corrupt(format!("string too long ({} bytes)", s.len())))?;
    put_u32(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Bounds-checked cursor over a borrowed payload.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                corrupt(format!(
                    "payload truncated: wanted {n} bytes at {}, have {}",
                    self.pos,
                    self.buf.len().saturating_sub(self.pos)
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    /// Length-prefixed UTF-8 string (owned: the caller usually interns
    /// or stores it).
    pub(crate) fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string payload is not UTF-8"))
    }
}

/// A null bitmap: bit `i` of byte `i / 8` set means row `i` is non-null.
pub(crate) struct Bitmap<'a> {
    bytes: &'a [u8],
}

impl<'a> Bitmap<'a> {
    pub(crate) fn read(cur: &mut Cursor<'a>, rows: usize) -> Result<Bitmap<'a>> {
        Ok(Bitmap {
            bytes: cur.take(rows.div_ceil(8))?,
        })
    }

    pub(crate) fn is_set(&self, i: usize) -> bool {
        (self.bytes[i / 8] >> (i % 8)) & 1 == 1
    }
}

/// Build a null bitmap from a presence predicate.
pub(crate) fn write_bitmap(out: &mut Vec<u8>, rows: usize, mut present: impl FnMut(usize) -> bool) {
    let mut byte = 0u8;
    for i in 0..rows {
        if present(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !rows.is_multiple_of(8) {
        out.push(byte);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let off = write_frame(&mut buf, FrameKind::Meta, b"hello").unwrap();
        assert_eq!(off, 0);
        let header: [u8; 9] = buf[0..9].try_into().unwrap();
        let (kind, len, crc) = parse_frame_header(&header).unwrap();
        assert_eq!(kind, FrameKind::Meta);
        assert_eq!(len, 5);
        assert_eq!(crc, crc32(b"hello"));
        assert_eq!(&buf[9..], b"hello");
    }

    #[test]
    fn cursor_rejects_overreads() {
        let mut cur = Cursor::new(&[1, 2, 3]);
        assert_eq!(cur.u8().unwrap(), 1);
        assert!(cur.u32().is_err());
    }

    #[test]
    fn bitmaps_round_trip() {
        for rows in [0usize, 1, 7, 8, 9, 64, 65] {
            let mut buf = Vec::new();
            write_bitmap(&mut buf, rows, |i| i % 3 == 0);
            let mut cur = Cursor::new(&buf);
            let bm = Bitmap::read(&mut cur, rows).unwrap();
            for i in 0..rows {
                assert_eq!(bm.is_set(i), i % 3 == 0, "rows={rows} i={i}");
            }
            assert!(cur.is_empty());
        }
    }
}
