//! Out-of-core sheet access: query a stored sheet touching only the
//! columns the query needs.
//!
//! [`PagedSheet`] wraps a lazily-loaded [`SheetFile`] and answers
//! filter + projection scans by loading *only* the columns referenced by
//! the predicate and the projection — cold open-to-first-answer is
//! O(touched columns), not O(sheet). The server's sheet hosting opens
//! from here and defers full materialization to the first session that
//! needs a live writer.

use super::reader::SheetFile;
use crate::error::{Result, SheetError};
use crate::eval::filter_relation;
use crate::sheet::{Spreadsheet, StoredSheet};
use crate::state::QueryState;
use ssa_relation::{Expr, Relation, Schema};
use std::path::Path;

/// A stored sheet that stays on disk until touched, column by column.
#[derive(Debug)]
pub struct PagedSheet {
    file: SheetFile,
}

impl PagedSheet {
    /// Open a binary sheet file, reading only its head, footer and meta
    /// frames (schema + query state; no row data).
    pub fn open(path: impl AsRef<Path>) -> Result<PagedSheet> {
        Ok(PagedSheet {
            file: SheetFile::open(path)?,
        })
    }

    /// Open an in-memory binary image the same lazy way.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<PagedSheet> {
        Ok(PagedSheet {
            file: SheetFile::from_bytes(bytes)?,
        })
    }

    /// The sheet's saved name.
    pub fn name(&self) -> &str {
        self.file.name()
    }

    /// Schema of the stored relation (available without loading rows).
    pub fn schema(&self) -> &Schema {
        self.file.schema()
    }

    /// Stored row count (from the footer; no row data loaded).
    pub fn row_count(&self) -> usize {
        self.file.row_count()
    }

    /// The saved query state (computed definitions, grouping, ordering).
    pub fn state(&self) -> &QueryState {
        self.file.state()
    }

    /// Columns currently resident in memory.
    pub fn columns_loaded(&self) -> usize {
        self.file.columns_loaded()
    }

    /// Bytes fetched from the file so far.
    pub fn bytes_read(&self) -> u64 {
        self.file.bytes_read()
    }

    /// Total size of the underlying file.
    pub fn file_len(&self) -> u64 {
        self.file.file_len()
    }

    /// Filter + project touching only the needed columns: loads the
    /// union of predicate and projection columns, evaluates the
    /// predicate over that narrow relation, and returns the surviving
    /// rows restricted to `project` (in the order given).
    ///
    /// Column names must exist in the stored schema; computed columns
    /// are not available on this path (they need a live
    /// [`Spreadsheet`]).
    pub fn scan(&self, predicate: Option<&Expr>, project: &[&str]) -> Result<Relation> {
        let schema = self.file.schema();
        let mut needed: Vec<usize> = Vec::new();
        let need = |name: &str| -> Result<usize> {
            let idx = schema
                .index_of(name)
                .map_err(|_| SheetError::UnknownColumn {
                    name: name.to_string(),
                })?;
            Ok(idx)
        };
        let mut project_idx = Vec::with_capacity(project.len());
        for name in project {
            let idx = need(name)?;
            project_idx.push(idx);
            if !needed.contains(&idx) {
                needed.push(idx);
            }
        }
        if let Some(pred) = predicate {
            for name in pred.columns() {
                let idx = need(&name)?;
                if !needed.contains(&idx) {
                    needed.push(idx);
                }
            }
        }
        needed.sort_unstable();
        let narrow = self.file.project_relation(&needed)?;
        let kept: Relation = match predicate {
            Some(pred) => {
                let ids = filter_relation(&narrow, pred, usize::MAX)?;
                narrow.take_rows(&ids)
            }
            None => narrow,
        };
        // Restrict to the requested projection, in the requested order.
        let mut cols: Vec<Vec<ssa_relation::Value>> = Vec::with_capacity(project_idx.len());
        let mut columns = Vec::with_capacity(project_idx.len());
        for (&idx, name) in project_idx.iter().zip(project) {
            cols.push(kept.column_values(name).map_err(SheetError::Relation)?);
            let c = schema
                .columns()
                .get(idx)
                .ok_or_else(|| SheetError::UnknownColumn {
                    name: (*name).to_string(),
                })?;
            columns.push(c.clone());
        }
        let refs: Vec<&[ssa_relation::Value]> = cols.iter().map(|c| c.as_slice()).collect();
        let schema = Schema::new(columns).map_err(SheetError::Relation)?;
        Relation::from_columns(self.file.relation_name().to_string(), schema, &refs)
            .map_err(SheetError::Relation)
    }

    /// Load everything and rebuild the eager [`StoredSheet`].
    pub fn materialize(&self) -> Result<StoredSheet> {
        self.file.materialize()
    }

    /// Materialize and open as a live [`Spreadsheet`] (validates the
    /// stored state, restores computed columns, grouping and ordering).
    pub fn into_spreadsheet(self) -> Result<Spreadsheet> {
        let stored = self.file.materialize()?;
        Spreadsheet::open(&stored)
    }
}
