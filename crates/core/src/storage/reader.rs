//! Decoder: a lazily-loaded view of one binary sheet file.
//!
//! [`SheetFile::open`] reads only the fixed head, the footer frame and
//! the meta frame — O(schema), independent of row count. Column data
//! stays on disk until [`SheetFile::column`] is first called for that
//! column, at which point exactly that column's chunks are read,
//! CRC-verified and decoded into a `Vec<Value>` cached in a `OnceLock`
//! slot. The sheet-local string dictionary loads the same way, on the
//! first string-bearing chunk, and is remapped through the global
//! interner ([`Sym::intern`]) — local ids never escape this module.

use super::codec::{
    corrupt, parse_frame_header, Bitmap, Cursor, FrameKind, BINARY_VERSION, FRAME_HEADER_LEN,
    HEADER_LEN, MAGIC, TAIL_LEN, TAIL_MAGIC,
};
use super::writer::{type_from_tag, ChunkEncoding};
use crate::error::Result;
use crate::persist;
use crate::replica::{EventId, VersionVector};
use crate::sheet::StoredSheet;
use crate::state::QueryState;
use ssa_relation::schema::Column;
use ssa_relation::{Relation, Schema, Sym, Value};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Where the bytes come from: a seekable file (the paged, out-of-core
/// path) or an in-memory image (round-trip and corruption tests).
enum Source {
    File(Mutex<File>),
    Mem(Vec<u8>),
}

impl Source {
    fn len(&self) -> Result<u64> {
        match self {
            Source::Mem(b) => Ok(b.len() as u64),
            Source::File(f) => {
                let f = match f.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                f.metadata()
                    .map(|m| m.len())
                    .map_err(|e| corrupt(format!("stat failed: {e}")))
            }
        }
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        match self {
            Source::Mem(b) => {
                let start = usize::try_from(offset).map_err(|_| corrupt("offset overflow"))?;
                let end = start
                    .checked_add(buf.len())
                    .filter(|&e| e <= b.len())
                    .ok_or_else(|| {
                        corrupt(format!(
                            "read of {} bytes at {offset} past end ({})",
                            buf.len(),
                            b.len()
                        ))
                    })?;
                buf.copy_from_slice(&b[start..end]);
                Ok(())
            }
            Source::File(f) => {
                let mut f = match f.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                f.seek(SeekFrom::Start(offset))
                    .map_err(|e| corrupt(format!("seek to {offset} failed: {e}")))?;
                f.read_exact(buf)
                    .map_err(|e| corrupt(format!("read at {offset} failed: {e}")))
            }
        }
    }
}

/// Footer entry for one column chunk.
#[derive(Debug, Clone, Copy)]
struct ChunkRef {
    offset: u64,
    first_row: u64,
    rows: u32,
}

/// One open binary sheet: parsed head/meta/footer plus lazy column slots.
pub struct SheetFile {
    source: Source,
    file_len: u64,
    name: String,
    relation_name: String,
    schema: Schema,
    rows: usize,
    state: QueryState,
    replica_vv: VersionVector,
    dict_offset: u64,
    chunks: Vec<Vec<ChunkRef>>,
    dict: OnceLock<Vec<Sym>>,
    columns: Vec<OnceLock<Vec<Value>>>,
    bytes_read: AtomicU64,
}

impl std::fmt::Debug for SheetFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SheetFile")
            .field("name", &self.name)
            .field("rows", &self.rows)
            .field("columns", &self.schema.len())
            .field("loaded", &self.columns_loaded())
            .finish()
    }
}

impl SheetFile {
    /// Open a binary sheet file, reading only head + footer + meta.
    pub fn open(path: impl AsRef<Path>) -> Result<SheetFile> {
        ssa_relation::fault_check!("persist.bin_read");
        let path = path.as_ref();
        let file = File::open(path)
            .map_err(|e| corrupt(format!("open {} failed: {e}", path.display())))?;
        SheetFile::from_source(Source::File(Mutex::new(file)))
    }

    /// Open an in-memory image (tests, network transfer).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<SheetFile> {
        SheetFile::from_source(Source::Mem(bytes))
    }

    fn from_source(source: Source) -> Result<SheetFile> {
        let file_len = source.len()?;
        if file_len < HEADER_LEN + TAIL_LEN {
            return Err(corrupt(format!("file too short ({file_len} bytes)")));
        }
        let mut head = [0u8; 8];
        source.read_exact_at(0, &mut head)?;
        if head[0..4] != MAGIC {
            return Err(corrupt("bad magic — not a binary sheet file"));
        }
        let version = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
        if version != BINARY_VERSION {
            return Err(corrupt(format!(
                "unsupported binary version {version} (expected {BINARY_VERSION})"
            )));
        }
        let mut tail = [0u8; 12];
        source.read_exact_at(file_len - TAIL_LEN, &mut tail)?;
        if tail[8..12] != TAIL_MAGIC {
            return Err(corrupt("missing tail magic — file truncated mid-write"));
        }
        let footer_offset = u64::from_le_bytes([
            tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
        ]);

        let loader = FrameLoader {
            source: &source,
            file_len,
            bytes_read: AtomicU64::new(HEADER_LEN + TAIL_LEN),
        };
        let footer = loader.frame(footer_offset, FrameKind::Footer)?;
        let mut cur = Cursor::new(&footer);
        let meta_offset = cur.u64()?;
        let dict_offset = cur.u64()?;
        let rows_u64 = cur.u64()?;
        let rows = usize::try_from(rows_u64).map_err(|_| corrupt("row count overflows usize"))?;
        let ncols = cur.u32()? as usize;
        let mut chunks = Vec::with_capacity(ncols.min(4096));
        for _ in 0..ncols {
            let nchunks = cur.u32()? as usize;
            let mut refs = Vec::with_capacity(nchunks.min(4096));
            let mut expect_first = 0u64;
            let mut total = 0u64;
            for _ in 0..nchunks {
                let r = ChunkRef {
                    offset: cur.u64()?,
                    first_row: cur.u64()?,
                    rows: cur.u32()?,
                };
                if r.offset < HEADER_LEN || r.offset + FRAME_HEADER_LEN > file_len {
                    return Err(corrupt(format!("chunk offset {} out of range", r.offset)));
                }
                if r.first_row != expect_first {
                    return Err(corrupt(format!(
                        "chunk rows not contiguous: expected first_row {expect_first}, got {}",
                        r.first_row
                    )));
                }
                expect_first += u64::from(r.rows);
                total += u64::from(r.rows);
                refs.push(r);
            }
            if total != rows_u64 {
                return Err(corrupt(format!(
                    "column chunks cover {total} rows, footer says {rows_u64}"
                )));
            }
            chunks.push(refs);
        }
        if !cur.is_empty() {
            return Err(corrupt("trailing bytes in footer"));
        }

        let meta = loader.frame(meta_offset, FrameKind::Meta)?;
        let mut cur = Cursor::new(&meta);
        let name = cur.string()?;
        let relation_name = cur.string()?;
        let meta_ncols = cur.u32()? as usize;
        if meta_ncols != ncols {
            return Err(corrupt(format!(
                "meta schema has {meta_ncols} columns, footer indexes {ncols}"
            )));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let col_name = cur.string()?;
            let ty = type_from_tag(cur.u8()?)?;
            columns.push(Column::new(col_name, ty));
        }
        let meta_rows = cur.u64()?;
        if meta_rows != rows_u64 {
            return Err(corrupt(format!(
                "meta says {meta_rows} rows, footer says {rows_u64}"
            )));
        }
        let state_json = cur.string()?;
        // Optional trailing section: replication version vector of a
        // compaction snapshot (absent in ordinary sheet files).
        let mut replica_vv = VersionVector::new();
        if !cur.is_empty() {
            let n = cur.u32()?;
            for _ in 0..n {
                let replica = cur.u64()?;
                let seq = cur.u64()?;
                replica_vv.record(EventId { replica, seq });
            }
            if !cur.is_empty() {
                return Err(corrupt("trailing bytes in meta frame"));
            }
        }
        let schema = Schema::new(columns).map_err(corrupt)?;
        let state = persist::state_from_json(&persist::Json::parse(&state_json)?)?;

        Ok(SheetFile {
            bytes_read: AtomicU64::new(loader.bytes_read.load(Ordering::Relaxed)),
            source,
            file_len,
            name,
            relation_name,
            schema,
            rows,
            state,
            replica_vv,
            dict_offset,
            chunks,
            dict: OnceLock::new(),
            columns: (0..ncols).map(|_| OnceLock::new()).collect(),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn relation_name(&self) -> &str {
        &self.relation_name
    }

    /// The replication version vector stamped into a compaction
    /// snapshot; empty for ordinary sheet files.
    pub fn replica_vv(&self) -> &VersionVector {
        &self.replica_vv
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn row_count(&self) -> usize {
        self.rows
    }

    pub fn state(&self) -> &QueryState {
        &self.state
    }

    /// How many column slots are currently materialized in memory.
    pub fn columns_loaded(&self) -> usize {
        self.columns.iter().filter(|c| c.get().is_some()).count()
    }

    /// Total payload bytes fetched from the source so far (head, frames,
    /// loaded chunks). The lazy-load assertions in tests and the bench's
    /// cold-open accounting both read this.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total length of the underlying file image.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    fn read_frame(&self, offset: u64, expect: FrameKind) -> Result<Vec<u8>> {
        let loader = FrameLoader {
            source: &self.source,
            file_len: self.file_len,
            bytes_read: AtomicU64::new(0),
        };
        let payload = loader.frame(offset, expect)?;
        self.bytes_read
            .fetch_add(loader.bytes_read.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(payload)
    }

    /// The sheet-local dictionary, remapped to global interner symbols.
    fn dict(&self) -> Result<&[Sym]> {
        if let Some(d) = self.dict.get() {
            return Ok(d);
        }
        let payload = self.read_frame(self.dict_offset, FrameKind::Dict)?;
        let mut cur = Cursor::new(&payload);
        let count = cur.u32()? as usize;
        let mut syms = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            syms.push(Sym::intern(&cur.string()?));
        }
        if !cur.is_empty() {
            return Err(corrupt("trailing bytes in dictionary frame"));
        }
        Ok(self.dict.get_or_init(|| syms))
    }

    /// The full decoded column, loading and caching it on first touch.
    pub fn column(&self, idx: usize) -> Result<&[Value]> {
        let slot = self.columns.get(idx).ok_or_else(|| {
            corrupt(format!(
                "column index {idx} out of range ({} columns)",
                self.schema.len()
            ))
        })?;
        if let Some(v) = slot.get() {
            return Ok(v);
        }
        let decoded = self.load_column(idx)?;
        Ok(slot.get_or_init(|| decoded))
    }

    /// A column by name (schema lookup + [`SheetFile::column`]).
    pub fn column_by_name(&self, name: &str) -> Result<&[Value]> {
        let idx = self
            .schema
            .index_of(name)
            .map_err(crate::error::SheetError::Relation)?;
        self.column(idx)
    }

    fn load_column(&self, idx: usize) -> Result<Vec<Value>> {
        let mut out: Vec<Value> = Vec::with_capacity(self.rows);
        for chunk in &self.chunks[idx] {
            let payload = self.read_frame(chunk.offset, FrameKind::Chunk)?;
            self.decode_chunk(idx, chunk, &payload, &mut out)?;
        }
        if out.len() != self.rows {
            return Err(corrupt(format!(
                "column {idx} decoded {} rows, expected {}",
                out.len(),
                self.rows
            )));
        }
        Ok(out)
    }

    fn decode_chunk(
        &self,
        idx: usize,
        chunk: &ChunkRef,
        payload: &[u8],
        out: &mut Vec<Value>,
    ) -> Result<()> {
        let mut cur = Cursor::new(payload);
        let col = cur.u32()? as usize;
        let first_row = cur.u64()?;
        let nrows = cur.u32()?;
        if col != idx || first_row != chunk.first_row || nrows != chunk.rows {
            return Err(corrupt(format!(
                "chunk at {} claims column {col} rows {first_row}+{nrows}, footer expected \
                 column {idx} rows {}+{}",
                chunk.offset, chunk.first_row, chunk.rows
            )));
        }
        let n = nrows as usize;
        let enc = ChunkEncoding::from_u8(cur.u8()?)?;
        match enc {
            ChunkEncoding::Int => {
                let bm = Bitmap::read(&mut cur, n)?;
                for i in 0..n {
                    let v = cur.i64()?;
                    out.push(if bm.is_set(i) {
                        Value::Int(v)
                    } else {
                        Value::Null
                    });
                }
            }
            ChunkEncoding::Float => {
                let bm = Bitmap::read(&mut cur, n)?;
                for i in 0..n {
                    let bits = cur.u64()?;
                    out.push(if bm.is_set(i) {
                        Value::Float(f64::from_bits(bits))
                    } else {
                        Value::Null
                    });
                }
            }
            ChunkEncoding::Str => {
                let dict = self.dict()?;
                let bm = Bitmap::read(&mut cur, n)?;
                for i in 0..n {
                    let id = cur.u32()? as usize;
                    if bm.is_set(i) {
                        let sym = dict
                            .get(id)
                            .ok_or_else(|| corrupt(format!("dictionary id {id} out of range")))?;
                        out.push(Value::Str(*sym));
                    } else {
                        out.push(Value::Null);
                    }
                }
            }
            ChunkEncoding::Bool => {
                let nulls = Bitmap::read(&mut cur, n)?;
                let vals = Bitmap::read(&mut cur, n)?;
                for i in 0..n {
                    out.push(if nulls.is_set(i) {
                        Value::Bool(vals.is_set(i))
                    } else {
                        Value::Null
                    });
                }
            }
            ChunkEncoding::Mixed => {
                for _ in 0..n {
                    let v = match cur.u8()? {
                        0 => Value::Null,
                        1 => Value::Bool(false),
                        2 => Value::Bool(true),
                        3 => Value::Int(cur.i64()?),
                        4 => Value::Float(f64::from_bits(cur.u64()?)),
                        5 => {
                            let id = cur.u32()? as usize;
                            let dict = self.dict()?;
                            let sym = dict.get(id).ok_or_else(|| {
                                corrupt(format!("dictionary id {id} out of range"))
                            })?;
                            Value::Str(*sym)
                        }
                        other => return Err(corrupt(format!("bad mixed-value tag {other}"))),
                    };
                    out.push(v);
                }
            }
        }
        if !cur.is_empty() {
            return Err(corrupt("trailing bytes in chunk payload"));
        }
        Ok(())
    }

    /// Load every column and rebuild the full in-memory [`StoredSheet`]
    /// (the eager compat path and the binary-operator open path).
    pub fn materialize(&self) -> Result<StoredSheet> {
        let ncols = self.schema.len();
        let mut cols: Vec<&[Value]> = Vec::with_capacity(ncols);
        for idx in 0..ncols {
            cols.push(self.column(idx)?);
        }
        let relation =
            Relation::from_columns(self.relation_name.clone(), self.schema.clone(), &cols)
                .map_err(corrupt)?;
        Ok(StoredSheet {
            name: self.name.clone(),
            relation,
            state: self.state.clone(),
        })
    }

    /// Build a relation from a subset of columns (schema order), without
    /// touching the others. `indices` must be valid schema indices.
    pub(crate) fn project_relation(&self, indices: &[usize]) -> Result<Relation> {
        let mut cols: Vec<&[Value]> = Vec::with_capacity(indices.len());
        let mut columns = Vec::with_capacity(indices.len());
        for &idx in indices {
            cols.push(self.column(idx)?);
            let c = self
                .schema
                .columns()
                .get(idx)
                .ok_or_else(|| corrupt(format!("column index {idx} out of range")))?;
            columns.push(c.clone());
        }
        let schema = Schema::new(columns).map_err(corrupt)?;
        Relation::from_columns(self.relation_name.clone(), schema, &cols).map_err(corrupt)
    }
}

/// Reads one CRC-checked frame at a byte offset, accumulating a read
/// counter (header + payload bytes).
struct FrameLoader<'a> {
    source: &'a Source,
    file_len: u64,
    bytes_read: AtomicU64,
}

impl FrameLoader<'_> {
    fn frame(&self, offset: u64, expect: FrameKind) -> Result<Vec<u8>> {
        if offset < HEADER_LEN || offset + FRAME_HEADER_LEN > self.file_len {
            return Err(corrupt(format!("frame offset {offset} out of range")));
        }
        let mut header = [0u8; 9];
        self.source.read_exact_at(offset, &mut header)?;
        let (kind, len, crc) = parse_frame_header(&header)?;
        if kind != expect {
            return Err(corrupt(format!(
                "expected {expect:?} frame at {offset}, found {kind:?}"
            )));
        }
        let fits = offset
            .checked_add(FRAME_HEADER_LEN)
            .and_then(|s| s.checked_add(u64::from(len)))
            .is_some_and(|e| e <= self.file_len);
        if !fits {
            return Err(corrupt(format!(
                "frame at {offset} claims {len} payload bytes past end of file"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.source
            .read_exact_at(offset + FRAME_HEADER_LEN, &mut payload)?;
        let actual = super::codec::crc32(&payload);
        if actual != crc {
            return Err(corrupt(format!(
                "checksum mismatch in {kind:?} frame at {offset}: stored {crc:#010x}, computed {actual:#010x}"
            )));
        }
        self.bytes_read
            .fetch_add(FRAME_HEADER_LEN + u64::from(len), Ordering::Relaxed);
        Ok(payload)
    }
}
